"""Table 3: parallel logging under physical logging on the fast machine.

75 query processors, 2 parallel-access data disks, 150 cache frames,
sequential transactions, physical logging (before + after image per
update).  Expected shape: one log disk saturates and multiplies execution
time; adding log disks restores performance toward the no-logging floor;
cyclic / random / qp-mod selection are comparable, txn-mod is the loser.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table3_parallel_logging

GRID = table_grid(
    "table03",
    table3_parallel_logging,
    primary_metric="mean.exec_cyclic",
    seed=BENCH_SEED,
    label_field="n_log_disks",
    title="Table 3. Parallel Logging and Selection Algorithms",
)

PAPER_TEXT = paper_block(
    "Paper Table 3 (exec ms/page, cyclic column):",
    [
        f"{n} log disks: {PAPER['table3']['exec'][(n, 'cyclic')]}"
        for n in (1, 2, 3, 4, 5)
    ]
    + [f"w/o logging: {PAPER['table3']['exec_without_logging']}"],
)


def test_table3_parallel_logging(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    rows = {
        row["n_log_disks"]: row for row in result.cells[0].detail["rows"]
    }
    # One log disk is the bottleneck; three make it much better.
    assert rows[1]["exec_cyclic"] > 1.8 * rows["w/o logging"]["exec_cyclic"]
    assert rows[3]["exec_cyclic"] < 0.75 * rows[1]["exec_cyclic"]
    # txn-mod never recovers fully (few concurrent transactions).
    assert rows[5]["exec_txn_mod"] > rows[5]["exec_random"]
