"""Table 3: parallel logging under physical logging on the fast machine.

75 query processors, 2 parallel-access data disks, 150 cache frames,
sequential transactions, physical logging (before + after image per
update).  Expected shape: one log disk saturates and multiplies execution
time; adding log disks restores performance toward the no-logging floor;
cyclic / random / qp-mod selection are comparable, txn-mod is the loser.
"""

from benchmarks._harness import BENCH_SEED, paper_block, run_table
from repro.experiments import PAPER, table3_parallel_logging

SEED = BENCH_SEED

PAPER_TEXT = paper_block(
    "Paper Table 3 (exec ms/page, cyclic column):",
    [
        f"{n} log disks: {PAPER['table3']['exec'][(n, 'cyclic')]}"
        for n in (1, 2, 3, 4, 5)
    ]
    + [f"w/o logging: {PAPER['table3']['exec_without_logging']}"],
)


def test_table3_parallel_logging(benchmark):
    result = run_table(benchmark, "table03", table3_parallel_logging, PAPER_TEXT, seed=SEED)
    rows = {row["n_log_disks"]: row for row in result["rows"]}
    # One log disk is the bottleneck; three make it much better.
    assert rows[1]["exec_cyclic"] > 1.8 * rows["w/o logging"]["exec_cyclic"]
    assert rows[3]["exec_cyclic"] < 0.75 * rows[1]["exec_cyclic"]
    # txn-mod never recovers fully (few concurrent transactions).
    assert rows[5]["exec_txn_mod"] > rows[5]["exec_random"]
