"""Trace attribution: where a Table 12 pair's completion-time gap goes.

Runs the logging vs thru-page-table pair of the grand comparison with
tracers attached and prints the phase-by-phase attribution of their mean
completion-time gap — the explanatory companion to Table 12's raw
numbers.  Also asserts the subsystem's accounting identities: each
architecture's breakdown sums to its mean completion time, and the phase
deltas sum to the gap exactly.
"""

import os

import pytest

from benchmarks._harness import BENCH_SEED, OUTPUT_DIR
from repro.experiments import ExperimentSettings
from repro.experiments.tracing import render_diff, trace_diff

SEED = BENCH_SEED

SETTINGS = ExperimentSettings(n_transactions=30, seed=SEED)


def test_trace_attribution(benchmark):
    run_a, run_b, rows = benchmark.pedantic(
        lambda: trace_diff("logging", "shadow-pt", "parallel-random", SETTINGS),
        rounds=1,
        iterations=1,
    )
    for run in (run_a, run_b):
        assert sum(run.breakdown.values()) == pytest.approx(
            run.result.mean_completion_ms
        )
    gap = run_b.result.mean_completion_ms - run_a.result.mean_completion_ms
    assert sum(delta for _, _, _, delta in rows) == pytest.approx(gap)
    text = render_diff(run_a, run_b, rows)
    print()
    print(text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "trace_attribution.txt"), "w") as handle:
        handle.write(text + "\n")
