"""Trace attribution: where a Table 12 pair's completion-time gap goes.

Runs the logging vs thru-page-table pair of the grand comparison with
tracers attached and records the phase-by-phase attribution of their mean
completion-time gap — the explanatory companion to Table 12's raw
numbers.  Also asserts the subsystem's accounting identities: each
architecture's breakdown sums to its mean completion time, and the phase
deltas sum to the gap exactly.
"""

from typing import Any, Dict, Tuple

from benchmarks._harness import BENCH_SEED, run_grid_bench
from repro.bench import Grid, GridResult
from repro.experiments import ExperimentSettings
from repro.experiments.tracing import render_diff, trace_diff


def trace_attribution_cell(
    params: Dict[str, Any], seed: int
) -> Tuple[Dict[str, float], Dict[str, Any]]:
    run_a, run_b, rows = trace_diff(
        "logging",
        "shadow-pt",
        "parallel-random",
        ExperimentSettings(n_transactions=30, seed=seed),
    )
    mean_a = run_a.result.mean_completion_ms
    mean_b = run_b.result.mean_completion_ms
    metrics = {
        "mean_completion_a_ms": round(mean_a, 6),
        "mean_completion_b_ms": round(mean_b, 6),
        "gap_ms": round(mean_b - mean_a, 6),
        # Accounting identities, exposed as residuals so the trajectory
        # (and the test below) can check they stay at zero.
        "identity_residual_a_ms": round(
            sum(run_a.breakdown.values()) - mean_a, 6
        ),
        "identity_residual_b_ms": round(
            sum(run_b.breakdown.values()) - mean_b, 6
        ),
        "delta_sum_residual_ms": round(
            sum(delta for _, _, _, delta in rows) - (mean_b - mean_a), 6
        ),
    }
    detail = {
        "text": render_diff(run_a, run_b, rows),
        "phases": [list(row) for row in rows],
    }
    return metrics, detail


GRID = Grid(
    name="trace_attribution",
    title="Trace attribution: logging vs shadow-pt completion-time gap",
    seed=BENCH_SEED,
    runner=trace_attribution_cell,
    primary_metric="gap_ms",
)


def trace_text(result: GridResult) -> str:
    return result.cells[0].detail["text"]


def test_trace_attribution(benchmark):
    result = run_grid_bench(benchmark, GRID, text_fn=trace_text)
    assert abs(result.metric("identity_residual_a_ms")) < 1e-3
    assert abs(result.metric("identity_residual_b_ms")) < 1e-3
    assert abs(result.metric("delta_sum_residual_ms")) < 1e-3
