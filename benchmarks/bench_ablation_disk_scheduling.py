"""Ablation (extension): FCFS vs SSTF data-disk scheduling.

The paper's era of controllers served requests in arrival order.  This
extension asks what shortest-seek-time-first queues would have bought the
conventional-disk configurations.  Expected shape: SSTF helps random loads
(shorter average seeks under a mixed queue) and cannot hurt sequential
ones — but the gain is modest because the multiprogramming level keeps
queues short.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import ablation_disk_scheduling

GRID = table_grid(
    "ablation_disk_scheduling",
    ablation_disk_scheduling,
    primary_metric="mean.sstf",
    seed=BENCH_SEED,
    title="Ablation (extension): FCFS vs SSTF disk scheduling",
)

PAPER_TEXT = paper_block(
    "Paper:",
    ["(not studied — 1985 controllers were FCFS; extension ablation)"],
)


def test_ablation_disk_scheduling(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    for row in result.cells[0].detail["rows"]:
        assert row["sstf"] <= 1.03 * row["fcfs"], row
