"""Ablation (extension): FCFS vs SSTF data-disk scheduling.

The paper's era of controllers served requests in arrival order.  This
extension asks what shortest-seek-time-first queues would have bought the
conventional-disk configurations.  Expected shape: SSTF helps random loads
(shorter average seeks under a mixed queue) and cannot hurt sequential
ones — but the gain is modest because the multiprogramming level keeps
queues short.
"""

from benchmarks._harness import BENCH_SEED, paper_block, run_table
from repro.experiments import ablation_disk_scheduling

SEED = BENCH_SEED

PAPER_TEXT = paper_block(
    "Paper:",
    ["(not studied — 1985 controllers were FCFS; extension ablation)"],
)


def test_ablation_disk_scheduling(benchmark):
    result = run_table(
        benchmark, "ablation_disk_scheduling", ablation_disk_scheduling, PAPER_TEXT, seed=SEED
    )
    for row in result["rows"]:
        assert row["sstf"] <= 1.03 * row["fcfs"], row
