"""Table 9: impact of the differential-file mechanism.

Expected shape: the *basic* strategy (set-difference on every B/A page)
saturates the 25 query processors and flattens all four configurations to
roughly the same cost; the *optimal* strategy (diff only qualifying pages)
recovers the random configurations to near disk-bound but still hurts
sequential loads badly.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table9_differential_impact

GRID = table_grid(
    "table09",
    table9_differential_impact,
    primary_metric="mean.exec_optimal",
    seed=BENCH_SEED,
    title="Table 9. Impact of the Differential File Mechanism",
)

PAPER_TEXT = paper_block(
    "Paper Table 9 (exec ms/page bare / basic / optimal):",
    [
        f"{name}: {PAPER['table9']['exec_bare'][name]} / "
        f"{PAPER['table9']['exec_basic'][name]} / "
        f"{PAPER['table9']['exec_optimal'][name]}"
        for name in PAPER["table9"]["exec_bare"]
    ],
)


def test_table9_differential_impact(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    rows = result.cells[0].detail["rows"]
    basics = [row["exec_basic"] for row in rows]
    # CPU-bound flattening: all four basic numbers within 25 % of each other.
    assert max(basics) < 1.25 * min(basics)
    for row in rows:
        assert row["exec_optimal"] < 0.65 * row["exec_basic"]
    parseq = next(
        r for r in rows if r["configuration"] == "parallel-sequential"
    )
    assert parseq["exec_optimal"] > 3 * parseq["exec_bare"]
