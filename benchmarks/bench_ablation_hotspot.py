"""Ablation (extension): hotspot-skewed reference strings.

The paper's workload references pages uniformly; real workloads skew.
This extension adds b/c-rule hotspots under the parallel-logging
architecture.  Expected shape: moderate skew leaves throughput essentially
unchanged (the machine is I/O-pattern-bound, not contention-bound); only a
pathologically small hot set drives up lock conflicts and restarts.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import ablation_hotspot

GRID = table_grid(
    "ablation_hotspot",
    ablation_hotspot,
    primary_metric="mean.exec_ms_per_page",
    seed=BENCH_SEED,
    label_field="workload",
    title="Ablation (extension): hotspot skew under parallel logging",
)

PAPER_TEXT = paper_block(
    "Paper:",
    ["(uniform workload only; hotspot skew is an extension ablation)"],
)


def test_ablation_hotspot(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    rows = {row["workload"]: row for row in result.cells[0].detail["rows"]}
    # A pathologically small hot set (0.5 % of the database) drives up
    # conflicts and restarts...
    assert rows["hot_0.005"]["lock_blocks"] > rows["uniform"]["lock_blocks"]
    assert rows["hot_0.005"]["restarts"] >= rows["uniform"]["restarts"]
    # ...while a conventional 80/20-style skew stays near uniform cost.
    assert (
        rows["hot_0.1"]["exec_ms_per_page"]
        <= 1.15 * rows["uniform"]["exec_ms_per_page"]
    )
