"""Table 7: sequential transactions under the shadow variants.

Expected shape: clustered thru-page-table tracks the bare machine;
*scrambled* placement (logical adjacency lost) roughly doubles conventional
cost and collapses parallel-access performance by ~10x; overwriting is
expensive on conventional disks but stays close to bare on parallel-access
disks (its scratch reads and overwrites batch into few accesses).
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table7_sequential_shadow

GRID = table_grid(
    "table07",
    table7_sequential_shadow,
    primary_metric="mean.clustered",
    seed=BENCH_SEED,
    title="Table 7. Execution Time per Page (Sequential Transactions)",
)

PAPER_TEXT = paper_block(
    "Paper Table 7 (bare / clustered / scrambled / overwriting):",
    [
        f"{kind}: {row['bare']} / {row['clustered']} / "
        f"{row['scrambled']} / {row['overwriting']}"
        for kind, row in PAPER["table7"].items()
    ],
)


def test_table7_sequential_shadow(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    rows = {
        row["configuration"]: row for row in result.cells[0].detail["rows"]
    }
    conv = rows["conventional-sequential"]
    par = rows["parallel-sequential"]
    assert conv["scrambled"] > 1.5 * conv["clustered"]
    assert par["scrambled"] > 4 * par["bare"]          # the 10x collapse
    assert par["overwriting"] < 0.4 * par["scrambled"]  # overwriting wins back
    assert conv["overwriting"] > 1.3 * conv["bare"]
