"""Table 2: log-disk utilization with one log processor.

Expected shape: the single log disk is almost idle (paper: 0.02 in three
configurations, 0.13 for parallel-sequential) — the data-page rate simply
cannot keep a log disk busy, the paper's argument that one log disk
suffices.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table2_log_utilization

GRID = table_grid(
    "table02",
    table2_log_utilization,
    primary_metric="mean.log_disk_utilization",
    seed=BENCH_SEED,
    title="Table 2. Log Characteristics (one log processor)",
)

PAPER_TEXT = paper_block(
    "Paper Table 2 (log-disk utilization):",
    [f"{name}: {value}" for name, value in PAPER["table2"].items()],
)


def test_table2_log_utilization(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    rows = result.cells[0].detail["rows"]
    by_config = {row["configuration"]: row for row in rows}
    assert by_config["conventional-random"]["log_disk_utilization"] < 0.08
    assert (
        by_config["parallel-sequential"]["log_disk_utilization"]
        > by_config["conventional-random"]["log_disk_utilization"]
    )
