"""Table 2: log-disk utilization with one log processor.

Expected shape: the single log disk is almost idle (paper: 0.02 in three
configurations, 0.13 for parallel-sequential) — the data-page rate simply
cannot keep a log disk busy, the paper's argument that one log disk
suffices.
"""

from benchmarks._harness import BENCH_SEED, paper_block, run_table
from repro.experiments import PAPER, table2_log_utilization

SEED = BENCH_SEED

PAPER_TEXT = paper_block(
    "Paper Table 2 (log-disk utilization):",
    [f"{name}: {value}" for name, value in PAPER["table2"].items()],
)


def test_table2_log_utilization(benchmark):
    result = run_table(benchmark, "table02", table2_log_utilization, PAPER_TEXT, seed=SEED)
    by_config = {row["configuration"]: row for row in result["rows"]}
    assert by_config["conventional-random"]["log_disk_utilization"] < 0.08
    assert (
        by_config["parallel-sequential"]["log_disk_utilization"]
        > by_config["conventional-random"]["log_disk_utilization"]
    )
