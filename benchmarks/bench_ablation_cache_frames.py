"""Ablation: cache-frame sensitivity (the anticipatory-reading argument).

The paper leans on cache-frame availability twice: "more cache frames were
available for anticipatory paging than the disks could feed" (Section
4.1.1, why logging's blocked pages are harmless) and "availability of
fewer cache frames severely affects the performance of the parallel-access
disks" (Section 4.1.2, why the Table 3 log bottleneck cascades).  This
ablation sweeps the frame count directly.  Expected shape: the
parallel-sequential machine collapses when frames are scarce (its cylinder
batches shrink), while conventional-random barely notices.
"""

from benchmarks._harness import BENCH_SEED, BENCH_SETTINGS, OUTPUT_DIR, paper_block
from repro.experiments import CONFIGURATIONS
from repro.experiments.sweeps import sweep_machine
from repro.metrics import format_table

SEED = BENCH_SEED
SETTINGS = BENCH_SETTINGS.with_overrides(seed=SEED)

FRAME_COUNTS = (40, 70, 100, 150)


def test_ablation_cache_frames(benchmark):
    rows_by_config = {}

    def run_all():
        for name in ("conventional-random", "parallel-sequential"):
            rows_by_config[name] = sweep_machine(
                CONFIGURATIONS[name],
                field="cache_frames",
                values=FRAME_COUNTS,
                settings=SETTINGS,
            )
        return rows_by_config

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    table_rows = []
    for name, rows in rows_by_config.items():
        table_rows.append(
            [name] + [row["exec_ms_per_page"] for row in rows]
        )
    text = format_table(
        ["configuration"] + [f"{n} frames" for n in FRAME_COUNTS],
        table_rows,
        title="Ablation: execution time per page vs cache frames",
    )
    text += "\n\n" + paper_block(
        "Paper (Sections 4.1.1-4.1.2):",
        [
            "'more cache frames were available for anticipatory paging than",
            " the disks could feed' (baseline machine)",
            "'availability of fewer cache frames severely affects the",
            " performance of the parallel-access disks'",
        ],
    )
    print()
    print(text)
    import os

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "ablation_cache_frames.txt"), "w") as handle:
        handle.write(text + "\n")

    parseq = rows_by_config["parallel-sequential"]
    assert parseq[0]["exec_ms_per_page"] > 1.2 * parseq[-1]["exec_ms_per_page"]
    convrand = rows_by_config["conventional-random"]
    values = [row["exec_ms_per_page"] for row in convrand]
    assert max(values) < 1.10 * min(values)
