"""Ablation: cache-frame sensitivity (the anticipatory-reading argument).

The paper leans on cache-frame availability twice: "more cache frames were
available for anticipatory paging than the disks could feed" (Section
4.1.1, why logging's blocked pages are harmless) and "availability of
fewer cache frames severely affects the performance of the parallel-access
disks" (Section 4.1.2, why the Table 3 log bottleneck cascades).  This
ablation sweeps the frame count directly.  Expected shape: the
parallel-sequential machine collapses when frames are scarce (its cylinder
batches shrink), while conventional-random barely notices.
"""

from typing import Any, Dict

from benchmarks._harness import (
    BENCH_SEED,
    BENCH_SETTINGS,
    paper_block,
    run_grid_bench,
)
from repro.bench import Grid
from repro.experiments import CONFIGURATIONS
from repro.experiments.sweeps import sweep_machine

FRAME_COUNTS = (40, 70, 100, 150)

PAPER_TEXT = paper_block(
    "Paper (Sections 4.1.1-4.1.2):",
    [
        "'more cache frames were available for anticipatory paging than",
        " the disks could feed' (baseline machine)",
        "'availability of fewer cache frames severely affects the",
        " performance of the parallel-access disks'",
    ],
)


def cache_frames_cell(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    rows = sweep_machine(
        CONFIGURATIONS[params["configuration"]],
        field="cache_frames",
        values=[params["cache_frames"]],
        settings=BENCH_SETTINGS.with_overrides(seed=seed),
    )
    return {"exec_ms_per_page": float(rows[0]["exec_ms_per_page"])}


GRID = Grid(
    name="ablation_cache_frames",
    title="Ablation: execution time per page vs cache frames",
    seed=BENCH_SEED,
    runner=cache_frames_cell,
    parameters={
        "configuration": ["conventional-random", "parallel-sequential"],
        "cache_frames": list(FRAME_COUNTS),
    },
    primary_metric="exec_ms_per_page",
)


def test_ablation_cache_frames(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT)

    def exec_ms(config, frames):
        return result.metric(configuration=config, cache_frames=frames)

    assert exec_ms("parallel-sequential", FRAME_COUNTS[0]) > 1.2 * exec_ms(
        "parallel-sequential", FRAME_COUNTS[-1]
    )
    values = [exec_ms("conventional-random", n) for n in FRAME_COUNTS]
    assert max(values) < 1.10 * min(values)
