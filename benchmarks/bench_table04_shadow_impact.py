"""Table 4: impact of the shadow mechanism (1 vs 2 page-table processors).

Expected shape: with one PT processor the random configurations degrade
(the PT disk becomes the bottleneck); a second PT processor annuls the
degradation; sequential loads touch at most two PT pages per transaction
and barely notice the mechanism.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table4_shadow_impact

GRID = table_grid(
    "table04",
    table4_shadow_impact,
    primary_metric="mean.exec_1ptp",
    seed=BENCH_SEED,
    title="Table 4. Impact of the Shadow Mechanism",
)

PAPER_TEXT = paper_block(
    "Paper Table 4 (exec ms/page bare / 1 PT proc / 2 PT procs):",
    [
        f"{name}: {PAPER['table4']['exec_bare'][name]} / "
        f"{PAPER['table4']['exec_1ptp'][name]} / "
        f"{PAPER['table4']['exec_2ptp'][name]}"
        for name in PAPER["table4"]["exec_bare"]
    ],
)


def test_table4_shadow_impact(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    rows = {
        row["configuration"]: row for row in result.cells[0].detail["rows"]
    }
    rand = rows["conventional-random"]
    assert rand["exec_1ptp"] > 1.04 * rand["exec_bare"]
    assert rand["exec_2ptp"] < rand["exec_1ptp"]
    seq = rows["conventional-sequential"]
    assert seq["exec_1ptp"] <= 1.10 * seq["exec_bare"]
