"""Ablation: throughput in degraded mode — dead log processors, mirrors.

The paper sizes the architectures for fault-free throughput; this
ablation prices *survival*.  The same seeded workload runs on the
parallel-logging machine in four states: healthy, one log processor dead
(survivors absorb its fragment stream), mirrored data disks with one
side dead and rebuilding at a bounded I/O share, and both at once.
Expected shape: every degraded cell still commits every transaction
(that is the point of the resilience layer); losing one of three log
processors costs some throughput; the mirror masks a dead side with no
lost requests while the rebuild's bounded share keeps the slowdown
graceful.
"""

import os

from benchmarks._harness import BENCH_SEED, OUTPUT_DIR, paper_block, write_bench_json
from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import LoggingConfig, ParallelLoggingArchitecture
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.metrics import format_table
from repro.sim import RandomStreams
from repro.workload import TransactionStatus

SEED = BENCH_SEED

N_TRANSACTIONS = 8
FAIL_AT_MS = 100.0
REPAIR_AFTER_MS = 200.0

#: label -> (failed LPs, mirrored data disks)
STATES = {
    "healthy": (0, False),
    "1 LP dead": (1, False),
    "mirror degraded": (0, True),
    "LP dead + mirror degraded": (1, True),
}


def degraded_run(n_dead_lps: int, mirrored: bool) -> dict:
    config = MachineConfig(
        seed=SEED, parallel_data_disks=True, mirrored_data_disks=mirrored
    )
    txns = generate_transactions(
        WorkloadConfig(n_transactions=N_TRANSACTIONS, max_pages=60),
        config.db_pages,
        RandomStreams(SEED).stream("workload"),
    )
    machine = DatabaseMachine(
        config, ParallelLoggingArchitecture(LoggingConfig(n_log_processors=3))
    )
    specs = []
    if n_dead_lps:
        specs.append(FaultSpec(FaultKind.LP_FAIL, at_time=FAIL_AT_MS, target=0))
    if mirrored:
        specs.append(
            FaultSpec(
                FaultKind.DISK_FAIL,
                at_time=FAIL_AT_MS,
                target=0,
                repair_after=REPAIR_AFTER_MS,
            )
        )
    if specs:
        FaultInjector(FaultPlan.of(*specs, seed=SEED)).arm(machine)
    result = machine.run(txns)
    assert all(t.status is TransactionStatus.COMMITTED for t in txns)
    return {
        "makespan_ms": result.makespan_ms,
        "throughput": 1000.0 * N_TRANSACTIONS / result.makespan_ms,
        "lost_requests": result.counter("mirror_lost_requests"),
        "reshipped": result.counter("log_fragments_reshipped"),
    }


def test_ablation_degraded_throughput(benchmark):
    cells = {}

    def run_all():
        for label, (n_dead, mirrored) in STATES.items():
            cells[label] = degraded_run(n_dead, mirrored)
        return cells

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = cells["healthy"]["makespan_ms"]
    rows = []
    for label in STATES:
        cell = cells[label]
        rows.append(
            [
                label,
                f"{cell['makespan_ms']:.0f}",
                f"{cell['throughput']:.2f}",
                f"{baseline / cell['makespan_ms']:.3f}",
                str(cell["reshipped"]),
            ]
        )
    text = format_table(
        ["machine state", "makespan (ms)", "txn/s", "availability", "reshipped"],
        rows,
        title="Ablation: throughput in degraded mode (parallel logging, 3 LPs)",
    )
    text += "\n\n" + paper_block(
        "Paper (Section 5):",
        [
            "'the failure of a single component ... should not render",
            " the entire system inoperable'",
        ],
    )
    print()
    print(text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, "ablation_degraded_throughput.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    write_bench_json(
        "degraded_throughput",
        {
            "seed": SEED,
            "n_transactions": N_TRANSACTIONS,
            "baseline_makespan_ms": baseline,
            "states": {
                label: {
                    **cell,
                    "availability": baseline / cell["makespan_ms"],
                }
                for label, cell in cells.items()
            },
        },
    )

    # The mirror masks its dead side completely: no request is ever lost.
    for label in ("mirror degraded", "LP dead + mirror degraded"):
        assert cells[label]["lost_requests"] == 0, label
    # Losing a log processor re-homes its fragment stream.
    for label in ("1 LP dead", "LP dead + mirror degraded"):
        assert cells[label]["reshipped"] >= 0, label
    # Degradation is graceful, not collapse: no degraded state may cost
    # more than 3x the healthy makespan on this small workload.
    for label, cell in cells.items():
        assert cell["makespan_ms"] <= 3.0 * baseline, label
