"""Ablation: throughput in degraded mode — dead log processors, mirrors.

The paper sizes the architectures for fault-free throughput; this
ablation prices *survival*.  The same seeded workload runs on the
parallel-logging machine with two component toggles ablated in full
product mode: ``lp0`` (log processor 0 alive; off = survivors absorb its
fragment stream) and ``mirror_side`` (both mirror sides healthy; off =
mirrored data disks with one side dead and rebuilding at a bounded I/O
share).  The four cells are the four machine states.  Expected shape:
every degraded cell still commits every transaction (that is the point
of the resilience layer); losing one of three log processors costs some
throughput; the mirror masks a dead side with no lost requests while the
rebuild's bounded share keeps the slowdown graceful.
"""

from typing import Any, Dict

from benchmarks._harness import BENCH_SEED, paper_block, run_grid_bench
from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.bench import ComponentToggle, Grid
from repro.core import LoggingConfig, ParallelLoggingArchitecture
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.sim import RandomStreams
from repro.workload import TransactionStatus

N_TRANSACTIONS = 8
FAIL_AT_MS = 100.0
REPAIR_AFTER_MS = 200.0

PAPER_TEXT = paper_block(
    "Paper (Section 5):",
    [
        "'the failure of a single component ... should not render",
        " the entire system inoperable'",
    ],
)


def degraded_cell(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    n_dead_lps = 0 if params["lp0"] else 1
    mirrored = not params["mirror_side"]
    config = MachineConfig(
        seed=seed, parallel_data_disks=True, mirrored_data_disks=mirrored
    )
    txns = generate_transactions(
        WorkloadConfig(n_transactions=N_TRANSACTIONS, max_pages=60),
        config.db_pages,
        RandomStreams(seed).stream("workload"),
    )
    machine = DatabaseMachine(
        config, ParallelLoggingArchitecture(LoggingConfig(n_log_processors=3))
    )
    specs = []
    if n_dead_lps:
        specs.append(FaultSpec(FaultKind.LP_FAIL, at_time=FAIL_AT_MS, target=0))
    if mirrored:
        specs.append(
            FaultSpec(
                FaultKind.DISK_FAIL,
                at_time=FAIL_AT_MS,
                target=0,
                repair_after=REPAIR_AFTER_MS,
            )
        )
    if specs:
        FaultInjector(FaultPlan.of(*specs, seed=seed)).arm(machine)
    result = machine.run(txns)
    assert all(t.status is TransactionStatus.COMMITTED for t in txns)
    return {
        "makespan_ms": round(result.makespan_ms, 6),
        "throughput": round(1000.0 * N_TRANSACTIONS / result.makespan_ms, 6),
        "lost_requests": result.counter("mirror_lost_requests"),
        "reshipped": result.counter("log_fragments_reshipped"),
    }


GRID = Grid(
    name="degraded_throughput",
    title="Ablation: throughput in degraded mode (parallel logging, 3 LPs)",
    seed=BENCH_SEED,
    runner=degraded_cell,
    toggles=(
        ComponentToggle("lp0", "log processor 0 alive"),
        ComponentToggle("mirror_side", "both mirror sides healthy"),
    ),
    toggle_mode="product",
    primary_metric="makespan_ms",
)


def test_ablation_degraded_throughput(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT)
    baseline = result.metric()  # all components on = healthy
    # The mirror masks its dead side completely: no request is ever lost.
    for toggles_off in (("mirror_side",), ("lp0", "mirror_side")):
        assert result.metric("lost_requests", toggles_off) == 0, toggles_off
    # Losing a log processor re-homes its fragment stream.
    for toggles_off in (("lp0",), ("lp0", "mirror_side")):
        assert result.metric("reshipped", toggles_off) >= 0, toggles_off
    # Degradation is graceful, not collapse: no degraded state may cost
    # more than 3x the healthy makespan on this small workload.
    for cell in result.cells:
        assert cell.metric("makespan_ms") <= 3.0 * baseline, cell.cell
