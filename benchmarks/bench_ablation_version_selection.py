"""Ablation (paper Section 4.2.5): version selection vs thru page-table.

The paper dismisses version selection analytically: fetching both versions
of every page lengthens each read on an I/O-bandwidth-bound machine, while
the page-table indirection it avoids can be fully overlapped anyway (big
buffer or second PT processor), and it doubles disk space.  Expected
shape: version selection strictly worse than bare on random loads, with
thru-PT preferable overall.

Disk space doubling is honoured: the database is halved so both versions
of every page fit the same two drives.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import ablation_version_selection

GRID = table_grid(
    "ablation_version_selection",
    ablation_version_selection,
    primary_metric="mean.version_selection",
    seed=BENCH_SEED,
    title="Ablation (Sec 4.2.5): version selection vs thru page-table",
)

PAPER_TEXT = paper_block(
    "Paper (Section 4.2.5, no table given):",
    [
        "'the average time to access a data page will increase'",
        "'the version selection algorithm will have poor performance'",
        "'requires substantial redundant storage to hold versions'",
    ],
)


def test_ablation_version_selection(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    for row in result.cells[0].detail["rows"]:
        if "random" in row["configuration"]:
            assert row["version_selection"] > row["bare"], row
