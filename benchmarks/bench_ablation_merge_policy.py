"""Ablation: the differential-file merge policy the paper left unmodeled.

Section 4.3.3: "the differential relations will have to be frequently
merged with the base relation.  In our simulation, we have not modeled the
effect of merging ... we did not feel that it was worthwhile exploring the
cost of this operation."  This ablation explores it: two Table 11-style
runs give the measured per-transaction overhead slope, a sequential-sweep
model prices one merge, and the square-root law yields the optimal merge
interval.  Expected shape: merging a 1985 database costs simulated
minutes, so the optimal interval is thousands of transactions — consistent
with the paper's decision that per-run merge effects were ignorable, while
confirming its warning that letting the files grow past ~10 % is ruinous.
"""

from typing import Any, Dict

from benchmarks._harness import (
    BENCH_SEED,
    BENCH_SETTINGS,
    paper_block,
    run_grid_bench,
)
from repro.analysis.merge_policy import (
    merge_cost_ms,
    optimal_merge_interval,
    overhead_slope_ms_per_txn,
)
from repro.bench import Grid
from repro.core import DifferentialConfig, DifferentialFileArchitecture
from repro.experiments import CONFIGURATIONS, run_configuration
from repro.machine import MachineConfig

PAPER_TEXT = paper_block(
    "Paper (Section 4.3.3):",
    [
        "'the differential relations will have to be frequently merged",
        " with the base relation.  In our simulation, we have not",
        " modeled the effect of merging'",
    ],
)


def merge_policy_cell(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    config = MachineConfig()
    settings = BENCH_SETTINGS.with_overrides(seed=seed)
    small = run_configuration(
        CONFIGURATIONS["conventional-random"],
        lambda: DifferentialFileArchitecture(DifferentialConfig(size_fraction=0.10)),
        settings,
    )
    large = run_configuration(
        CONFIGURATIONS["conventional-random"],
        lambda: DifferentialFileArchitecture(DifferentialConfig(size_fraction=0.20)),
        settings,
    )
    appends_per_txn = large.counter("pages_appended") / large.n_transactions
    slope = overhead_slope_ms_per_txn(small, large, appends_per_txn, config.db_pages)
    merge = merge_cost_ms(config)
    return {
        "merge_cost_ms": round(merge, 6),
        "appends_per_txn": round(appends_per_txn, 6),
        "overhead_slope_ms_per_txn2": round(slope, 9),
        "optimal_interval_txns": round(optimal_merge_interval(merge, slope), 6),
    }


GRID = Grid(
    name="ablation_merge_policy",
    title="Ablation: differential-file merge policy (square-root law)",
    seed=BENCH_SEED,
    runner=merge_policy_cell,
    primary_metric="optimal_interval_txns",
    higher_is_better=True,
)


def test_ablation_merge_policy(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT)
    assert result.metric("merge_cost_ms") > 60_000   # minutes of simulated time
    assert result.metric("optimal_interval_txns") > 100  # merges are rare events
