"""Ablation: the differential-file merge policy the paper left unmodeled.

Section 4.3.3: "the differential relations will have to be frequently
merged with the base relation.  In our simulation, we have not modeled the
effect of merging ... we did not feel that it was worthwhile exploring the
cost of this operation."  This ablation explores it: two Table 11-style
runs give the measured per-transaction overhead slope, a sequential-sweep
model prices one merge, and the square-root law yields the optimal merge
interval.  Expected shape: merging a 1985 database costs simulated
minutes, so the optimal interval is thousands of transactions — consistent
with the paper's decision that per-run merge effects were ignorable, while
confirming its warning that letting the files grow past ~10 % is ruinous.
"""

from benchmarks._harness import BENCH_SEED, BENCH_SETTINGS, OUTPUT_DIR, paper_block
from repro.analysis.merge_policy import (
    merge_cost_ms,
    optimal_merge_interval,
    overhead_slope_ms_per_txn,
)
from repro.core import DifferentialConfig, DifferentialFileArchitecture
from repro.experiments import CONFIGURATIONS, run_configuration
from repro.machine import MachineConfig
from repro.metrics import format_table

SEED = BENCH_SEED
SETTINGS = BENCH_SETTINGS.with_overrides(seed=SEED)


def test_ablation_merge_policy(benchmark):
    config = MachineConfig()
    outcome = {}

    def run_all():
        small = run_configuration(
            CONFIGURATIONS["conventional-random"],
            lambda: DifferentialFileArchitecture(DifferentialConfig(size_fraction=0.10)),
            SETTINGS,
        )
        large = run_configuration(
            CONFIGURATIONS["conventional-random"],
            lambda: DifferentialFileArchitecture(DifferentialConfig(size_fraction=0.20)),
            SETTINGS,
        )
        appends_per_txn = large.counter("pages_appended") / large.n_transactions
        slope = overhead_slope_ms_per_txn(
            small, large, appends_per_txn, config.db_pages
        )
        merge = merge_cost_ms(config)
        outcome.update(
            slope=slope,
            merge=merge,
            interval=optimal_merge_interval(merge, slope),
            appends=appends_per_txn,
        )
        return outcome

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        ["quantity", "value"],
        [
            ["merge cost (sequential sweep)", f"{outcome['merge'] / 1000:.1f} s"],
            ["A/D pages appended per txn", f"{outcome['appends']:.1f}"],
            ["overhead slope", f"{outcome['slope']:.3f} ms/txn^2"],
            ["optimal merge interval", f"{outcome['interval']:.0f} txns"],
        ],
        title="Ablation: differential-file merge policy (square-root law)",
    )
    text += "\n\n" + paper_block(
        "Paper (Section 4.3.3):",
        [
            "'the differential relations will have to be frequently merged",
            " with the base relation.  In our simulation, we have not",
            " modeled the effect of merging'",
        ],
    )
    print()
    print(text)
    import os

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "ablation_merge_policy.txt"), "w") as handle:
        handle.write(text + "\n")

    assert outcome["merge"] > 60_000        # minutes of simulated time
    assert outcome["interval"] > 100        # merges are rare events