"""Table 12: the grand comparison of all recovery architectures.

Expected shape (the paper's conclusion): parallel logging tracks the bare
machine in every configuration; thru-page-table shadow matches it only
when clustering can be maintained and the PT bottleneck is bought off
(buffer or second processor); scrambled shadow and differential files
collapse on sequential loads; overwriting hurts everywhere except
parallel-access + sequential.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table12_comparison

GRID = table_grid(
    "table12",
    table12_comparison,
    primary_metric="mean.logging",
    seed=BENCH_SEED,
    title="Table 12. Average Execution Time per Page (in ms)",
)

PAPER_TEXT = paper_block(
    "Paper Table 12 (bare/logging/shadow b10/b50/2ptp/scrambled/overwrite/diff):",
    [
        f"{name}: " + " / ".join(
            str(row[k])
            for k in (
                "bare", "logging", "shadow_b10", "shadow_b50",
                "shadow_2ptp", "scrambled", "overwriting", "differential",
            )
        )
        for name, row in PAPER["table12"].items()
    ],
)


def test_table12_comparison(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    rows = {
        row["configuration"]: row for row in result.cells[0].detail["rows"]
    }
    for name, row in rows.items():
        # The headline: logging within 15 % of bare everywhere.
        assert row["logging"] <= 1.15 * row["bare"], name
    # Each rival collapses somewhere.
    assert rows["parallel-sequential"]["scrambled"] > 4 * rows["parallel-sequential"]["bare"]
    assert rows["conventional-random"]["overwriting"] > 1.25 * rows["conventional-random"]["bare"]
    assert rows["parallel-sequential"]["differential"] > 3 * rows["parallel-sequential"]["bare"]
