"""Shared plumbing for the benchmark harness.

Every ``bench_*`` module declares a :class:`repro.bench.Grid` (directly,
or through :func:`table_grid` for the paper-table benchmarks) and runs it
through :func:`run_grid_bench`: the grid executes exactly once under
pytest-benchmark (``pedantic`` with one round — the interesting number is
the *simulated* result, the wall-clock time is a bonus), prints the
measured rows next to the paper's, writes the text to
``benchmarks/output/<name>.txt`` so results survive pytest's capture,
and writes the schema-validated ``BENCH_<name>.json`` trajectory
artifact at the repo root and in ``benchmarks/output/``.

Run the whole harness with::

    pytest benchmarks/ --benchmark-only

or, without pytest, ``python -m repro bench`` (see ``docs/BENCH.md``).
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench import (
    Grid,
    GridResult,
    render_grid,
    run_grid,
    write_grid_artifacts,
)
from repro.experiments import ExperimentSettings
from repro.experiments.tables import render

#: Master seed for the benchmark harness: every table draws the same
#: transaction streams, so numbers are comparable across runs and machines.
BENCH_SEED = 1985

#: Load size for benchmark runs; large enough for stable shapes.
BENCH_SETTINGS = ExperimentSettings(n_transactions=30, seed=BENCH_SEED)

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

#: Repository root — the committed ``BENCH_<name>.json`` baselines live
#: here so ``repro bench-diff`` can read the perf trajectory out of git.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def flatten_rows(
    rows: Sequence[Dict[str, Any]], label_field: str
) -> Dict[str, float]:
    """Flatten table rows to ``{label}.{field}`` metrics plus means.

    Fields named ``paper*`` are reference numbers from the paper, not
    measurements — they are excluded so the trajectory gate only watches
    what the simulator actually produced.
    """
    metrics: Dict[str, float] = {}
    sums: Dict[str, List[float]] = {}
    for row in rows:
        label = str(row[label_field]).replace(" ", "_")
        for field, value in row.items():
            if field == label_field or field.startswith("paper"):
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metrics[f"{label}.{field}"] = float(value)
            sums.setdefault(field, []).append(float(value))
    for field, values in sums.items():
        metrics[f"mean.{field}"] = round(sum(values) / len(values), 9)
    return metrics


def run_table_cell(
    table_func: Callable[[ExperimentSettings], Dict[str, Any]],
    label_field: str,
    params: Dict[str, Any],
    seed: int,
) -> Tuple[Dict[str, float], Dict[str, Any]]:
    """Grid runner for a paper-table function (module-level: picklable)."""
    del params  # table grids have no axes; the table is the sweep
    result = table_func(BENCH_SETTINGS.with_overrides(seed=seed))
    metrics = flatten_rows(result["rows"], label_field)
    detail = {"title": result.get("title", ""), "rows": result["rows"]}
    return metrics, detail


def table_grid(
    name: str,
    table_func: Callable[[ExperimentSettings], Dict[str, Any]],
    *,
    primary_metric: str,
    seed: int,
    label_field: str = "configuration",
    title: str = "",
    tolerance: float = 0.15,
    higher_is_better: bool = False,
) -> Grid:
    """A single-cell grid wrapping one paper-table function."""
    return Grid(
        name=name,
        title=title or name,
        seed=seed,
        runner=functools.partial(run_table_cell, table_func, label_field),
        primary_metric=primary_metric,
        tolerance=tolerance,
        higher_is_better=higher_is_better,
    )


def table_text(result: GridResult) -> str:
    """Render a table grid's single cell with ``tables.render``."""
    return render(result.cells[0].detail)


def run_grid_bench(
    benchmark,
    grid: Grid,
    paper_text: Optional[str] = None,
    text_fn: Optional[Callable[[GridResult], str]] = None,
) -> GridResult:
    """Run ``grid`` once under the benchmark fixture and report it."""
    result = benchmark.pedantic(
        lambda: run_grid(grid), rounds=1, iterations=1
    )
    text = (text_fn or render_grid)(result)
    if paper_text:
        text += "\n\n" + paper_text
    print()
    print(text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, f"{grid.name}.txt"), "w") as handle:
        handle.write(text + "\n")
    write_grid_artifacts(result, OUTPUT_DIR, baseline_dir=REPO_ROOT)
    return result


def paper_block(title: str, lines) -> str:
    """Format the paper's numbers as a reference block."""
    body = "\n".join(f"  {line}" for line in lines)
    return f"{title}\n{body}"
