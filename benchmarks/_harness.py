"""Shared plumbing for the per-table benchmark harness.

Every benchmark runs its table's simulations exactly once under
pytest-benchmark (``pedantic`` with one round — the interesting number is
the *simulated* result, the wall-clock time is a bonus), prints the
measured rows next to the paper's, and writes the same text to
``benchmarks/output/<name>.txt`` so results survive pytest's capture.

Run the whole harness with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Optional

from repro.experiments import ExperimentSettings
from repro.experiments.tables import render

#: Master seed for the benchmark harness: every table draws the same
#: transaction streams, so numbers are comparable across runs and machines.
BENCH_SEED = 1985

#: Load size for benchmark runs; large enough for stable shapes.
BENCH_SETTINGS = ExperimentSettings(n_transactions=30, seed=BENCH_SEED)

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def run_table(
    benchmark,
    name: str,
    table_func: Callable[..., Dict],
    paper_text: Optional[str] = None,
    settings: ExperimentSettings = BENCH_SETTINGS,
    seed: Optional[int] = None,
) -> Dict:
    """Run ``table_func`` once under the benchmark fixture and report it."""
    if seed is not None:
        settings = settings.with_overrides(seed=seed)
    result = benchmark.pedantic(
        lambda: table_func(settings), rounds=1, iterations=1
    )
    text = render(result)
    if paper_text:
        text += "\n\n" + paper_text
    print()
    print(text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    return result


#: Repository root — machine-readable benchmark artifacts land here (and
#: in ``benchmarks/output/``) as ``BENCH_<name>.json`` so CI can diff and
#: archive them without parsing the human tables.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_bench_json(name: str, payload: Dict[str, Any]) -> str:
    """Write ``payload`` as ``BENCH_<name>.json`` at the repo root and in
    ``benchmarks/output/``; returns the root path."""
    text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    root_path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    for path in (root_path, os.path.join(OUTPUT_DIR, f"BENCH_{name}.json")):
        with open(path, "w") as handle:
            handle.write(text)
    return root_path


def paper_block(title: str, lines) -> str:
    """Format the paper's numbers as a reference block."""
    body = "\n".join(f"  {line}" for line in lines)
    return f"{title}\n{body}"
