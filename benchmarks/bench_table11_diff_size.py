"""Table 11: effect of the size of the differential files.

Expected shape: performance degrades *nonlinearly* as the A/D files grow
from 10 % to 20 % of the base — extra I/O and the quadratic-ish growth in
set-difference work saturate the query processors (paper: 19.2 -> 24.8 ->
37.0 for conventional-random).
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table11_differential_size

GRID = table_grid(
    "table11",
    table11_differential_size,
    primary_metric="mean.size_15pct",
    seed=BENCH_SEED,
    title="Table 11. Effect of Size of Differential Files",
)

PAPER_TEXT = paper_block(
    "Paper Table 11 (exec ms/page, bare / 10% / 15% / 20%):",
    [
        f"{name}: {row['bare']} / {row[0.10]} / {row[0.15]} / {row[0.20]}"
        for name, row in PAPER["table11"].items()
    ],
)


def test_table11_differential_size(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    for row in result.cells[0].detail["rows"]:
        e10, e15, e20 = row["size_10pct"], row["size_15pct"], row["size_20pct"]
        assert e10 < e15 < e20, row
        assert (e20 - e15) > (e15 - e10), f"growth not accelerating: {row}"
