"""Ablation: what the online integrity scrubber costs and buys.

The scrubber (docs/INTEGRITY.md) patrols every data-disk cylinder on a
bounded I/O share, detecting silently rotted sectors before foreground
reads can trust them.  This ablation sweeps the patrol on/off, the I/O
share, and the rot rate on the mirrored small-drive testbed:

* **clean overhead** — with no rot, the patrol's reads compete with
  foreground I/O; the makespan penalty must stay small (the throttle
  argument — asserted below);
* **coverage** — under ``BIT_ROT`` faults, every rotted sector the
  patrol reaches is detected and repaired; with the patrol off the rot
  just accumulates (detections stay zero).
"""

from typing import Any, Dict

from benchmarks._harness import BENCH_SEED, paper_block, run_grid_bench
from repro.bench import Grid
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.hardware.params import IBM_3350
from repro.machine import MachineConfig
from repro.registry import survive_factory
from repro.resilience import Scrubber
from repro.sim import RandomStreams
from repro.machine.machine import DatabaseMachine
from repro.workload.generator import WorkloadConfig, generate_transactions

#: The scrubtest's small-drive testbed: one patrol pass fits the run.
SMALL_DISK = IBM_3350.with_overrides(cylinders=12)

PAPER_TEXT = paper_block(
    "Model (docs/INTEGRITY.md):",
    [
        "the scrubber patrols at a bounded I/O share, so a corruption-",
        "free run pays only a small makespan overhead, while under bit",
        "rot every sector the patrol reaches is detected and repaired.",
    ],
)


def scrub_cell(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    scrub_on = params["scrub"] == "on"
    config = MachineConfig().with_overrides(
        seed=seed,
        parallel_data_disks=True,
        mirrored_data_disks=True,
        scrub_enabled=scrub_on,
        scrub_io_share=params["io_share"],
        scrub_interval_ms=5.0,
        disk=SMALL_DISK,
        reserved_cylinders=3,
        db_pages=1_000,
    )
    transactions = generate_transactions(
        WorkloadConfig(n_transactions=10, max_pages=60),
        config.db_pages,
        RandomStreams(seed).stream("workload"),
    )
    faults = None
    if params["rot"] > 0.0:
        faults = FaultInjector(
            FaultPlan.of(
                FaultSpec(FaultKind.BIT_ROT, probability=params["rot"]),
                seed=seed,
            )
        )
    machine = DatabaseMachine(config, survive_factory("wal")(), faults=faults)
    if faults is not None:
        faults.arm(machine)
    if scrub_on:
        Scrubber(machine)
    result = machine.run(transactions)
    counters = result.counters
    return {
        "makespan_ms": result.makespan_ms,
        "scrub_detections": float(counters.get("scrub_detections", 0)),
        "scrub_repairs": float(counters.get("scrub_repairs", 0)),
    }


GRID = Grid(
    name="ablation_scrub_overhead",
    title="Ablation: scrubber overhead and coverage (on/off x share x rot)",
    seed=BENCH_SEED,
    runner=scrub_cell,
    parameters={
        "scrub": ["off", "on"],
        "io_share": [0.1, 0.5],
        "rot": [0.0, 0.05],
    },
    primary_metric="makespan_ms",
)


def test_ablation_scrub_overhead(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT)

    def makespan(**kw):
        return result.metric("makespan_ms", **kw)

    # The scrub-off cells ignore the io_share axis: identical machines.
    for rot in (0.0, 0.05):
        assert makespan(scrub="off", io_share=0.1, rot=rot) == makespan(
            scrub="off", io_share=0.5, rot=rot
        )
    # Clean-run overhead bound: the throttled patrol costs < 10% makespan.
    for share in (0.1, 0.5):
        off = makespan(scrub="off", io_share=share, rot=0.0)
        on = makespan(scrub="on", io_share=share, rot=0.0)
        assert on < 1.10 * off, f"scrub overhead at share {share}: {on / off:.3f}x"
    # No rot, no detections — the zero-false-positive half.
    for share in (0.1, 0.5):
        assert result.metric(
            "scrub_detections", scrub="on", io_share=share, rot=0.0
        ) == 0.0
    # Under rot the patrol detects and repairs what it finds, in equal
    # measure; with the patrol off nothing is even detected.
    detected = result.metric(
        "scrub_detections", scrub="on", io_share=0.5, rot=0.05
    )
    assert detected == result.metric(
        "scrub_repairs", scrub="on", io_share=0.5, rot=0.05
    )
    assert (
        result.metric("scrub_detections", scrub="off", io_share=0.5, rot=0.05)
        == 0.0
    )
