"""Restart time and normal-case overhead vs checkpoint interval.

The paper's Section 6 trade in one table: the same seeded workload runs
against each of the five recovery managers at several checkpoint
cadences (including the never-checkpoint baseline), crashes at the end,
and both sides of the trade are measured — the recovery-data records and
page writes the running system paid (overhead) and the records and pages
the restart had to reprocess, priced on the simulated hardware
(:func:`repro.analysis.estimate_functional_restart`).  Expected shape:
measured restart time never grows as the interval shrinks, stays under
the cadence-only analytic envelope, and the overhead bill moves the
other way.
"""

from typing import Any, Dict

from benchmarks._harness import BENCH_SEED, paper_block, run_grid_bench
from repro.analysis import checkpoint_interval_sweep
from repro.bench import Grid
from repro.faults import ARCHITECTURES

#: Widest cadence first; "never" is the never-checkpoint baseline.
INTERVALS = ["never", 16, 8, 4]
N_TRANSACTIONS = 40
#: Noise slack on the monotonicity check: one extra recovery-data page
#: read (the sweep is deterministic, but residue sizes quantize).
SLACK_MS = 30.0

PAPER_TEXT = paper_block(
    "Paper (Section 6):",
    [
        "'the frequency of checkpointing bounds the amount of log",
        " data which must be processed at restart, at the cost of",
        " additional work during normal operation'",
    ],
)


def checkpoint_cell(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    arch = params["architecture"]
    interval = None if params["interval"] == "never" else params["interval"]
    row = checkpoint_interval_sweep(
        seed, [interval], archs=[arch], n_transactions=N_TRANSACTIONS
    )[arch][0]
    return {
        "checkpoints_taken": row.checkpoints_taken,
        "overhead_records": row.overhead_records,
        "overhead_page_writes": row.overhead_page_writes,
        "restart_records": row.restart_records,
        "restart_pages_touched": row.restart_pages_touched,
        "restart_ms": round(row.measured.total_ms, 6),
        "bound_ms": round(row.analytic.total_ms, 6),
    }


GRID = Grid(
    name="checkpoint_interval",
    title=f"Restart cost vs checkpoint interval "
    f"(seed {BENCH_SEED}, {N_TRANSACTIONS} txns)",
    seed=BENCH_SEED,
    runner=checkpoint_cell,
    parameters={
        "architecture": sorted(ARCHITECTURES),
        "interval": INTERVALS,
    },
    primary_metric="restart_ms",
)


def test_checkpoint_interval(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT)
    for arch in sorted(ARCHITECTURES):
        costs = [
            result.metric("restart_ms", architecture=arch, interval=interval)
            for interval in INTERVALS
        ]
        # Restart never grows (within noise) as the interval shrinks...
        for wider, tighter in zip(costs, costs[1:]):
            assert tighter <= wider + SLACK_MS, (arch, costs)
        # ...checkpointing buys a real reduction against the baseline...
        assert costs[-1] <= costs[0] + 1e-9, (arch, costs)
        for interval in INTERVALS:
            cell = result.cell(architecture=arch, interval=interval)
            # ...stays under the cadence-only analytic envelope...
            assert cell.metric("restart_ms") <= cell.metric("bound_ms") + 1e-9, arch
        # ...and the normal-case overhead moves the other way.
        assert result.metric(
            "overhead_records", architecture=arch, interval=INTERVALS[-1]
        ) > result.metric(
            "overhead_records", architecture=arch, interval=INTERVALS[0]
        ), arch
