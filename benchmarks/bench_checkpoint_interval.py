"""Restart time and normal-case overhead vs checkpoint interval.

The paper's Section 6 trade in one table: the same seeded workload runs
against each of the five recovery managers at several checkpoint
cadences (including the never-checkpoint baseline), crashes at the end,
and both sides of the trade are measured — the recovery-data records and
page writes the running system paid (overhead) and the records and pages
the restart had to reprocess, priced on the simulated hardware
(:func:`repro.analysis.estimate_functional_restart`).  Expected shape:
measured restart time never grows as the interval shrinks, stays under
the cadence-only analytic envelope, and the overhead bill moves the
other way.
"""

import os

from benchmarks._harness import BENCH_SEED, OUTPUT_DIR, paper_block
from repro.analysis import checkpoint_interval_sweep
from repro.faults import ARCHITECTURES
from repro.metrics import format_table

SEED = BENCH_SEED

#: Widest cadence first; None is the never-checkpoint baseline.
INTERVALS = [None, 16, 8, 4]
N_TRANSACTIONS = 40
#: Noise slack on the monotonicity check: one extra recovery-data page
#: read (the sweep is deterministic, but residue sizes quantize).
SLACK_MS = 30.0


def test_checkpoint_interval(benchmark):
    results = {}

    def run_sweep():
        results.update(
            checkpoint_interval_sweep(
                SEED, INTERVALS, n_transactions=N_TRANSACTIONS
            )
        )
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for arch in sorted(ARCHITECTURES):
        for row in results[arch]:
            rows.append(
                [
                    arch,
                    "never" if row.checkpoint_every is None
                    else row.checkpoint_every,
                    row.checkpoints_taken,
                    row.overhead_records,
                    row.overhead_page_writes,
                    row.restart_records,
                    row.restart_pages_touched,
                    round(row.measured.total_ms, 1),
                    round(row.analytic.total_ms, 1),
                ]
            )
    text = format_table(
        [
            "architecture",
            "ckpt every",
            "taken",
            "run records",
            "run pg-writes",
            "restart records",
            "restart pages",
            "restart ms",
            "bound ms",
        ],
        rows,
        title=f"Restart cost vs checkpoint interval "
        f"(seed {SEED}, {N_TRANSACTIONS} txns)",
    )
    text += "\n\n" + paper_block(
        "Paper (Section 6):",
        [
            "'the frequency of checkpointing bounds the amount of log",
            " data which must be processed at restart, at the cost of",
            " additional work during normal operation'",
        ],
    )
    print()
    print(text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "checkpoint_interval.txt"), "w") as handle:
        handle.write(text + "\n")

    for arch in sorted(ARCHITECTURES):
        costs = [row.measured.total_ms for row in results[arch]]
        # Restart never grows (within noise) as the interval shrinks...
        for wider, tighter in zip(costs, costs[1:]):
            assert tighter <= wider + SLACK_MS, (arch, costs)
        # ...checkpointing buys a real reduction against the baseline...
        assert costs[-1] <= costs[0] + 1e-9, (arch, costs)
        for row in results[arch]:
            # ...stays under the cadence-only analytic envelope...
            assert row.measured.total_ms <= row.analytic.total_ms + 1e-9, arch
        # ...and the normal-case overhead moves the other way.
        assert (
            results[arch][-1].overhead_records
            > results[arch][0].overhead_records
        ), arch
