"""Benchmark: the open-system offered-load sweep and its collapse knee.

The paper drives every architecture with a closed batch, so overload is
invisible: the multiprogramming level caps the work in flight and the
machine simply takes longer.  The loadtest harness offers load on an
open arrival schedule instead; this benchmark sweeps two architectures —
parallel logging (the paper's headline) and shadow paging (its
structural opposite) — with the mirror-health toggle ablated (off =
mirrored-degraded state), and records where goodput (commits within the
SLO per second) peaks and where it collapses.  Expected shape: goodput
tracks offered load up to roughly calibrated capacity, then the
admission queue saturates, sojourn times blow through the SLO, and
goodput drops ≥20 % below its peak — the knee.  The full sweep detail
lands in ``BENCH_loadtest.json``.
"""

from typing import Any, Dict, Tuple

from benchmarks._harness import BENCH_SEED, paper_block, run_grid_bench
from repro.bench import ComponentToggle, Grid
from repro.loadgen import run_loadtest

N_PER_CELL = 24

PAPER_TEXT = paper_block(
    "Paper (Section 4):",
    [
        "the paper's closed batch caps work in flight at the MPL;",
        "an open system must instead survive offered load above",
        "capacity — bounded admission turns overload into rejections",
        "instead of collapse, and the knee prices where that starts.",
    ],
)


def loadtest_cell(
    params: Dict[str, Any], seed: int
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    state = "healthy" if params["mirror"] else "mirrored-degraded"
    report = run_loadtest(
        params["architecture"], seed=seed, n_per_cell=N_PER_CELL, state=state
    )
    peak = report.peak
    knee = report.knee()
    metrics = {
        "capacity_tps": round(report.calibration.capacity_tps, 6),
        "peak_goodput_tps": round(peak.run.goodput_tps, 6),
        "peak_multiplier": peak.multiplier,
        "knee_goodput_tps": round(knee.run.goodput_tps, 6) if knee else 0.0,
        "knee_multiplier": knee.multiplier if knee else 0.0,
        "oracles_ok": report.ok,
        "violations": len(report.violations),
    }
    return metrics, report.to_dict()


GRID = Grid(
    name="loadtest",
    title="Open-system loadtest: goodput peak and collapse knee",
    seed=BENCH_SEED,
    runner=loadtest_cell,
    parameters={"architecture": ["wal", "shadow"]},
    toggles=(ComponentToggle("mirror", "both mirror sides healthy"),),
    primary_metric="peak_goodput_tps",
    higher_is_better=True,
)


def test_bench_loadtest(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT)
    for cell in result.cells:
        assert cell.metric("oracles_ok"), cell.cell
        assert cell.metric("knee_multiplier") > 0, (cell.cell, "no collapse knee")
