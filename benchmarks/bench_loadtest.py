"""Benchmark: the open-system offered-load sweep and its collapse knee.

The paper drives every architecture with a closed batch, so overload is
invisible: the multiprogramming level caps the work in flight and the
machine simply takes longer.  The loadtest harness offers load on an
open arrival schedule instead; this benchmark sweeps two architectures —
parallel logging (the paper's headline) and shadow paging (its
structural opposite) — healthy and mirrored-degraded, and records where
goodput (commits within the SLO per second) peaks and where it
collapses.  Expected shape: goodput tracks offered load up to roughly
calibrated capacity, then the admission queue saturates, sojourn times
blow through the SLO, and goodput drops ≥20 % below its peak — the knee.
The machine-readable sweep lands in ``BENCH_loadtest.json``.
"""

import os

from benchmarks._harness import BENCH_SEED, OUTPUT_DIR, paper_block, write_bench_json
from repro.loadgen import run_loadtest
from repro.metrics import format_table

SEED = BENCH_SEED
N_PER_CELL = 24

#: (architecture, machine state) pairs priced by the sweep.
SWEEPS = (
    ("wal", "healthy"),
    ("wal", "mirrored-degraded"),
    ("shadow", "healthy"),
    ("shadow", "mirrored-degraded"),
)


def test_bench_loadtest(benchmark):
    reports = {}

    def run_all():
        for arch, state in SWEEPS:
            reports[(arch, state)] = run_loadtest(
                arch, seed=SEED, n_per_cell=N_PER_CELL, state=state
            )
        return reports

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    payload = {"seed": SEED, "n_per_cell": N_PER_CELL, "sweeps": []}
    for (arch, state), report in reports.items():
        peak = report.peak
        knee = report.knee()
        rows.append(
            [
                arch,
                state,
                f"{report.calibration.capacity_tps:.2f}",
                f"{peak.run.goodput_tps:.2f} @ x{peak.multiplier:g}",
                f"{knee.run.goodput_tps:.2f} @ x{knee.multiplier:g}"
                if knee
                else "none",
                "ok" if report.ok else "VIOLATIONS",
            ]
        )
        payload["sweeps"].append(report.to_dict())
    text = format_table(
        ["architecture", "state", "capacity tps", "peak goodput", "knee", "oracles"],
        rows,
        title="Open-system loadtest: goodput peak and collapse knee",
    )
    text += "\n\n" + paper_block(
        "Paper (Section 4):",
        [
            "the paper's closed batch caps work in flight at the MPL;",
            "an open system must instead survive offered load above",
            "capacity — bounded admission turns overload into rejections",
            "instead of collapse, and the knee prices where that starts.",
        ],
    )
    print()
    print(text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "loadtest.txt"), "w") as handle:
        handle.write(text + "\n")
    write_bench_json("loadtest", payload)

    for (arch, state), report in reports.items():
        assert report.ok, (arch, state, report.violations[:3])
        assert report.knee() is not None, (arch, state, "no collapse knee")
