"""Table 8: random transactions — thru page-table vs overwriting.

Expected shape: overwriting is the worst option for random loads (three
I/Os per update, arm bouncing between scratch and data areas), worse than
the thru-page-table shadow whose PT accesses pipeline with data-page
processing.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table8_random_overwriting

GRID = table_grid(
    "table08",
    table8_random_overwriting,
    primary_metric="mean.thru_pt",
    seed=BENCH_SEED,
    title="Table 8. Execution Time per Page (Random Transactions)",
)

PAPER_TEXT = paper_block(
    "Paper Table 8 (bare / thru page-table / overwriting):",
    [
        f"{kind}: {row['bare']} / {row['thru_pt']} / {row['overwriting']}"
        for kind, row in PAPER["table8"].items()
    ],
)


def test_table8_random_overwriting(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    rows = result.cells[0].detail["rows"]
    for row in rows:
        assert row["overwriting"] > row["bare"]
    conv = next(
        r for r in rows if r["configuration"] == "conventional-random"
    )
    assert conv["overwriting"] > 1.1 * conv["thru_pt"]
