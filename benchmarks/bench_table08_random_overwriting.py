"""Table 8: random transactions — thru page-table vs overwriting.

Expected shape: overwriting is the worst option for random loads (three
I/Os per update, arm bouncing between scratch and data areas), worse than
the thru-page-table shadow whose PT accesses pipeline with data-page
processing.
"""

from benchmarks._harness import BENCH_SEED, paper_block, run_table
from repro.experiments import PAPER, table8_random_overwriting

SEED = BENCH_SEED

PAPER_TEXT = paper_block(
    "Paper Table 8 (bare / thru page-table / overwriting):",
    [
        f"{kind}: {row['bare']} / {row['thru_pt']} / {row['overwriting']}"
        for kind, row in PAPER["table8"].items()
    ],
)


def test_table8_random_overwriting(benchmark):
    result = run_table(benchmark, "table08", table8_random_overwriting, PAPER_TEXT, seed=SEED)
    for row in result["rows"]:
        assert row["overwriting"] > row["bare"]
    conv = next(
        r for r in result["rows"] if r["configuration"] == "conventional-random"
    )
    assert conv["overwriting"] > 1.1 * conv["thru_pt"]
