"""Table 10: effect of the output fraction (differential files, optimal).

Expected shape: execution time grows only slightly as the output fraction
rises from 10 % to 50 % — page fragmentation means small fractions already
pay for mostly-empty output pages, the paper's explanation for the
sublinear growth.
"""

from benchmarks._harness import BENCH_SEED, paper_block, run_table
from repro.experiments import PAPER, table10_output_fraction

SEED = BENCH_SEED

PAPER_TEXT = paper_block(
    "Paper Table 10 (exec ms/page, bare / 10% / 20% / 50%):",
    [
        f"{name}: {row['bare']} / {row[0.10]} / {row[0.20]} / {row[0.50]}"
        for name, row in PAPER["table10"].items()
    ],
)


def test_table10_output_fraction(benchmark):
    result = run_table(benchmark, "table10", table10_output_fraction, PAPER_TEXT, seed=SEED)
    for row in result["rows"]:
        # Quintupling the output fraction costs far less than 5x.
        assert row["output_50pct"] < 1.35 * row["output_10pct"], row
        assert row["output_10pct"] >= row["bare"] * 0.95
