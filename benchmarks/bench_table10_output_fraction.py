"""Table 10: effect of the output fraction (differential files, optimal).

Expected shape: execution time grows only slightly as the output fraction
rises from 10 % to 50 % — page fragmentation means small fractions already
pay for mostly-empty output pages, the paper's explanation for the
sublinear growth.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table10_output_fraction

GRID = table_grid(
    "table10",
    table10_output_fraction,
    primary_metric="mean.output_20pct",
    seed=BENCH_SEED,
    title="Table 10. Effect of Output Fraction on Execution Time per Page",
)

PAPER_TEXT = paper_block(
    "Paper Table 10 (exec ms/page, bare / 10% / 20% / 50%):",
    [
        f"{name}: {row['bare']} / {row[0.10]} / {row[0.20]} / {row[0.50]}"
        for name, row in PAPER["table10"].items()
    ],
)


def test_table10_output_fraction(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    for row in result.cells[0].detail["rows"]:
        # Quintupling the output fraction costs far less than 5x.
        assert row["output_50pct"] < 1.35 * row["output_10pct"], row
        assert row["output_10pct"] >= row["bare"] * 0.95
