"""Lint throughput: serial vs ``--jobs N`` fan-out over the repo tree.

The flow-sensitive rules (PROTO01/02, FP01, TR02) build CFGs and run
interprocedural fixpoints, so a full-tree lint is no longer free; the
``--jobs`` flag fans per-module checking out over worker processes via
``repro.jobs.map_jobs``.  This benchmark lints the real ``src`` tree at
both parallelism levels and asserts the contract that makes the flag
safe to use in CI: the parallel findings are byte-identical to the
serial ones (compared by content digest, which is also the trajectory
metric — any rule change moves it past the zero tolerance, forcing a
deliberate baseline refresh).

Wall-clock note: the canonical artifact carries only the deterministic
counts and digest; the timing lands in the ``.wallclock.json`` sidecar,
where the parallel row shows the fan-out overhead/benefit at today's
tree size.
"""

import hashlib
import json
import multiprocessing
import os
from typing import Any, Dict

from benchmarks._harness import REPO_ROOT, run_grid_bench
from repro.bench import Grid
from repro.lint.engine import LintEngine

LINT_PATHS = [os.path.join(REPO_ROOT, "src")]


def lint_speed_cell(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    del seed  # linting is deterministic; the grid seed pins the spec
    engine = LintEngine(root=REPO_ROOT)
    project = engine.load(LINT_PATHS)
    jobs = params["jobs"]
    if multiprocessing.current_process().daemon:
        # Inside a ``repro bench --jobs`` worker nested pools are not
        # allowed; the findings are identical either way (that is the
        # contract this benchmark asserts), so fall back to serial.
        jobs = 1
    if jobs > 1:
        findings = engine.run_project_parallel(project, LINT_PATHS, jobs)
    else:
        findings = engine.run_project(project)
    digest = hashlib.sha256(
        json.dumps(
            [f.as_dict() for f in findings], sort_keys=True
        ).encode("utf-8")
    ).hexdigest()
    return {
        "files": len(project.modules),
        "findings": len(findings),
        "findings_digest": digest[:16],
    }


GRID = Grid(
    name="lint_speed",
    title="Lint throughput: serial vs --jobs fan-out over src",
    seed=1985,
    runner=lint_speed_cell,
    parameters={"jobs": [1, 4]},
    primary_metric="findings",
    tolerance=0.0,
)


def test_lint_speed(benchmark):
    result = run_grid_bench(benchmark, GRID)
    serial = result.cell(jobs=1)
    parallel = result.cell(jobs=4)
    assert parallel.metrics == serial.metrics, (
        "parallel lint must produce exactly the serial findings"
    )
