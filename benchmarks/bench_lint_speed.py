"""Lint throughput: serial vs ``--jobs N`` fan-out over the repo tree.

The flow-sensitive rules (PROTO01/02, FP01, TR02) build CFGs and run
interprocedural fixpoints, so a full-tree lint is no longer free; the
``--jobs`` flag fans per-module checking out over worker processes via
``repro.jobs.map_jobs``.  This benchmark times both paths on the real
``src`` tree and asserts the contract that makes the flag safe to use in
CI: the parallel findings are identical to the serial ones.

Wall-clock note: the tree is small enough that process start-up can eat
the win — the point of the benchmark is tracking the serial cost as rules
accrete, with the parallel row showing the fan-out overhead/benefit at
today's size.
"""

import json
import os
import time

from benchmarks._harness import OUTPUT_DIR
from repro.lint.engine import LintEngine

#: Linting is deterministic; the seed exists so the harness treats this
#: file like every other benchmark (BENCH01) and to pin any future
#: sampling a rule might grow.
SEED = 1985

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT_PATHS = [os.path.join(REPO_ROOT, "src")]
JOBS = 4


def _run(jobs):
    engine = LintEngine(root=REPO_ROOT)
    project = engine.load(LINT_PATHS)
    start = time.perf_counter()
    if jobs > 1:
        findings = engine.run_project_parallel(project, LINT_PATHS, jobs)
    else:
        findings = engine.run_project(project)
    elapsed = time.perf_counter() - start
    return findings, len(project.modules), elapsed


def test_lint_speed(benchmark):
    serial, n_files, serial_s = benchmark.pedantic(
        lambda: _run(jobs=1), rounds=1, iterations=1
    )
    parallel, _, parallel_s = _run(jobs=JOBS)

    assert [f.as_dict() for f in parallel] == [f.as_dict() for f in serial], (
        "parallel lint must produce exactly the serial findings"
    )

    lines = [
        f"lint speed over src ({n_files} files, seed {SEED})",
        f"  serial:        {serial_s * 1000:8.1f} ms",
        f"  --jobs {JOBS}:      {parallel_s * 1000:8.1f} ms",
        f"  findings:      {len(serial)} (identical serial vs parallel)",
    ]
    text = "\n".join(lines)
    print()
    print(text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "lint_speed.txt"), "w") as handle:
        handle.write(text + "\n")
    with open(os.path.join(OUTPUT_DIR, "lint_speed.json"), "w") as handle:
        json.dump(
            {
                "seed": SEED,
                "files": n_files,
                "serial_ms": serial_s * 1000,
                "parallel_ms": parallel_s * 1000,
                "jobs": JOBS,
                "findings": len(serial),
            },
            handle,
            indent=2,
        )
        handle.write("\n")
