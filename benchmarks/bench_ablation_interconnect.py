"""Ablation (paper Section 4.1.3): the QP<->LP interconnect barely matters.

The paper evaluates dedicated links of 1.0, 0.1, and 0.01 MB/s and routing
fragments through the disk cache, and finds the database machine
insensitive to all of them: fragment delays are absorbed in the
inter-arrival gaps at the log processor, and neither QP cycles nor cache
frames are the binding constraint.  Expected shape: all columns within a
few percent of each other.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import ablation_interconnect

GRID = table_grid(
    "ablation_interconnect",
    ablation_interconnect,
    primary_metric="mean.through_cache",
    seed=BENCH_SEED,
    title="Ablation (Sec 4.1.3): QP-LP interconnect bandwidth and routing",
)

PAPER_TEXT = paper_block(
    "Paper (Section 4.1.3, no table given):",
    [
        "performance 'quite insensitive' to 1.0 / 0.1 / 0.01 MB/s links",
        "performance 'not affected' by routing fragments through the cache",
    ],
)


def test_ablation_interconnect(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    for row in result.cells[0].detail["rows"]:
        values = [v for k, v in row.items() if k != "configuration"]
        assert max(values) <= 1.12 * min(values), row
