"""Ablation (paper Section 4.1.3): the QP<->LP interconnect barely matters.

The paper evaluates dedicated links of 1.0, 0.1, and 0.01 MB/s and routing
fragments through the disk cache, and finds the database machine
insensitive to all of them: fragment delays are absorbed in the
inter-arrival gaps at the log processor, and neither QP cycles nor cache
frames are the binding constraint.  Expected shape: all columns within a
few percent of each other.
"""

from benchmarks._harness import BENCH_SEED, paper_block, run_table
from repro.experiments import ablation_interconnect

SEED = BENCH_SEED

PAPER_TEXT = paper_block(
    "Paper (Section 4.1.3, no table given):",
    [
        "performance 'quite insensitive' to 1.0 / 0.1 / 0.01 MB/s links",
        "performance 'not affected' by routing fragments through the cache",
    ],
)


def test_ablation_interconnect(benchmark):
    result = run_table(benchmark, "ablation_interconnect", ablation_interconnect, PAPER_TEXT, seed=SEED)
    for row in result["rows"]:
        values = [v for k, v in row.items() if k != "configuration"]
        assert max(values) <= 1.12 * min(values), row
