"""Ablation (paper Section 3.2.2.2): no-undo vs no-redo overwriting.

The paper describes both variants but evaluates only no-undo.  This
ablation runs both: no-redo writes each update home immediately (after
saving the shadow to the scratch ring) and so needs no commit-time data
movement, while no-undo defers home writes to after commit.  Expected
shape: both cost noticeably more than the bare machine; their ordering
depends on configuration (no-redo does 2 I/Os per update spread over the
transaction's lifetime, no-undo 3 concentrated at commit but batchable on
parallel-access drives).
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import ablation_overwriting_variants

GRID = table_grid(
    "ablation_overwriting_variants",
    ablation_overwriting_variants,
    primary_metric="mean.no_undo",
    seed=BENCH_SEED,
    title="Ablation (Sec 3.2.2.2): overwriting no-undo vs no-redo",
)

PAPER_TEXT = paper_block(
    "Paper (Section 3.2.2.2 describes both; Tables 7-8 evaluate no-undo):",
    [
        "no-redo: shadows saved to scratch, homes overwritten eagerly",
        "no-undo: currents parked in scratch, shadows overwritten at commit",
    ],
)


def test_ablation_overwriting_variants(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    for row in result.cells[0].detail["rows"]:
        assert row["no_undo"] > 0 and row["no_redo"] > 0
