"""Ablation: the collection-vs-restart trade-off, measured functionally.

The paper's Section 3 premise: "a recovery mechanism may make collection of
recovery data relatively less expensive at the price of making recovery
from failures costly" — and the architectures deliberately optimize the
normal case.  This ablation quantifies the other side of that trade on the
functional engine: identical transaction histories run under every
manager, a crash is injected, and the *restart work* (stable page writes
performed during ``recover()``) is reported, alongside the collection work
(stable writes during normal processing).

Expected shape: shadow paging and version selection restart for free
(commit already installed everything atomically); no-undo overwriting
redoes committed-but-unapplied scratch copies; WAL pays redo for
committed-unflushed pages plus undo for stolen ones — the classic
spectrum.
"""

import random

from benchmarks._harness import OUTPUT_DIR, paper_block
from repro.metrics import format_table
from repro.storage import (
    DifferentialFileManager,
    DistributedWalManager,
    OverwriteVariant,
    OverwritingManager,
    ShadowPageTableManager,
    VersionSelectionManager,
)

SEED = 3

MANAGERS = {
    "wal-3-logs": lambda: DistributedWalManager(n_logs=3),
    "shadow-pt": lambda: ShadowPageTableManager(),
    "overwrite-no-undo": lambda: OverwritingManager(OverwriteVariant.NO_UNDO),
    "overwrite-no-redo": lambda: OverwritingManager(OverwriteVariant.NO_REDO),
    "version-selection": lambda: VersionSelectionManager(),
    "differential": lambda: DifferentialFileManager(),
}


def run_history(manager, n_txns=40, pages=32, seed=SEED):
    """Committed transfers plus an in-flight loser, then a crash."""
    rng = random.Random(seed)
    for _ in range(n_txns):
        tid = manager.begin()
        for page in rng.sample(range(pages), 4):
            manager.write(tid, page, bytes([rng.randrange(256)]) * 8)
        manager.commit(tid)
    loser = manager.begin()
    for page in rng.sample(range(pages), 4):
        manager.write(loser, page, b"uncommitted")
    if hasattr(manager, "flush_page"):
        manager.flush_page(next(iter(manager.dirty_pages)))  # a steal
    collection_writes = manager.stable.page_writes
    collection_appends = manager.stable.records_appended
    manager.crash()
    before = manager.stable.page_writes
    manager.recover()
    restart_writes = manager.stable.page_writes - before
    return collection_writes, collection_appends, restart_writes


def test_ablation_recovery_cost(benchmark):
    rows = []
    results = {}

    def run_all():
        for name, factory in MANAGERS.items():
            results[name] = run_history(factory())
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, (coll_w, coll_a, restart_w) in results.items():
        rows.append([name, coll_w, coll_a, restart_w])
    text = format_table(
        ["manager", "collection page-writes", "collection appends", "restart page-writes"],
        rows,
        title="Ablation: collection work vs restart work (identical history)",
    )
    text += "\n\n" + paper_block(
        "Paper (Section 3):",
        [
            "'the focus of an implementation should be on making the normal",
            " case efficient ... even if it meant making recovery from a",
            " failure more expensive'",
        ],
    )
    print()
    print(text)
    import os

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "ablation_recovery_cost.txt"), "w") as handle:
        handle.write(text + "\n")

    # Shadow / version selection restart without touching data pages.
    assert results["shadow-pt"][2] == 0
    assert results["version-selection"][2] == 0
    # WAL must do restart work here (redo of unflushed committed pages).
    assert results["wal-3-logs"][2] > 0
