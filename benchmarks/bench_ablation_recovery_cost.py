"""Ablation: the collection-vs-restart trade-off, measured functionally.

The paper's Section 3 premise: "a recovery mechanism may make collection of
recovery data relatively less expensive at the price of making recovery
from failures costly" — and the architectures deliberately optimize the
normal case.  This ablation quantifies the other side of that trade on the
functional engine: identical transaction histories run under every
manager, a crash is injected, and the *restart work* (stable page writes
performed during ``recover()``) is reported, alongside the collection work
(stable writes during normal processing).

Expected shape: shadow paging and version selection restart for free
(commit already installed everything atomically); no-undo overwriting
redoes committed-but-unapplied scratch copies; WAL pays redo for
committed-unflushed pages plus undo for stolen ones — the classic
spectrum.
"""

import random
from typing import Any, Dict

from benchmarks._harness import paper_block, run_grid_bench
from repro.bench import Grid
from repro.storage import (
    CommandLoggingManager,
    DifferentialFileManager,
    DistributedWalManager,
    OverwriteVariant,
    OverwritingManager,
    RedoOnlyWalManager,
    ShadowPageTableManager,
    VersionSelectionManager,
)

SEED = 3

MANAGERS = {
    "wal-3-logs": lambda: DistributedWalManager(n_logs=3),
    "shadow-pt": lambda: ShadowPageTableManager(),
    "overwrite-no-undo": lambda: OverwritingManager(OverwriteVariant.NO_UNDO),
    "overwrite-no-redo": lambda: OverwritingManager(OverwriteVariant.NO_REDO),
    "version-selection": lambda: VersionSelectionManager(),
    "differential": lambda: DifferentialFileManager(),
    "command-logging": lambda: CommandLoggingManager(),
    "redo-only-wal": lambda: RedoOnlyWalManager(),
}

PAPER_TEXT = paper_block(
    "Paper (Section 3):",
    [
        "'the focus of an implementation should be on making the normal",
        " case efficient ... even if it meant making recovery from a",
        " failure more expensive'",
    ],
)


def recovery_cost_cell(params: Dict[str, Any], seed: int) -> Dict[str, int]:
    """Committed transfers plus an in-flight loser, then a crash."""
    manager = MANAGERS[params["manager"]]()
    n_txns, pages = 40, 32
    rng = random.Random(seed)
    for _ in range(n_txns):
        tid = manager.begin()
        for page in rng.sample(range(pages), 4):
            manager.write(tid, page, bytes([rng.randrange(256)]) * 8)
        manager.commit(tid)
    loser = manager.begin()
    for page in rng.sample(range(pages), 4):
        manager.write(loser, page, b"uncommitted")
    if hasattr(manager, "flush_page"):
        manager.flush_page(next(iter(manager.dirty_pages)))  # a steal
    collection_writes = manager.stable.page_writes
    collection_appends = manager.stable.records_appended
    manager.crash()
    before = manager.stable.page_writes
    manager.recover()
    return {
        "collection_page_writes": collection_writes,
        "collection_appends": collection_appends,
        "restart_page_writes": manager.stable.page_writes - before,
    }


GRID = Grid(
    name="ablation_recovery_cost",
    title="Ablation: collection work vs restart work (identical history)",
    seed=SEED,
    runner=recovery_cost_cell,
    parameters={"manager": list(MANAGERS)},
    primary_metric="restart_page_writes",
)


def test_ablation_recovery_cost(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT)
    # Shadow / version selection restart without touching data pages.
    assert result.metric(manager="shadow-pt") == 0
    assert result.metric(manager="version-selection") == 0
    # WAL must do restart work here (redo of unflushed committed pages).
    assert result.metric(manager="wal-3-logs") > 0
    # The modern redo-only designs also pay restart redo (their committed
    # pages sat behind the no-steal gate), but never undo: the in-flight
    # loser's steal attempt was gated, so nothing of it reached disk.
    assert result.metric(manager="command-logging") > 0
    assert result.metric(manager="redo-only-wal") > 0
