"""Table 1: impact of (logical) logging with one log disk.

Regenerates the paper's Table 1 — execution time per page and transaction
completion time, with and without logging, in all four configurations.
Expected shape: logging leaves throughput essentially unchanged (collection
of recovery data overlaps data processing) and nudges completion times.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table1_logging_impact

GRID = table_grid(
    "table01",
    table1_logging_impact,
    primary_metric="mean.exec_with_log",
    seed=BENCH_SEED,
    title="Table 1. Impact of Logging",
)

PAPER_TEXT = paper_block(
    "Paper Table 1 (exec ms/page without -> with log):",
    [
        f"{name}: {PAPER['table1']['exec_without_log'][name]} -> "
        f"{PAPER['table1']['exec_with_log'][name]}"
        for name in PAPER["table1"]["exec_without_log"]
    ],
)


def test_table1_logging_impact(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    for row in result.cells[0].detail["rows"]:
        # Logging must not degrade throughput by more than ~10 %.
        assert row["exec_with_log"] <= 1.10 * row["exec_without_log"], row
