"""Ablation: restart time after a crash, priced on 1985 hardware.

Complements ``bench_ablation_recovery_cost`` (which counts restart *work*
in the functional engine) by pricing each architecture's restart in
milliseconds: identical timed runs produce their actual recovery-data
volumes, and the estimator charges the simulated disks for scanning and
re-applying them.  Expected shape — the paper's Section 3 trade-off:
parallel logging, the normal-case winner, pays the largest restart bill;
shadow paging and version selection restart essentially for free.
"""

from benchmarks._harness import BENCH_SEED, BENCH_SETTINGS, OUTPUT_DIR, paper_block
from repro.analysis import estimate_restart
from repro.core import (
    BareArchitecture,
    DifferentialFileArchitecture,
    LoggingConfig,
    OverwritingArchitecture,
    OverwritingMode,
    PageTableShadowArchitecture,
    ParallelLoggingArchitecture,
    VersionSelectionArchitecture,
)
from repro.experiments import CONFIGURATIONS, run_configuration
from repro.machine import MachineConfig
from repro.metrics import format_table

SEED = BENCH_SEED
SETTINGS = BENCH_SETTINGS.with_overrides(seed=SEED)

ARCHITECTURES = {
    "logging (1 log disk)": (
        lambda: ParallelLoggingArchitecture(LoggingConfig()),
        {"n_log_disks": 1},
    ),
    "logging (3 log disks)": (
        lambda: ParallelLoggingArchitecture(LoggingConfig(n_log_processors=3)),
        {"n_log_disks": 3},
    ),
    "shadow-pt": (lambda: PageTableShadowArchitecture(), {}),
    "overwriting no-undo": (
        lambda: OverwritingArchitecture(OverwritingMode.NO_UNDO),
        {},
    ),
    "overwriting no-redo": (
        lambda: OverwritingArchitecture(OverwritingMode.NO_REDO),
        {},
    ),
    "differential": (lambda: DifferentialFileArchitecture(), {}),
}


def test_ablation_restart_time(benchmark):
    config = MachineConfig()
    rows = []
    estimates = {}

    def run_all():
        for label, (factory, kwargs) in ARCHITECTURES.items():
            result = run_configuration(
                CONFIGURATIONS["conventional-random"], factory, SETTINGS
            )
            estimates[label] = estimate_restart(result, config, **kwargs)
        return estimates

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for label, estimate in estimates.items():
        rows.append(
            [
                label,
                round(estimate.scan_ms, 1),
                round(estimate.redo_ms, 1),
                round(estimate.undo_ms, 1),
                round(estimate.total_ms, 1),
            ]
        )
    text = format_table(
        ["architecture", "scan (ms)", "redo (ms)", "undo (ms)", "total (ms)"],
        rows,
        title="Ablation: estimated restart time after a crash (conv-random run)",
    )
    text += "\n\n" + paper_block(
        "Paper (Section 3):",
        [
            "'a recovery mechanism may make collection of recovery data",
            " relatively less expensive at the price of making recovery",
            " from failures costly'",
        ],
    )
    print()
    print(text)
    import os

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "ablation_restart_time.txt"), "w") as handle:
        handle.write(text + "\n")

    assert estimates["logging (1 log disk)"].total_ms > estimates["shadow-pt"].total_ms
    assert (
        estimates["logging (3 log disks)"].scan_ms
        < estimates["logging (1 log disk)"].scan_ms
    )
    assert estimates["differential"].total_ms < 100.0
