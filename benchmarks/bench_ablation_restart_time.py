"""Ablation: restart time after a crash, priced on 1985 hardware.

Complements ``bench_ablation_recovery_cost`` (which counts restart *work*
in the functional engine) by pricing each architecture's restart in
milliseconds: identical timed runs produce their actual recovery-data
volumes, and the estimator charges the simulated disks for scanning and
re-applying them.  Expected shape — the paper's Section 3 trade-off:
parallel logging, the normal-case winner, pays the largest restart bill;
shadow paging and version selection restart essentially for free.
"""

from typing import Any, Dict

from benchmarks._harness import (
    BENCH_SEED,
    BENCH_SETTINGS,
    paper_block,
    run_grid_bench,
)
from repro.analysis import estimate_restart
from repro.bench import Grid
from repro.core import (
    CommandLoggingArchitecture,
    DifferentialFileArchitecture,
    LoggingConfig,
    OverwritingArchitecture,
    OverwritingMode,
    PageTableShadowArchitecture,
    ParallelLoggingArchitecture,
    RedoOnlyWalArchitecture,
    VersionSelectionArchitecture,
)
from repro.core.modern.command import COMMAND_FRAGMENT_BYTES
from repro.experiments import CONFIGURATIONS, run_configuration
from repro.machine import MachineConfig

ARCHITECTURES = {
    "logging (1 log disk)": (
        lambda: ParallelLoggingArchitecture(LoggingConfig()),
        {"n_log_disks": 1},
    ),
    "logging (3 log disks)": (
        lambda: ParallelLoggingArchitecture(LoggingConfig(n_log_processors=3)),
        {"n_log_disks": 3},
    ),
    "shadow-pt": (lambda: PageTableShadowArchitecture(), {}),
    "overwriting no-undo": (
        lambda: OverwritingArchitecture(OverwritingMode.NO_UNDO),
        {},
    ),
    "overwriting no-redo": (
        lambda: OverwritingArchitecture(OverwritingMode.NO_REDO),
        {},
    ),
    "differential": (lambda: DifferentialFileArchitecture(), {}),
    "command-logging (3 log disks)": (
        lambda: CommandLoggingArchitecture(
            LoggingConfig(
                fragment_bytes=COMMAND_FRAGMENT_BYTES, n_log_processors=3
            )
        ),
        {"n_log_disks": 3},
    ),
    "redo-wal": (lambda: RedoOnlyWalArchitecture(), {}),
}

PAPER_TEXT = paper_block(
    "Paper (Section 3):",
    [
        "'a recovery mechanism may make collection of recovery data",
        " relatively less expensive at the price of making recovery",
        " from failures costly'",
    ],
)


def restart_time_cell(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    factory, kwargs = ARCHITECTURES[params["architecture"]]
    result = run_configuration(
        CONFIGURATIONS["conventional-random"],
        factory,
        BENCH_SETTINGS.with_overrides(seed=seed),
    )
    estimate = estimate_restart(result, MachineConfig(), **kwargs)
    return {
        "scan_ms": round(estimate.scan_ms, 6),
        "redo_ms": round(estimate.redo_ms, 6),
        "undo_ms": round(estimate.undo_ms, 6),
        "total_ms": round(estimate.total_ms, 6),
    }


GRID = Grid(
    name="ablation_restart_time",
    title="Ablation: estimated restart time after a crash (conv-random run)",
    seed=BENCH_SEED,
    runner=restart_time_cell,
    parameters={"architecture": list(ARCHITECTURES)},
    primary_metric="total_ms",
)


def test_ablation_restart_time(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT)
    assert result.metric(architecture="logging (1 log disk)") > result.metric(
        architecture="shadow-pt"
    )
    assert result.metric(
        "scan_ms", architecture="logging (3 log disks)"
    ) < result.metric("scan_ms", architecture="logging (1 log disk)")
    assert result.metric(architecture="differential") < 100.0
    # The modern designs never undo: command logging's no-steal gate and
    # the redo-only discipline keep uncommitted pages off the home disks.
    assert result.metric("undo_ms", architecture="redo-wal") == 0.0
    assert result.metric(
        "undo_ms", architecture="command-logging (3 log disks)"
    ) == 0.0
    # Wave replay across three log disks beats the single-stream redo.
    assert result.metric(
        "redo_ms", architecture="command-logging (3 log disks)"
    ) < result.metric("redo_ms", architecture="redo-wal")
