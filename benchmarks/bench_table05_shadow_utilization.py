"""Table 5: average utilization of data and page-table disks.

Expected shape (paper's numbers in parentheses): with one PT processor on
a random load the PT disk saturates (1.00) while the data disks starve
(0.86); with two PT processors the PT utilization halves (0.60); on
sequential loads the PT disk is nearly idle (0.06).
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table5_shadow_utilization

GRID = table_grid(
    "table05",
    table5_shadow_utilization,
    primary_metric="mean.1ptp_pt",
    seed=BENCH_SEED,
    title="Table 5. Average Utilization of Data and Page-Table Disks",
)

PAPER_TEXT = paper_block(
    "Paper Table 5 (1 PT proc: data util / PT util):",
    [
        f"{name}: {PAPER['table5']['1ptp_data'][name]} / "
        f"{PAPER['table5']['1ptp_pt'][name]}"
        for name in PAPER["table5"]["1ptp_data"]
    ],
)


def test_table5_shadow_utilization(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    rows = {
        row["configuration"]: row for row in result.cells[0].detail["rows"]
    }
    rand = rows["conventional-random"]
    assert rand["1ptp_pt"] > 0.9          # PT disk saturated
    assert rand["1ptp_data"] < rand["bare_data"] - 0.05  # data disks starve
    assert rand["2ptp_pt"] < rand["1ptp_pt"] - 0.2       # relief with 2 procs
    assert rows["conventional-sequential"]["1ptp_pt"] < 0.2
