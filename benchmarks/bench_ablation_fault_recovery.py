"""Ablation: post-crash recovery work by fault type, per architecture.

Prices the restart side of the paper's Section 3 trade-off in the
functional engine: the same seeded workload runs against each of the five
recovery managers, a fault is injected (a clean crash between operations,
a crash in the middle of commit processing, or a re-crash during the
recovery pass itself), and the stable-storage counters are snapshotted
around ``recover()`` to count the pages and records recovery touches.
Expected shape: the WAL manager pays the largest restart bill (log scan +
truncation across three logs); shadow paging and version selection restart
almost for free; a re-crash never costs more than double a single pass.
"""

import os

from benchmarks._harness import BENCH_SEED, OUTPUT_DIR, paper_block
from repro.faults import (
    ARCHITECTURES,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    generate_ops,
    make_manager,
)
from repro.faults.harness import _apply_op
from repro.metrics import format_table

SEED = BENCH_SEED

#: fault label -> plan factory (the harness's hook grammar; docs/FAULTS.md).
FAULT_TYPES = {
    "clean-crash": lambda: FaultPlan.of(
        FaultSpec(FaultKind.CRASH, hook="op-boundary", occurrence=20), seed=SEED
    ),
    "mid-commit": lambda: FaultPlan.of(
        FaultSpec(FaultKind.CRASH, hook="*.commit.*", occurrence=3), seed=SEED
    ),
    "recrash": lambda: FaultPlan.of(
        FaultSpec(FaultKind.CRASH, hook="op-boundary", occurrence=20), seed=SEED
    ),
}


def recovery_work(arch: str, fault: str) -> dict:
    """Run the seeded workload to the fault, recover, count the work."""
    manager = make_manager(arch)
    injector = FaultInjector(FAULT_TYPES[fault]())
    manager.set_fault_callback(injector.reached)
    tids, committed, pending = {}, {}, {}
    try:
        for op in generate_ops(SEED, n_transactions=12):
            injector.reached("op-boundary")
            _apply_op(manager, op, tids, committed, pending)
    except InjectedCrash:
        pass
    manager.set_fault_callback(None)
    manager.crash()
    stable = manager.stable
    before = (stable.page_writes, stable.page_reads, stable.records_appended)
    if fault == "recrash":
        recrash = FaultInjector(
            FaultPlan.of(FaultSpec(FaultKind.CRASH, hook="*"), seed=SEED)
        )
        manager.set_fault_callback(recrash.reached)
        try:
            manager.recover()
        except InjectedCrash:
            manager.set_fault_callback(None)
            manager.crash()
            manager.recover()
        manager.set_fault_callback(None)
    else:
        manager.recover()
    return {
        "page_writes": stable.page_writes - before[0],
        "page_reads": stable.page_reads - before[1],
        "records": stable.records_appended - before[2],
    }


def test_ablation_fault_recovery(benchmark):
    work = {}

    def run_all():
        for arch in sorted(ARCHITECTURES):
            for fault in FAULT_TYPES:
                work[(arch, fault)] = recovery_work(arch, fault)
        return work

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for arch in sorted(ARCHITECTURES):
        row = [arch]
        for fault in FAULT_TYPES:
            counts = work[(arch, fault)]
            row.append(
                f"{counts['page_writes']}w/{counts['page_reads']}r"
                f"/{counts['records']}a"
            )
        rows.append(row)
    text = format_table(
        ["architecture"] + [f"{fault} (writes/reads/appends)" for fault in FAULT_TYPES],
        rows,
        title="Ablation: stable-storage work during recovery, by fault type",
    )
    text += "\n\n" + paper_block(
        "Paper (Section 3):",
        [
            "'a recovery mechanism may make collection of recovery data",
            " relatively less expensive at the price of making recovery",
            " from failures costly'",
        ],
    )
    print()
    print(text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "ablation_fault_recovery.txt"), "w") as handle:
        handle.write(text + "\n")

    # The WAL restart (scan + two-phase truncation of three logs) touches
    # more stable records than the shadow restart, which only drops the
    # alternate table.
    wal = work[("wal", "clean-crash")]
    shadow = work[("shadow", "clean-crash")]
    assert wal["records"] + wal["page_writes"] >= shadow["records"] + shadow["page_writes"]
    # A crash during recovery at most doubles the single-pass bill.
    for arch in sorted(ARCHITECTURES):
        single = work[(arch, "clean-crash")]
        double = work[(arch, "recrash")]
        assert double["page_writes"] <= 2 * max(single["page_writes"], 1) + 2, arch
