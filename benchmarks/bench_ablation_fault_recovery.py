"""Ablation: post-crash recovery work by fault type, per architecture.

Prices the restart side of the paper's Section 3 trade-off in the
functional engine: the same seeded workload runs against each of the five
recovery managers, a fault is injected (a clean crash between operations,
a crash in the middle of commit processing, or a re-crash during the
recovery pass itself), and the stable-storage counters are snapshotted
around ``recover()`` to count the pages and records recovery touches.
Expected shape: the WAL manager pays the largest restart bill (log scan +
truncation across three logs); shadow paging and version selection restart
almost for free; a re-crash never costs more than double a single pass.
"""

from typing import Any, Dict

from benchmarks._harness import BENCH_SEED, paper_block, run_grid_bench
from repro.bench import Grid
from repro.faults import (
    ARCHITECTURES,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    generate_ops,
    make_manager,
)
from repro.faults.harness import _apply_op

PAPER_TEXT = paper_block(
    "Paper (Section 3):",
    [
        "'a recovery mechanism may make collection of recovery data",
        " relatively less expensive at the price of making recovery",
        " from failures costly'",
    ],
)

#: fault label -> plan factory (the harness's hook grammar; docs/FAULTS.md).
FAULT_TYPES = ("clean-crash", "mid-commit", "recrash")


def _fault_plan(fault: str, seed: int) -> FaultPlan:
    if fault == "mid-commit":
        return FaultPlan.of(
            FaultSpec(FaultKind.CRASH, hook="*.commit.*", occurrence=3), seed=seed
        )
    return FaultPlan.of(
        FaultSpec(FaultKind.CRASH, hook="op-boundary", occurrence=20), seed=seed
    )


def fault_recovery_cell(params: Dict[str, Any], seed: int) -> Dict[str, int]:
    """Run the seeded workload to the fault, recover, count the work."""
    arch, fault = params["architecture"], params["fault"]
    manager = make_manager(arch)
    injector = FaultInjector(_fault_plan(fault, seed))
    manager.set_fault_callback(injector.reached)
    tids, committed, pending = {}, {}, {}
    try:
        for op in generate_ops(seed, n_transactions=12):
            injector.reached("op-boundary")
            _apply_op(manager, op, tids, committed, pending)
    except InjectedCrash:
        pass
    manager.set_fault_callback(None)
    manager.crash()
    stable = manager.stable
    before = (stable.page_writes, stable.page_reads, stable.records_appended)
    if fault == "recrash":
        recrash = FaultInjector(
            FaultPlan.of(FaultSpec(FaultKind.CRASH, hook="*"), seed=seed)
        )
        manager.set_fault_callback(recrash.reached)
        try:
            manager.recover()
        except InjectedCrash:
            manager.set_fault_callback(None)
            manager.crash()
            manager.recover()
        manager.set_fault_callback(None)
    else:
        manager.recover()
    return {
        "page_writes": stable.page_writes - before[0],
        "page_reads": stable.page_reads - before[1],
        "records": stable.records_appended - before[2],
    }


GRID = Grid(
    name="ablation_fault_recovery",
    title="Ablation: stable-storage work during recovery, by fault type",
    seed=BENCH_SEED,
    runner=fault_recovery_cell,
    parameters={
        "architecture": sorted(ARCHITECTURES),
        "fault": list(FAULT_TYPES),
    },
    primary_metric="page_writes",
)


def test_ablation_fault_recovery(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT)

    def work(arch, fault):
        return result.cell(architecture=arch, fault=fault).metrics

    # The WAL restart (scan + two-phase truncation of three logs) touches
    # more stable records than the shadow restart, which only drops the
    # alternate table.
    wal = work("wal", "clean-crash")
    shadow = work("shadow", "clean-crash")
    assert wal["records"] + wal["page_writes"] >= shadow["records"] + shadow["page_writes"]
    # A crash during recovery at most doubles the single-pass bill.
    for arch in sorted(ARCHITECTURES):
        single = work(arch, "clean-crash")
        double = work(arch, "recrash")
        assert double["page_writes"] <= 2 * max(single["page_writes"], 1) + 2, arch
