"""Ablation (paper Section 3.1): checkpointing in parallel, no quiescing.

The paper claims (deferring details to ref [13]) that system checkpointing
"can be performed in parallel with the normal data processing and logging
activities without complete system quiescing".  This ablation runs the
logging architecture with background checkpoints at increasingly aggressive
intervals.  Expected shape: throughput does not move — each checkpoint is
one forced partial log page plus one checkpoint page per log disk, fully
overlapped with data-page processing.
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import ablation_checkpointing

GRID = table_grid(
    "ablation_checkpointing",
    ablation_checkpointing,
    primary_metric="mean.every_500ms",
    seed=BENCH_SEED,
    title="Ablation (Sec 3.1): checkpointing in parallel with processing",
)

PAPER_TEXT = paper_block(
    "Paper (Section 3.1, details in ref [13]):",
    [
        "'system checkpointing can be performed in parallel with the normal",
        " data processing and logging activities without complete system",
        " quiescing'",
    ],
)


def test_ablation_checkpointing(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    for row in result.cells[0].detail["rows"]:
        assert row["every_500ms"] <= 1.06 * row["no_checkpoints"], row
