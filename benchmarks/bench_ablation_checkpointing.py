"""Ablation (paper Section 3.1): checkpointing in parallel, no quiescing.

The paper claims (deferring details to ref [13]) that system checkpointing
"can be performed in parallel with the normal data processing and logging
activities without complete system quiescing".  This ablation runs the
logging architecture with background checkpoints at increasingly aggressive
intervals.  Expected shape: throughput does not move — each checkpoint is
one forced partial log page plus one checkpoint page per log disk, fully
overlapped with data-page processing.
"""

from benchmarks._harness import BENCH_SEED, paper_block, run_table
from repro.experiments import ablation_checkpointing

SEED = BENCH_SEED

PAPER_TEXT = paper_block(
    "Paper (Section 3.1, details in ref [13]):",
    [
        "'system checkpointing can be performed in parallel with the normal",
        " data processing and logging activities without complete system",
        " quiescing'",
    ],
)


def test_ablation_checkpointing(benchmark):
    result = run_table(
        benchmark, "ablation_checkpointing", ablation_checkpointing, PAPER_TEXT, seed=SEED
    )
    for row in result["rows"]:
        assert row["every_500ms"] <= 1.06 * row["no_checkpoints"], row
