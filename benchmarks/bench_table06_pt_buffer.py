"""Table 6: page-table buffer size annuls the shadow degradation.

Expected shape: with one PT processor and a 10-page buffer random loads
degrade; 25- and 50-page buffers progressively annul the degradation by
turning PT-disk reads into buffer hits (and avoiding commit-time rereads).
"""

from benchmarks._harness import (
    BENCH_SEED,
    paper_block,
    run_grid_bench,
    table_grid,
    table_text,
)
from repro.experiments import PAPER, table6_pt_buffer

GRID = table_grid(
    "table06",
    table6_pt_buffer,
    primary_metric="mean.buffer_50",
    seed=BENCH_SEED,
    title="Table 6. Execution Time per Page (1 Page-Table Processor)",
)

PAPER_TEXT = paper_block(
    "Paper Table 6 (exec ms/page, bare / buf 10 / 25 / 50):",
    [
        f"{kind}: {row['bare']} / {row[10]} / {row[25]} / {row[50]}"
        for kind, row in PAPER["table6"].items()
    ],
)


def test_table6_pt_buffer(benchmark):
    result = run_grid_bench(benchmark, GRID, PAPER_TEXT, text_fn=table_text)
    for row in result.cells[0].detail["rows"]:
        assert row["buffer_10"] > row["bare"]          # small buffer hurts
        assert row["buffer_50"] < row["buffer_10"]     # big buffer recovers
        assert row["buffer_50"] <= 1.08 * row["bare"]  # ...nearly fully
