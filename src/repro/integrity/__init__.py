"""Content integrity: checksums, typed corruption errors, tamper helpers.

The paper's fault model — and PRs 1-9 of this reproduction — is
fail-stop: components crash, writes tear, disks die, but surviving bits
are trusted.  Real stable media also rots silently: a latent sector
error or a firmware bug flips bits *in place* and the first reader pays
for it.  Replay-heavy restarts (the redo-only and command-logging
designs re-read long log suffixes) make one undetected bad record fatal
to every architecture in the shoot-out.

This package is the **detection** half of the integrity story:

* :func:`page_checksum` / :func:`record_checksum` — CRC32 content sums
  over page images and log records (:func:`canonical_bytes` gives
  records a deterministic byte form first);
* :class:`PageIntegrityError` / :class:`RecordIntegrityError` — the
  typed failures every verified read raises on a mismatch, so replay
  surfaces corruption instead of silently trusting it;
* :func:`split_torn_tail` — the log stop rule: a *contiguous corrupt
  suffix* is indistinguishable from a torn final flush and truncates;
  corruption strictly *inside* the clean prefix is rot and must raise;
* :func:`tamper_bytes` / :func:`tamper_record` — the deterministic
  corruption model (what a ``corrupt.*`` fault does to a stored value).

The **repair** half lives above: ``repro.storage`` managers repair
single pages from the archive (``repair_page_from_archive``) or escalate
to full archive+log media recovery, and ``repro.resilience.scrubber``
patrols the simulated mirrored disks.  ``docs/INTEGRITY.md`` has the
design and the scrubtest oracles.

This module sits *below* the storage layer (API02 layer 0) so both the
storage managers and the hardware models can import it.
"""

from __future__ import annotations

import zlib
from typing import Any, List, Optional, Sequence, Tuple

__all__ = [
    "IntegrityError",
    "PageIntegrityError",
    "RecordIntegrityError",
    "canonical_bytes",
    "page_checksum",
    "record_checksum",
    "split_torn_tail",
    "tamper_bytes",
    "tamper_record",
]


class IntegrityError(Exception):
    """A stored value failed its content checksum (silent corruption)."""


class PageIntegrityError(IntegrityError):
    """A stable page image no longer matches its checksum envelope."""

    def __init__(self, page: int, message: str = "checksum mismatch"):
        super().__init__(f"page {page}: {message}")
        self.page = page


class RecordIntegrityError(IntegrityError):
    """A stable log/file record no longer matches its checksum envelope,
    or its byte encoding no longer decodes (surfaced from the codec)."""

    def __init__(self, file: str, index: int, message: str = "checksum mismatch"):
        super().__init__(f"record {file}[{index}]: {message}")
        self.file = file
        self.index = index


# -- checksums ---------------------------------------------------------------

def page_checksum(data: bytes) -> int:
    """The checksum envelope of a page image (CRC32 over the raw bytes)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def canonical_bytes(value: Any) -> bytes:
    """A deterministic byte form of a record value, for checksumming.

    Records are plain Python values (tuples of scalars, possibly nested;
    NamedTuple instances; ``(name, [records])`` archive pairs).  The
    encoding is type-tagged so values that compare equal across types
    (``1``/``1.0``/``True``) still sum differently.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"T" if value else b"F"
    if isinstance(value, int):
        return b"I" + str(value).encode("ascii") + b";"
    if isinstance(value, float):
        return b"D" + repr(value).encode("ascii") + b";"
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"S" + str(len(raw)).encode("ascii") + b":" + raw
    if isinstance(value, bytes):
        return b"B" + str(len(value)).encode("ascii") + b":" + value
    if isinstance(value, (tuple, list)):
        inner = b"".join(canonical_bytes(item) for item in value)
        return b"(" + inner + b")"
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for checksumming"
    )


def record_checksum(record: Any) -> int:
    """The checksum envelope of one log/file record."""
    return zlib.crc32(canonical_bytes(record)) & 0xFFFFFFFF


# -- the log stop rule -------------------------------------------------------

def split_torn_tail(ok: Sequence[bool]) -> Tuple[int, Optional[int]]:
    """Apply the log stop rule to per-record verification flags.

    Returns ``(keep, interior)``: ``keep`` is the length of the clean
    prefix replay may trust, and ``interior`` is the index of the first
    corrupt record *inside* that prefix's shadow — i.e. a corrupt record
    with a clean record after it — or ``None``.

    A contiguous corrupt *suffix* is the torn-tail case (the final flush
    never fully landed; dropping it loses nothing a crash would not have
    lost anyway).  A corrupt record *followed by clean ones* cannot be a
    tear — later appends landed fine — so it is rot inside committed
    history and the caller must raise, not truncate.
    """
    keep = len(ok)
    while keep and not ok[keep - 1]:
        keep -= 1
    for index in range(keep):
        if not ok[index]:
            return keep, index
    return keep, None


# -- the corruption model ----------------------------------------------------

def tamper_bytes(data: bytes, position: int = 0) -> bytes:
    """Flip one byte of ``data`` (the latent-sector-error bit flip).

    Empty images get a single junk byte so the tamper is never a no-op.
    """
    if not data:
        return b"\xff"
    position %= len(data)
    flipped = data[position] ^ 0xFF
    return data[:position] + bytes([flipped]) + data[position + 1 :]


def tamper_record(record: Any) -> Any:
    """Deterministically mutate a record value without touching its sum.

    The mutated value keeps the record's shape (same arity for tuples)
    so downstream decoders fail on *content*, not on unpacking — the
    realistic silent-corruption mode.
    """
    if isinstance(record, tuple):
        if not record:
            return ("\x00rot",)
        items = (tamper_record(record[0]),) + tuple(record[1:])
        if hasattr(record, "_fields"):  # NamedTuple: positional constructor
            return type(record)(*items)
        return items
    if isinstance(record, list):
        return [tamper_record(record[0])] + list(record[1:]) if record else ["\x00rot"]
    if isinstance(record, bool):
        return not record
    if isinstance(record, int):
        return record ^ 0x2A
    if isinstance(record, float):
        return record + 1.0 if record == record else 0.0
    if isinstance(record, str):
        return ("\x00" + record[1:]) if record else "\x00"
    if isinstance(record, bytes):
        return tamper_bytes(record)
    if record is None:
        return "\x00rot"
    return record
