"""Crash-recovery correctness harness: crash everywhere, verify recovery.

The harness drives each functional recovery manager through a seeded
workload and injects a whole-machine crash at **every** hook crossing the
run reaches (or a seeded sample under a budget), then runs recovery and
diffs the post-recovery database against a committed-prefix oracle:

* **atomicity** — no effect of an uncommitted transaction survives;
* **durability** — every effect of a committed transaction survives;
* **in-flight commits** — a crash *inside* ``commit`` may land on either
  side of the commit point, so both outcomes are accepted (but nothing in
  between: the transaction's writes appear all-or-nothing);
* **idempotence** — ``crash(); recover()`` again changes nothing;
* **re-crash during recovery** — a second crash at the first recovery
  hook crossing followed by a clean restart converges to the same state.

Every failure is reported with the ``(seed, plan)`` pair that reproduces
it: replay with :func:`run_scenario` or ``repro crashtest --plan``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.checkpoint import CHECKPOINT_FILE, CheckpointUnsupported
from repro.registry import ARCHITECTURES
from repro.sim.rng import RandomStreams
from repro.faults.injector import FaultInjector, InjectedCrash
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.storage.interface import RecoveryManager

__all__ = [
    "ARCHITECTURES",
    "CrashTestReport",
    "DEFAULT_CHECKPOINT_EVERY",
    "ScenarioResult",
    "generate_ops",
    "make_manager",
    "run_crashtest",
    "run_scenario",
    "state_dump",
]

DEFAULT_TRANSACTIONS = 10
DEFAULT_PAGES = 6
MAX_CONCURRENT = 3
#: Checkpoint cadence the sweep uses (ops between ("checkpoint",) ops),
#: so crash-during-checkpoint and recover-from-checkpoint are always in
#: the sampled hook population.
DEFAULT_CHECKPOINT_EVERY = 9


def make_manager(arch: str) -> RecoveryManager:
    try:
        return ARCHITECTURES[arch]()
    except KeyError:
        raise ValueError(
            f"unknown architecture {arch!r}; pick one of {sorted(ARCHITECTURES)}"
        ) from None


# -- workload generation ------------------------------------------------------
def generate_ops(
    seed: int,
    n_transactions: int = DEFAULT_TRANSACTIONS,
    n_pages: int = DEFAULT_PAGES,
    max_concurrent: int = MAX_CONCURRENT,
    checkpoint_every: Optional[int] = None,
) -> List[Tuple]:
    """A deterministic operation script (same seed -> same script).

    Ops are ``("begin", slot)``, ``("write", slot, page, value)``,
    ``("flush", page)`` (steal; no-op for managers without a buffer pool),
    ``("commit", slot)`` and ``("abort", slot)``.  Lock discipline is
    respected: no page is written by two concurrently active slots.

    With ``checkpoint_every``, a ``("checkpoint",)`` op is woven in after
    every that-many transaction ops, plus one final op once every
    transaction is resolved (guaranteed quiescent, so even the quiescent
    policy gets real coverage).  Weaving is a post-pass: the transaction
    script for a seed is identical with and without checkpoints.
    """
    rng = RandomStreams(seed).stream("crashtest.workload")
    ops: List[Tuple] = []
    locked: Dict[int, List[int]] = {}  # active slot -> pages it locked
    next_slot = 0
    started = 0
    value = 0
    while started < n_transactions or locked:
        choices = []
        if started < n_transactions and len(locked) < max_concurrent:
            choices.extend(["begin", "begin"])
        if locked:
            choices.extend(["write", "write", "write", "commit", "commit",
                            "abort", "flush"])
        action = rng.choice(choices)
        if action == "begin":
            locked[next_slot] = []
            ops.append(("begin", next_slot))
            started += 1
            next_slot += 1
        elif action == "write":
            slot = rng.choice(sorted(locked))
            held_elsewhere = [
                p for s in sorted(locked) if s != slot for p in locked[s]
            ]
            free = [p for p in range(n_pages) if p not in held_elsewhere]
            if not free:
                continue
            page = rng.choice(free)
            value += 1
            ops.append(("write", slot, page, b"v%d" % value))
            if page not in locked[slot]:
                locked[slot].append(page)
        elif action == "flush":
            slot = rng.choice(sorted(locked))
            if not locked[slot]:
                continue
            ops.append(("flush", rng.choice(sorted(locked[slot]))))
        else:  # commit / abort
            slot = rng.choice(sorted(locked))
            ops.append((action, slot))
            del locked[slot]
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        woven: List[Tuple] = []
        for index, op in enumerate(ops, start=1):
            woven.append(op)
            if index % checkpoint_every == 0:
                woven.append(("checkpoint",))
        woven.append(("checkpoint",))
        return woven
    return ops


# -- state inspection ---------------------------------------------------------
def state_dump(manager: RecoveryManager) -> str:
    """A canonical text rendering of everything on stable storage.

    Byte-identical across runs with the same seed and plan (the
    determinism acceptance check hashes these).
    """
    stable = manager.stable
    lines = []
    for page, data in sorted(stable.pages.items()):
        lines.append(f"page {page} seq={stable.page_seq(page)} data={data!r}")
    for file in stable.files():
        lines.append(f"file {file}: {stable.read_file(file)!r}")
    return "\n".join(lines)


# -- one scenario -------------------------------------------------------------
@dataclass
class ScenarioResult:
    """Outcome of one (seed, plan) crash scenario against one manager."""

    architecture: str
    plan: FaultPlan
    crashed_at: Optional[Tuple[str, int]]  # (hook, crossing) or None
    outcome: str  # "no-crash" | "rolled-back" | "committed" | "violation"
    violations: List[Dict[str, Any]] = field(default_factory=list)
    dump: str = ""
    crossings: int = 0
    #: Completed (non-skipped) checkpoints before the crash.
    checkpoints_completed: int = 0
    #: Distinct hook names crossed before the crash (coverage map).
    hooks: List[str] = field(default_factory=list)
    #: Ordered recovery-phase hook crossings of the (plain) recovery pass
    #: — the restart timeline the crash report surfaces.
    recovery_timeline: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _apply_op(manager, op, tids, committed, pending, checkpoints=None) -> None:
    kind = op[0]
    if kind == "checkpoint":
        try:
            stats = manager.take_checkpoint()
        except CheckpointUnsupported:
            return  # manager opted out; the script op is a no-op
        if checkpoints is not None and not stats.skipped:
            checkpoints.append(stats)
        return
    if kind == "begin":
        slot = op[1]
        tids[slot] = manager.begin()
        pending[slot] = {}
    elif kind == "write":
        _kind, slot, page, data = op
        manager.write(tids[slot], page, data)
        pending[slot][page] = data
    elif kind == "flush":
        flush = getattr(manager, "flush_page", None)
        if flush is not None:
            flush(op[1])
    elif kind == "commit":
        slot = op[1]
        manager.commit(tids[slot])
        committed.update(pending.pop(slot))
        del tids[slot]
    elif kind == "abort":
        slot = op[1]
        manager.abort(tids[slot])
        pending.pop(slot)
        del tids[slot]
    else:
        raise ValueError(f"unknown op {op!r}")


def _verify(
    arch: str,
    plan: FaultPlan,
    manager: RecoveryManager,
    n_pages: int,
    committed: Dict[int, bytes],
    in_flight: Optional[Dict[int, bytes]],
    pending: Dict[int, Dict[int, bytes]],
    crashed_at: Optional[Tuple[str, int]],
) -> Tuple[str, List[Dict[str, Any]]]:
    """Diff post-recovery state against the committed-prefix oracle."""
    actual = {page: manager.read_committed(page) for page in range(n_pages)}
    base = {page: committed.get(page, b"") for page in range(n_pages)}
    if actual == base:
        return ("rolled-back" if in_flight is not None else
                ("no-crash" if crashed_at is None else "rolled-back")), []
    if in_flight is not None:
        with_txn = dict(base)
        with_txn.update(in_flight)
        if actual == with_txn:
            return "committed", []
    violations = []
    uncommitted_values = [
        v for slot in sorted(pending) for v in pending[slot].values()
    ]
    for page in range(n_pages):
        want = base[page]
        got = actual[page]
        if got == want:
            continue
        if in_flight is not None and actual.get(page) == in_flight.get(page):
            # Page-level match with the in-flight transaction is only OK if
            # the *whole* state matched (atomicity); reaching here means the
            # transaction's effects were torn apart.
            kind = "atomicity"
            detail = f"in-flight commit applied partially on page {page}"
        elif got in uncommitted_values:
            kind = "atomicity"
            detail = f"uncommitted value {got!r} survived on page {page}"
        else:
            kind = "durability"
            detail = f"page {page}: expected {want!r}, found {got!r}"
        violations.append(
            {
                "kind": kind,
                "architecture": arch,
                "seed": plan.seed,
                "hook": crashed_at[0] if crashed_at else None,
                "crossing": crashed_at[1] if crashed_at else None,
                "detail": detail,
                "plan": plan.to_json(),
            }
        )
    return "violation", violations


def _run_once(
    arch: str,
    ops: List[Tuple],
    plan: FaultPlan,
    n_pages: int,
    recrash_during_recovery: bool,
) -> ScenarioResult:
    manager = make_manager(arch)
    injector = FaultInjector(plan)
    manager.set_fault_callback(injector.reached)
    tids: Dict[int, int] = {}
    committed: Dict[int, bytes] = {}
    pending: Dict[int, Dict[int, bytes]] = {}
    checkpoints: List[Any] = []
    recovery_timeline: List[str] = []
    crashed_at = None
    in_flight: Optional[Dict[int, bytes]] = None
    try:
        for op in ops:
            injector.reached("op-boundary")
            _apply_op(manager, op, tids, committed, pending, checkpoints)
    except InjectedCrash as crash:
        crashed_at = (crash.hook, crash.crossing)
        if op[0] == "commit" and crash.hook != "op-boundary":
            # The crash landed inside commit(): either side of the commit
            # point is legal, so record the transaction's writes.
            in_flight = dict(pending[op[1]])
    manager.set_fault_callback(None)
    manager.crash()
    if recrash_during_recovery:
        # Crash again at the first recovery hook crossing, then restart
        # cleanly: recovery must be re-runnable from any prefix.
        recrash = FaultInjector(
            FaultPlan.of(FaultSpec(FaultKind.CRASH, hook="*"), seed=plan.seed)
        )
        manager.set_fault_callback(recrash.reached)
        try:
            manager.recover()
        except InjectedCrash:
            manager.set_fault_callback(None)
            manager.crash()
            manager.recover()
        manager.set_fault_callback(None)
    else:
        # Record the recovery pass's own hook crossings, in order: the
        # restart timeline (which phases ran, and how many times).
        manager.set_fault_callback(recovery_timeline.append)
        manager.recover()
        manager.set_fault_callback(None)
    outcome, violations = _verify(
        arch, plan, manager, n_pages, committed, in_flight, pending, crashed_at
    )
    # Recover-from-checkpoint oracle: every checkpoint that *completed*
    # before the crash must still be durable after recovery (recovery and
    # compaction must never truncate the checkpoint file).
    durable_checkpoints = manager.stable.file_length(CHECKPOINT_FILE)
    if durable_checkpoints < len(checkpoints):
        violations.append(
            {
                "kind": "checkpoint-lost",
                "architecture": arch,
                "seed": plan.seed,
                "hook": crashed_at[0] if crashed_at else None,
                "crossing": crashed_at[1] if crashed_at else None,
                "detail": (
                    f"{len(checkpoints)} checkpoints completed before the "
                    f"crash but only {durable_checkpoints} survived recovery"
                ),
                "plan": plan.to_json(),
            }
        )
        outcome = "violation"
    dump = state_dump(manager)
    # Idempotence: another crash/recover round must be a no-op.
    manager.crash()
    manager.recover()
    if state_dump(manager) != dump:
        violations.append(
            {
                "kind": "recovery-not-idempotent",
                "architecture": arch,
                "seed": plan.seed,
                "hook": crashed_at[0] if crashed_at else None,
                "crossing": crashed_at[1] if crashed_at else None,
                "detail": "second crash/recover round changed stable state",
                "plan": plan.to_json(),
            }
        )
        outcome = "violation"
    return ScenarioResult(
        architecture=arch,
        plan=plan,
        crashed_at=crashed_at,
        outcome=outcome,
        violations=violations,
        dump=dump,
        crossings=injector.crossings,
        checkpoints_completed=len(checkpoints),
        hooks=sorted(injector.hooks_seen),
        recovery_timeline=recovery_timeline,
    )


def run_scenario(
    arch: str,
    seed: int,
    plan: FaultPlan,
    n_transactions: int = DEFAULT_TRANSACTIONS,
    n_pages: int = DEFAULT_PAGES,
    checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
) -> ScenarioResult:
    """Run one (seed, plan) scenario: plain recovery, then a re-crash pass.

    The re-crash pass replays the same scenario but injects a second crash
    at the first recovery hook crossing; both passes must converge to the
    same stable state.
    """
    ops = generate_ops(seed, n_transactions, n_pages,
                       checkpoint_every=checkpoint_every)
    plain = _run_once(arch, ops, plan, n_pages, recrash_during_recovery=False)
    recrash = _run_once(arch, ops, plan, n_pages, recrash_during_recovery=True)
    if recrash.dump != plain.dump:
        plain.violations.append(
            {
                "kind": "recrash-divergence",
                "architecture": arch,
                "seed": seed,
                "hook": plain.crashed_at[0] if plain.crashed_at else None,
                "crossing": plain.crashed_at[1] if plain.crashed_at else None,
                "detail": "re-crash during recovery converged to a different state",
                "plan": plan.to_json(),
            }
        )
        plain.outcome = "violation"
    plain.violations.extend(recrash.violations)
    return plain


# -- the full sweep -----------------------------------------------------------
@dataclass
class CrashTestReport:
    """Result of crashing one architecture at every sampled hook crossing."""

    architecture: str
    seed: int
    n_transactions: int
    total_crossings: int
    points_tested: List[int]
    outcomes: Dict[str, int]
    violations: List[Dict[str, Any]]
    state_hash: str
    #: Checkpoint hook names the fault-free baseline crossed — proof the
    #: sweep's crash population includes crash-during-checkpoint points.
    checkpoint_hooks: List[str] = field(default_factory=list)
    #: Ordered recovery-phase crossings of the fault-free baseline's
    #: restart (the representative recovery timeline).
    recovery_timeline: List[str] = field(default_factory=list)
    #: Recovery-phase hook -> total crossings summed over every crash
    #: scenario's restart.
    recovery_phase_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> str:
        return json.dumps(
            {
                "architecture": self.architecture,
                "seed": self.seed,
                "n_transactions": self.n_transactions,
                "total_crossings": self.total_crossings,
                "points_tested": self.points_tested,
                "outcomes": self.outcomes,
                "violations": self.violations,
                "state_hash": self.state_hash,
                "checkpoint_hooks": self.checkpoint_hooks,
                "recovery_timeline": self.recovery_timeline,
                "recovery_phase_counts": self.recovery_phase_counts,
            },
            sort_keys=True,
            indent=2,
        )


def run_crashtest(
    arch: str,
    seed: int,
    n_transactions: int = DEFAULT_TRANSACTIONS,
    n_pages: int = DEFAULT_PAGES,
    budget: Optional[int] = None,
    checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
) -> CrashTestReport:
    """Crash ``arch`` at every hook crossing of a seeded workload.

    A first fault-free pass counts the hook crossings the workload
    reaches; then one scenario per crossing (all of them, or a seeded
    sample of ``budget``) injects a crash exactly there.  Checkpoint ops
    woven into the workload put every ``checkpoint.*`` and
    architecture-specific compaction hook in the crash population.
    """
    ops = generate_ops(seed, n_transactions, n_pages,
                       checkpoint_every=checkpoint_every)
    baseline = _run_once(
        arch, ops, FaultPlan.of(seed=seed), n_pages, recrash_during_recovery=False
    )
    total = baseline.crossings
    points = list(range(1, total + 1))
    if budget is not None and budget < len(points):
        sampler = RandomStreams(seed).stream("crashtest.points")
        points = sorted(sampler.sample(points, budget))
    outcomes: Dict[str, int] = {}
    violations: List[Dict[str, Any]] = list(baseline.violations)
    hasher = hashlib.sha256(baseline.dump.encode())
    phase_counts: Dict[str, int] = {}
    for hook in baseline.recovery_timeline:
        phase_counts[hook] = phase_counts.get(hook, 0) + 1
    for point in points:
        plan = FaultPlan.of(
            FaultSpec(FaultKind.CRASH, hook="*", occurrence=point), seed=seed
        )
        result = run_scenario(arch, seed, plan, n_transactions, n_pages,
                              checkpoint_every=checkpoint_every)
        outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
        violations.extend(result.violations)
        hasher.update(result.dump.encode())
        for hook in result.recovery_timeline:
            phase_counts[hook] = phase_counts.get(hook, 0) + 1
    return CrashTestReport(
        architecture=arch,
        seed=seed,
        n_transactions=n_transactions,
        total_crossings=total,
        points_tested=points,
        outcomes=outcomes,
        violations=violations,
        state_hash=hasher.hexdigest(),
        checkpoint_hooks=[h for h in baseline.hooks if "checkpoint" in h],
        recovery_timeline=baseline.recovery_timeline,
        recovery_phase_counts=phase_counts,
    )
