"""The runtime half of fault injection: counts crossings, fires faults.

One :class:`FaultInjector` serves both layers of the reproduction:

* the **functional** storage managers call :meth:`reached` from their
  ``_fault_point`` hooks — a matching CRASH spec *raises*
  :class:`InjectedCrash`, modeling the machine dying exactly there;
* the **simulation** layer (machine, disks, interconnect, log
  processors) calls the non-raising predicates (:meth:`poll`,
  :meth:`torn_write`, :meth:`drop_message`, ...) and reacts in-model —
  a dropped message is retransmitted, a dead log processor is skipped.

Every random decision draws from a ``RandomStreams``-derived stream, so a
``(seed, plan)`` pair replays bit-for-bit (DET01).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.rng import RandomStreams
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

__all__ = ["FaultInjector", "InjectedCrash"]


class InjectedCrash(Exception):
    """Raised at the exact hook crossing where a planned crash fires."""

    def __init__(self, hook: str, crossing: int):
        super().__init__(f"injected crash at hook {hook!r} (crossing #{crossing})")
        self.hook = hook
        self.crossing = crossing


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against a running system."""

    def __init__(self, plan: FaultPlan, streams: Optional[RandomStreams] = None):
        self.plan = plan
        streams = streams if streams is not None else RandomStreams(plan.seed)
        self._streams = streams
        self._rng = streams.stream("faults")
        #: Dedicated stream for silent-corruption draws, created lazily so
        #: plans without BIT_ROT specs leave the stream table — and every
        #: fault-free trace — byte-identical to pre-integrity runs.
        self._corrupt_rng = None
        #: total hook crossings so far (the clock "*"-specs count against).
        self.crossings = 0
        #: per-spec count of matching crossings seen.
        self._spec_hits: Dict[int, int] = {}
        #: record of fired faults: (kind, hook-or-target, crossing).
        self.fired: List[Tuple[str, str, int]] = []
        #: distinct hook names this injector has seen cross (coverage map).
        self.hooks_seen: set = set()

    # -- hook crossings -------------------------------------------------------
    def _matching(self, kind: FaultKind, name: str) -> Optional[FaultSpec]:
        """Advance per-spec counters; return a spec that fires now."""
        due = None
        for index, spec in enumerate(self.plan.specs):
            if spec.kind is not kind or not spec.matches_hook(name):
                continue
            hits = self._spec_hits.get(index, 0) + 1
            self._spec_hits[index] = hits
            if hits == spec.occurrence:
                due = spec
        return due

    def reached(self, name: str) -> None:
        """A functional-layer hook crossing: raises on a due CRASH spec."""
        self.crossings += 1
        self.hooks_seen.add(name)
        if self._matching(FaultKind.CRASH, name) is not None:
            self.fired.append(("crash", name, self.crossings))
            raise InjectedCrash(name, self.crossings)

    def poll(self, name: str) -> bool:
        """A simulation-layer hook crossing: True if a CRASH spec is due.

        Non-raising: the simulation reacts by scheduling its crash event
        rather than unwinding the current process with an exception.
        """
        self.crossings += 1
        self.hooks_seen.add(name)
        if self._matching(FaultKind.CRASH, name) is not None:
            self.fired.append(("crash", name, self.crossings))
            return True
        return False

    # -- media / component predicates ----------------------------------------
    def _probabilistic(self, kind: FaultKind, target: Optional[int]) -> bool:
        for spec in self.plan.specs:
            if spec.kind is not kind:
                continue
            if spec.target is not None and target is not None and spec.target != target:
                continue
            if spec.probability >= 1.0 or self._rng.random() < spec.probability:
                return True
        return False

    def torn_write(self, target: Optional[int] = None) -> bool:
        """Should this page write tear (reach the platter partially)?"""
        if self._probabilistic(FaultKind.TORN_WRITE, target):
            self.fired.append(("torn-write", str(target), self.crossings))
            return True
        return False

    def bit_rot(self, target: Optional[int] = None) -> bool:
        """Should this sector write rot in place (latent sector error)?

        Draws from the dedicated ``corrupt`` stream, *not* the shared
        ``faults`` stream: corruption injection must never perturb the
        torn-write/message-loss draws of an otherwise identical plan.
        """
        specs = [
            spec
            for spec in self.plan.specs
            if spec.kind is FaultKind.BIT_ROT
            and (spec.target is None or target is None or spec.target == target)
        ]
        if not specs:
            return False
        if self._corrupt_rng is None:
            self._corrupt_rng = self._streams.stream("corrupt")
        for spec in specs:
            if spec.probability >= 1.0 or self._corrupt_rng.random() < spec.probability:
                self.fired.append(("bit-rot", str(target), self.crossings))
                return True
        return False

    def drop_message(self, target: Optional[int] = None) -> bool:
        """Should the interconnect drop this message?"""
        if self._probabilistic(FaultKind.MSG_LOSS, target):
            self.fired.append(("msg-loss", str(target), self.crossings))
            return True
        return False

    def timed_faults(self, kind: FaultKind) -> List[FaultSpec]:
        """Specs of ``kind`` scheduled at absolute simulation times."""
        return [
            s for s in self.plan.specs if s.kind is kind and s.at_time is not None
        ]

    # -- machine integration --------------------------------------------------
    def arm(self, machine) -> None:
        """Schedule this plan's timed faults on a ``DatabaseMachine``.

        * timed CRASH specs trigger the machine's crash event;
        * timed LP_FAIL / DISK_FAIL / QP_FAIL specs call the architecture's
          ``fail_log_processor`` / the machine's ``fail_data_disk`` /
          ``fail_query_processor``;
        * a spec with ``repair_after`` schedules the matching repair that
          many ms later (a replacement mirror side starts rebuilding, a
          repaired query processor rejoins the pool).
        """
        env = machine.env

        def fire(spec: FaultSpec):
            yield env.timeout(spec.at_time)
            if spec.kind is FaultKind.CRASH:
                self.fired.append(("crash", f"t={spec.at_time}", self.crossings))
                machine.trigger_crash(f"timed@{spec.at_time}")
            elif spec.kind is FaultKind.LP_FAIL:
                self.fired.append(("lp-fail", str(spec.target), self.crossings))
                machine.arch.fail_log_processor(spec.target or 0)
            elif spec.kind is FaultKind.DISK_FAIL:
                self.fired.append(("disk-fail", str(spec.target), self.crossings))
                machine.fail_data_disk(spec.target or 0)
            elif spec.kind is FaultKind.QP_FAIL:
                self.fired.append(("qp-fail", str(spec.target), self.crossings))
                machine.fail_query_processor(spec.target or 0)
            if spec.repair_after is not None:
                yield env.timeout(spec.repair_after)
                if spec.kind is FaultKind.DISK_FAIL:
                    self.fired.append(
                        ("disk-repair", str(spec.target), self.crossings)
                    )
                    machine.attach_disk_replacement(spec.target or 0)
                elif spec.kind is FaultKind.QP_FAIL:
                    self.fired.append(
                        ("qp-repair", str(spec.target), self.crossings)
                    )
                    machine.repair_query_processor(spec.target or 0)

        for spec in self.timed_faults(FaultKind.CRASH):
            env.process(fire(spec))
        for spec in self.timed_faults(FaultKind.LP_FAIL):
            env.process(fire(spec))
        for spec in self.timed_faults(FaultKind.DISK_FAIL):
            env.process(fire(spec))
        for spec in self.timed_faults(FaultKind.QP_FAIL):
            env.process(fire(spec))
