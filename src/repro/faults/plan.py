"""Declarative fault plans: what fails, where, and when.

A :class:`FaultPlan` is a small, JSON-serializable value object listing
:class:`FaultSpec` entries plus the seed of the run it applies to.  The
pair ``(seed, plan)`` fully reproduces any failure the crash-recovery
harness finds: feed the JSON back through ``repro crashtest --plan`` (or
:func:`repro.faults.harness.run_scenario`) and the identical schedule of
injected faults replays.

Specs name *hook points* — stable string labels compiled into the code
paths they guard (``wal.commit.pre-record``, ``machine.writeback``, ...);
``docs/FAULTS.md`` catalogues them.  A spec matches a hook crossing when

* ``hook`` equals the crossing's name,
* ``hook`` is ``"*"`` (any crossing), or
* ``hook`` ends with ``"*"`` and is a prefix match (``"wal.commit.*"``).

``occurrence`` selects the n-th matching crossing (1-based), so a plan can
say "crash the *third* time any commit path is crossed".  Probabilistic
faults (message loss, torn writes) use ``probability`` instead and draw
from the injector's :class:`~repro.sim.rng.RandomStreams`-derived stream.
"""

from __future__ import annotations

import enum
import json
from typing import Any, Dict, NamedTuple, Optional, Tuple

__all__ = ["FaultKind", "FaultPlan", "FaultSpec"]


class FaultKind(enum.Enum):
    """The fault taxonomy (see docs/FAULTS.md)."""

    #: Whole-machine / whole-manager crash: volatile state is lost.
    CRASH = "crash"
    #: A page write reaches stable storage partially (media fault).
    TORN_WRITE = "torn-write"
    #: A disk stops serving; queued and in-service requests error out.
    DISK_FAIL = "disk-fail"
    #: A log processor dies: its disk fails and buffered fragments orphan.
    LP_FAIL = "lp-fail"
    #: The interconnect drops a message (sender must retransmit).
    MSG_LOSS = "msg-loss"
    #: A query processor dies; its in-flight transaction aborts via normal
    #: undo and the work redistributes to the surviving processors.
    QP_FAIL = "qp-fail"
    #: Silent corruption: a stored sector/record rots in place (latent
    #: sector error); nothing fails until a checksum-verified read or the
    #: scrubber finds it.
    BIT_ROT = "bit-rot"


class FaultSpec(NamedTuple):
    """One fault: what (``kind``), where (``hook``/``target``), when
    (``occurrence``-th matching crossing, or simulation time ``at_time``,
    or per-event ``probability``).

    ``repair_after`` schedules a repair that many ms after a timed
    permanent fault fires: a replacement disk arrives and the mirror
    rebuild starts, or a repaired query processor rejoins the pool.
    """

    kind: FaultKind
    hook: Optional[str] = None
    occurrence: int = 1
    at_time: Optional[float] = None
    target: Optional[int] = None
    probability: float = 0.0
    repair_after: Optional[float] = None

    def matches_hook(self, name: str) -> bool:
        if self.hook is None:
            return False
        if self.hook == "*" or self.hook == name:
            return True
        if self.hook.endswith("*"):
            return name.startswith(self.hook[:-1])
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind.value,
            "hook": self.hook,
            "occurrence": self.occurrence,
            "at_time": self.at_time,
            "target": self.target,
            "probability": self.probability,
            "repair_after": self.repair_after,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        return cls(
            kind=FaultKind(data["kind"]),
            hook=data.get("hook"),
            occurrence=data.get("occurrence", 1),
            at_time=data.get("at_time"),
            target=data.get("target"),
            probability=data.get("probability", 0.0),
            repair_after=data.get("repair_after"),
        )


class FaultPlan(NamedTuple):
    """An immutable schedule of faults for one seeded run."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def of(cls, *specs: FaultSpec, seed: int = 0) -> "FaultPlan":
        return cls(specs=tuple(specs), seed=seed)

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in data.get("specs", ())),
            seed=data.get("seed", 0),
        )

    def describe(self) -> str:
        lines = [f"fault plan (seed={self.seed}, {len(self.specs)} spec(s)):"]
        for spec in self.specs:
            where = []
            if spec.hook is not None:
                where.append(f"hook={spec.hook!r} x{spec.occurrence}")
            if spec.at_time is not None:
                where.append(f"at t={spec.at_time}")
            if spec.target is not None:
                where.append(f"target={spec.target}")
            if spec.probability:
                where.append(f"p={spec.probability}")
            if spec.repair_after is not None:
                where.append(f"repair+{spec.repair_after}")
            lines.append(f"  - {spec.kind.value}: {', '.join(where) or 'always'}")
        return "\n".join(lines)
