"""Deterministic fault injection and the crash-recovery harness.

``plan`` declares *what* fails and *when* (:class:`FaultPlan`), ``injector``
fires the faults at runtime (:class:`FaultInjector`), and ``harness``
sweeps whole-machine crashes across every hook crossing of a seeded
workload, verifying atomicity and durability against a committed-prefix
oracle.  See docs/FAULTS.md for the taxonomy and hook-point catalogue.
"""

from repro.faults.harness import (
    ARCHITECTURES,
    CrashTestReport,
    DEFAULT_CHECKPOINT_EVERY,
    ScenarioResult,
    generate_ops,
    make_manager,
    run_crashtest,
    run_scenario,
    state_dump,
)
from repro.faults.injector import FaultInjector, InjectedCrash
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "ARCHITECTURES",
    "CrashTestReport",
    "DEFAULT_CHECKPOINT_EVERY",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "ScenarioResult",
    "generate_ops",
    "make_manager",
    "run_crashtest",
    "run_scenario",
    "state_dump",
]
