"""Open-system traffic generation and overload sweeps.

The paper evaluates its recovery architectures under a *closed batch*:
every transaction exists at time zero and the multiprogramming level
paces the run.  This package supplies the open-system complement —
seeded arrival processes (Poisson, bursty, diurnal, scripted spikes,
per-client think times), a runner that offers them to the machine's
admission-controlled :meth:`~repro.machine.machine.DatabaseMachine.run_open`
mode, and the ``repro loadtest`` sweep harness that plots goodput against
offered load and locates the overload collapse knee per architecture,
healthy or degraded.
"""

from repro.loadgen.arrivals import (
    ArrivalConfig,
    ArrivalSchedule,
    Spike,
    generate_arrivals,
)
from repro.loadgen.loadtest import (
    LoadCell,
    LoadTestReport,
    calibrate,
    run_loadtest,
    sweep_architectures,
)
from repro.loadgen.runner import OpenRunResult, run_open_load

__all__ = [
    "ArrivalConfig",
    "ArrivalSchedule",
    "LoadCell",
    "LoadTestReport",
    "OpenRunResult",
    "Spike",
    "calibrate",
    "generate_arrivals",
    "run_loadtest",
    "run_open_load",
    "sweep_architectures",
]
