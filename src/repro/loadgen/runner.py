"""Run one open-system load against one recovery architecture.

Bridges the arrival schedules of :mod:`repro.loadgen.arrivals` to
:meth:`repro.machine.machine.DatabaseMachine.run_open`: builds the seeded
workload, the machine (optionally with a PR-5 style degraded state armed:
a dead log processor, or a mirrored data disk lost mid-run), offers the
transactions on schedule, and folds the dispositions into an
:class:`OpenRunResult` with the open-system metrics the loadtest sweeps:
goodput (committed *within the SLO* per second) and sojourn percentiles
(arrival to durable commit).

Two oracles are checked on every run and carried on the result:

* **accounting** — ``admitted + rejected + shed == offered`` (nothing
  double-counted, nothing unaccounted);
* **no lost admissions** — every admitted transaction committed (the
  machine never silently drops work it accepted).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core import RecoveryArchitecture
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.loadgen.arrivals import ArrivalConfig, ArrivalSchedule, generate_arrivals
from repro.machine.config import MachineConfig
from repro.machine.machine import DatabaseMachine
from repro.metrics.collectors import RunResult
from repro.registry import entry_for, machine_overrides, survive_factory
from repro.sim.rng import RandomStreams
from repro.workload.generator import WorkloadConfig, generate_transactions
from repro.workload.transaction import Transaction, TransactionStatus

__all__ = [
    "DEGRADED_STATES",
    "OpenRunResult",
    "build_open_machine",
    "run_open_load",
    "score_open_run",
    "sim_architecture",
]

#: Degraded machine states (PR 5) an open sweep can be re-run under.
#: ``dead-lp`` only applies to the multi-log-processor architectures.
DEGRADED_STATES = ("healthy", "dead-lp", "mirrored-degraded")

#: Loadtest workloads cap transaction size for CI speed (survivetest
#: convention); the workload seed is fixed so every architecture and
#: every sweep cell offers the same transactions.
_MAX_PAGES = 60
_WORKLOAD_SEED = 7


def sim_architecture(arch: str) -> RecoveryArchitecture:
    """A fresh simulated recovery architecture by crashtest name.

    The survive-variant factory from :mod:`repro.registry` — the logging
    designs run three log processors so a dead LP leaves quorum.
    """
    return survive_factory(arch)()


@dataclass
class OpenRunResult:
    """One open-system run: dispositions, goodput, sojourn percentiles."""

    architecture: str
    state: str
    schedule: ArrivalSchedule
    result: RunResult
    #: Dispositions (from the admission counters).
    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    committed: int = 0
    #: Committed within the SLO (arrival -> durable commit <= slo_ms).
    within_slo: int = 0
    slo_ms: float = 0.0
    #: Committed-within-SLO per second of run time: the loadtest y-axis.
    goodput_tps: float = 0.0
    #: Raw committed per second, SLO-blind (shows the plateau the SLO cuts).
    throughput_tps: float = 0.0
    #: Arrival-to-durable-commit percentiles over committed transactions.
    sojourn_ms: Dict[str, float] = field(default_factory=dict)
    oracle_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.oracle_violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "architecture": self.architecture,
            "state": self.state,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "committed": self.committed,
            "within_slo": self.within_slo,
            "slo_ms": self.slo_ms,
            "goodput_tps": self.goodput_tps,
            "throughput_tps": self.throughput_tps,
            "sojourn_ms": self.sojourn_ms,
            "makespan_ms": self.result.makespan_ms,
            "admission_retries": self.result.counter("admission_retries"),
            "backpressure_transitions": self.result.counter(
                "backpressure_transitions"
            ),
            "ok": self.ok,
            "oracle_violations": self.oracle_violations,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not samples:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(samples)))
    return samples[rank - 1]


def _degraded_specs(
    arch: str, state: str, schedule: ArrivalSchedule, seed: int
) -> Tuple[FaultSpec, ...]:
    """The fault injections realising a degraded state for ``arch``."""
    if state == "healthy":
        return ()
    span = max(schedule.times_ms[-1], 1.0)
    at = 0.25 * span
    if state == "dead-lp":
        if not entry_for(arch).lp_failover:
            raise ValueError(
                "dead-lp state only applies to multi-log-processor "
                "architectures"
            )
        return (FaultSpec(FaultKind.LP_FAIL, at_time=at, target=0),)
    if state == "mirrored-degraded":
        return (
            FaultSpec(FaultKind.DISK_FAIL, at_time=at, target=0, repair_after=100.0),
        )
    raise ValueError(f"unknown degraded state {state!r}; pick one of {DEGRADED_STATES}")


def build_open_machine(
    arch: str,
    seed: int,
    n_transactions: int,
    state: str = "healthy",
    schedule: Optional[ArrivalSchedule] = None,
    config_overrides: Optional[Dict[str, Any]] = None,
) -> Tuple[DatabaseMachine, List[Transaction]]:
    """Build the machine + seeded workload for one open-system run."""
    overrides: Dict[str, Any] = {"seed": seed, "parallel_data_disks": True}
    overrides.update(machine_overrides(arch))
    if state == "mirrored-degraded":
        overrides["mirrored_data_disks"] = True
    if config_overrides:
        overrides.update(config_overrides)
    config = MachineConfig().with_overrides(**overrides)
    transactions = generate_transactions(
        WorkloadConfig(n_transactions=n_transactions, max_pages=_MAX_PAGES),
        config.db_pages,
        RandomStreams(_WORKLOAD_SEED).stream("workload"),
    )
    specs = (
        _degraded_specs(arch, state, schedule, seed)
        if schedule is not None
        else ()
    )
    injector = FaultInjector(FaultPlan.of(*specs, seed=seed)) if specs else None
    machine = DatabaseMachine(config, sim_architecture(arch), faults=injector)
    if injector is not None:
        injector.arm(machine)
    return machine, transactions


def run_open_load(
    arch: str,
    arrival_config: ArrivalConfig,
    seed: int = 1985,
    slo_ms: float = 0.0,
    state: str = "healthy",
    config_overrides: Optional[Dict[str, Any]] = None,
) -> OpenRunResult:
    """Offer one arrival schedule to one architecture and score the run.

    ``slo_ms == 0`` disables the SLO cut (``within_slo == committed``).
    """
    if state not in DEGRADED_STATES:
        raise ValueError(
            f"unknown degraded state {state!r}; pick one of {DEGRADED_STATES}"
        )
    schedule = generate_arrivals(
        arrival_config, RandomStreams(seed).fork("arrivals")
    )
    machine, transactions = build_open_machine(
        arch,
        seed,
        schedule.offered,
        state=state,
        schedule=schedule,
        config_overrides=config_overrides,
    )
    result = machine.run_open(
        transactions, schedule.times_ms, spike_times_ms=schedule.spike_starts_ms
    )
    return score_open_run(arch, state, schedule, transactions, result, slo_ms)


def score_open_run(
    arch: str,
    state: str,
    schedule: ArrivalSchedule,
    transactions: List[Transaction],
    result: RunResult,
    slo_ms: float,
) -> OpenRunResult:
    """Fold machine output into open-system metrics and check the oracles."""
    open_result = OpenRunResult(
        architecture=arch,
        state=state,
        schedule=schedule,
        result=result,
        offered=result.counter("admission_offered"),
        admitted=result.counter("admission_admitted"),
        rejected=result.counter("admission_rejected"),
        shed=result.counter("admission_shed"),
        slo_ms=slo_ms,
    )
    sojourns: List[float] = []
    lost: List[int] = []
    for txn, arrival in zip(transactions, schedule.times_ms):
        if txn.status is TransactionStatus.COMMITTED:
            open_result.committed += 1
            sojourn = (txn.finish_time or arrival) - arrival
            sojourns.append(sojourn)
            if slo_ms <= 0 or sojourn <= slo_ms:
                open_result.within_slo += 1
        elif txn.status is TransactionStatus.ACTIVE:
            lost.append(txn.tid)
    sojourns.sort()
    open_result.sojourn_ms = {
        "p50": _percentile(sojourns, 50.0),
        "p95": _percentile(sojourns, 95.0),
        "p99": _percentile(sojourns, 99.0),
    }
    if result.makespan_ms > 0:
        open_result.goodput_tps = 1000.0 * open_result.within_slo / result.makespan_ms
        open_result.throughput_tps = (
            1000.0 * open_result.committed / result.makespan_ms
        )
    # -- the oracles ------------------------------------------------------
    if open_result.offered != schedule.offered:
        open_result.oracle_violations.append(
            f"offered counter {open_result.offered} != "
            f"{schedule.offered} scheduled arrivals"
        )
    accounted = open_result.admitted + open_result.rejected + open_result.shed
    if accounted != open_result.offered:
        open_result.oracle_violations.append(
            f"dispositions do not conserve: admitted {open_result.admitted} "
            f"+ rejected {open_result.rejected} + shed {open_result.shed} "
            f"= {accounted} != offered {open_result.offered}"
        )
    if open_result.committed != open_result.admitted:
        open_result.oracle_violations.append(
            f"admitted-transaction loss: {open_result.admitted} admitted but "
            f"{open_result.committed} committed"
        )
    if lost:
        open_result.oracle_violations.append(
            f"{len(lost)} transactions left ACTIVE at end of run: {lost[:5]}"
        )
    return open_result
