"""Open-system arrival processes over the seeded random streams.

The paper's workload is a closed batch: all transactions exist at time
zero and the multiprogramming level alone paces them.  An open system
instead *offers* transactions on a schedule independent of completions.
This module generates those schedules, deterministically, from named
:class:`~repro.sim.rng.RandomStreams` streams (``arrival.poisson``,
``arrival.bursty``, ``arrival.diurnal``, ``arrival.think``), so the same
seed yields the same arrival instants under every architecture — the
common-random-numbers discipline the experiments rely on.

Three processes, all expressed as a time-varying rate ``r(t)`` sampled by
thinning (candidates at the peak rate, accepted with ``r(t)/r_max``):

* **poisson** — homogeneous rate ``rate_tps``;
* **bursty** — a Markov-modulated on/off process: exponential ON windows
  (mean ``burst_on_ms``) at rate ``rate_tps * (on+off)/on`` alternate
  with silent OFF windows (mean ``burst_off_ms``), preserving the
  long-run offered rate while concentrating it into bursts;
* **diurnal** — a sinusoidal profile
  ``rate_tps * (1 + amplitude * sin(2*pi*t/period))``, the classic
  day/night load shape compressed to simulation scale.

Scripted **spikes** multiply the rate inside ``[start, start+duration)``
windows, and optional **per-client pacing** (``n_clients`` round-robin
clients with exponential think times) lower-bounds the spacing between
one client's consecutive submissions, approximating interactive users.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.sim.rng import RandomStreams

__all__ = ["ArrivalConfig", "ArrivalSchedule", "PROCESSES", "Spike", "generate_arrivals"]

#: The registered arrival processes.
PROCESSES = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class Spike:
    """A scripted load spike: the rate is multiplied inside the window."""

    start_ms: float
    duration_ms: float
    multiplier: float = 4.0

    def __post_init__(self) -> None:
        if self.start_ms < 0 or self.duration_ms <= 0:
            raise ValueError(f"bad spike window [{self.start_ms}, +{self.duration_ms}]")
        if self.multiplier <= 0:
            raise ValueError(f"spike multiplier must be > 0, got {self.multiplier}")

    def covers(self, t_ms: float) -> bool:
        return self.start_ms <= t_ms < self.start_ms + self.duration_ms


@dataclass(frozen=True)
class ArrivalConfig:
    """Parameters of one open-system arrival schedule."""

    process: str = "poisson"
    #: Long-run offered load, transactions per second.
    rate_tps: float = 4.0
    #: Schedule length (the generator stops after this many arrivals).
    n_arrivals: int = 30
    #: Mean ON / OFF window durations of the bursty process, in ms.
    burst_on_ms: float = 500.0
    burst_off_ms: float = 500.0
    #: Period and relative amplitude of the diurnal profile.
    diurnal_period_ms: float = 60_000.0
    diurnal_amplitude: float = 0.8
    #: Interactive clients: arrivals are assigned round-robin and one
    #: client's consecutive submissions are spaced by a think time drawn
    #: Exp(think_time_ms).  None disables pacing (pure open arrivals).
    n_clients: Optional[int] = None
    think_time_ms: float = 0.0
    spikes: Tuple[Spike, ...] = ()

    def __post_init__(self) -> None:
        if self.process not in PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; "
                f"pick one of {PROCESSES}"
            )
        if self.rate_tps <= 0:
            raise ValueError(f"offered rate must be > 0 tps, got {self.rate_tps}")
        if self.n_arrivals < 1:
            raise ValueError("need at least one arrival")
        if self.burst_on_ms <= 0 or self.burst_off_ms < 0:
            raise ValueError(
                f"bad burst windows on={self.burst_on_ms} off={self.burst_off_ms}"
            )
        if self.diurnal_period_ms <= 0:
            raise ValueError(f"diurnal period must be > 0, got {self.diurnal_period_ms}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal amplitude {self.diurnal_amplitude} not in [0, 1)"
            )
        if self.n_clients is not None and self.n_clients < 1:
            raise ValueError("need at least one client")
        if self.think_time_ms < 0:
            raise ValueError("think time must be >= 0")

    def with_overrides(self, **kwargs) -> "ArrivalConfig":
        return replace(self, **kwargs)

    def spike_multiplier(self, t_ms: float) -> float:
        """The combined scripted-spike rate multiplier at ``t_ms``."""
        factor = 1.0
        for spike in self.spikes:
            if spike.covers(t_ms):
                factor *= spike.multiplier
        return factor


@dataclass(frozen=True)
class ArrivalSchedule:
    """A generated schedule: arrival instants plus generation metadata."""

    config: ArrivalConfig
    times_ms: Tuple[float, ...]
    #: ON windows of the bursty process (empty for the other processes).
    on_windows_ms: Tuple[Tuple[float, float], ...] = ()
    #: Scripted spike starts (traced as ``arrival.spike`` instants).
    spike_starts_ms: Tuple[float, ...] = ()
    #: Round-robin client of each arrival (empty without client pacing).
    clients: Tuple[int, ...] = field(default=())

    @property
    def span_ms(self) -> float:
        """First-to-last arrival span."""
        if len(self.times_ms) < 2:
            return 0.0
        return self.times_ms[-1] - self.times_ms[0]

    @property
    def offered(self) -> int:
        return len(self.times_ms)

    def interarrivals_ms(self) -> List[float]:
        return [
            b - a for a, b in zip(self.times_ms, self.times_ms[1:])
        ]


def _peak_multiplier(config: ArrivalConfig) -> float:
    """An upper bound on the scripted-spike multiplier (overlaps compound)."""
    factor = 1.0
    for spike in config.spikes:
        if spike.multiplier > 1.0:
            factor *= spike.multiplier
    return factor


def _base_rate_per_ms(config: ArrivalConfig, t_ms: float) -> float:
    """The profile rate (before spikes) at ``t_ms``, in arrivals/ms."""
    rate = config.rate_tps / 1000.0
    if config.process == "diurnal":
        rate *= 1.0 + config.diurnal_amplitude * math.sin(
            2.0 * math.pi * t_ms / config.diurnal_period_ms
        )
    return rate


def _thinned_times(config: ArrivalConfig, rng, on_rate_scale: float = 1.0):
    """Generator of accepted arrival instants by thinning at the peak rate."""
    peak = (
        (config.rate_tps / 1000.0)
        * on_rate_scale
        * (1.0 + config.diurnal_amplitude if config.process == "diurnal" else 1.0)
        * _peak_multiplier(config)
    )
    t = 0.0
    while True:
        t += rng.expovariate(peak)
        rate = (
            _base_rate_per_ms(config, t)
            * on_rate_scale
            * config.spike_multiplier(t)
        )
        if rng.random() < rate / peak:
            yield t


def _poisson_like(config: ArrivalConfig, rng) -> List[float]:
    out: List[float] = []
    for t in _thinned_times(config, rng):
        out.append(t)
        if len(out) >= config.n_arrivals:
            break
    return out


def _bursty(config: ArrivalConfig, rng):
    """Markov-modulated on/off arrivals; returns (times, on_windows)."""
    # The ON-state rate is scaled up so the long-run offered rate stays
    # rate_tps: arrivals only happen during the ON fraction of time.
    duty = config.burst_on_ms / (config.burst_on_ms + config.burst_off_ms)
    on_scale = 1.0 / duty
    peak = (config.rate_tps / 1000.0) * on_scale * _peak_multiplier(config)
    times: List[float] = []
    windows: List[Tuple[float, float]] = []
    t = 0.0
    while len(times) < config.n_arrivals:
        on_end = t + rng.expovariate(1.0 / config.burst_on_ms)
        windows.append((t, on_end))
        while len(times) < config.n_arrivals:
            t += rng.expovariate(peak)
            if t >= on_end:
                t = on_end
                break
            rate = (config.rate_tps / 1000.0) * on_scale * config.spike_multiplier(t)
            if rng.random() < rate / peak:
                times.append(t)
        if config.burst_off_ms > 0:
            t = on_end + rng.expovariate(1.0 / config.burst_off_ms)
        else:
            t = on_end
    # Trim the last window to the final arrival for duty-cycle accounting.
    return times, windows


def _pace_clients(config: ArrivalConfig, times: List[float], streams: RandomStreams):
    """Assign arrivals round-robin to clients and enforce think-time gaps."""
    rng = streams.stream("arrival.think")
    n = config.n_clients
    last: List[Optional[float]] = [None] * n
    paced: List[Tuple[float, int]] = []
    for i, t in enumerate(times):
        client = i % n
        if last[client] is not None and config.think_time_ms > 0:
            think = rng.expovariate(1.0 / config.think_time_ms)
            t = max(t, last[client] + think)
        last[client] = t
        paced.append((t, client))
    paced.sort(key=lambda pair: pair[0])
    return [t for t, _c in paced], [c for _t, c in paced]


def generate_arrivals(
    config: ArrivalConfig, streams: RandomStreams
) -> ArrivalSchedule:
    """Generate one deterministic arrival schedule.

    ``streams`` should be a dedicated factory (e.g.
    ``RandomStreams(seed).fork("arrivals")``) so arrival draws never
    interleave with the machine's own streams.
    """
    on_windows: Tuple[Tuple[float, float], ...] = ()
    if config.process == "bursty":
        times, windows = _bursty(config, streams.stream("arrival.bursty"))
        on_windows = tuple(windows)
    elif config.process == "diurnal":
        times = _poisson_like(config, streams.stream("arrival.diurnal"))
    else:
        times = _poisson_like(config, streams.stream("arrival.poisson"))
    clients: Tuple[int, ...] = ()
    if config.n_clients is not None:
        times, assigned = _pace_clients(config, times, streams)
        clients = tuple(assigned)
    return ArrivalSchedule(
        config=config,
        times_ms=tuple(times),
        on_windows_ms=on_windows,
        spike_starts_ms=tuple(s.start_ms for s in config.spikes),
        clients=clients,
    )
