"""The loadtest harness: sweep offered load, locate the collapse knee.

For one architecture the harness first **calibrates** capacity with a
closed-batch run (the paper's own drive mode): ``capacity_tps =
1000 * n / makespan`` and the SLO is a multiple of the closed-batch mean
completion time.  It then sweeps *offered* load as multipliers of that
capacity, each cell an independent open-system run over the same seeded
arrival process and workload, and reports:

* **goodput** — committed *within the SLO* per second.  Below capacity
  this tracks offered load; past capacity the bounded admission queue
  fills, every admitted transaction queues behind it, sojourns blow
  through the SLO, and goodput collapses even though raw throughput
  plateaus.  That is the overload story the paper's closed batch cannot
  show.
* **the knee** — the first cell past the goodput peak at or below
  ``knee_fraction`` (default 0.8) of the peak.  If the sweep never bends,
  the harness extends it by doubling the top multiplier a few times.
* **latency vs SLO** — p50/p95/p99 sojourn per cell.

Each cell re-checks the admission-accounting and no-lost-admissions
oracles; a sweep with any violation is not ``ok``.  The same sweep can be
re-run under the PR-5 degraded states (``dead-lp``,
``mirrored-degraded``) to measure how failure moves the knee.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.loadgen.arrivals import ArrivalConfig, Spike
from repro.loadgen.runner import (
    DEGRADED_STATES,
    OpenRunResult,
    build_open_machine,
    run_open_load,
)

__all__ = [
    "Calibration",
    "DEFAULT_MULTIPLIERS",
    "LoadCell",
    "LoadTestReport",
    "calibrate",
    "demo_spike_config",
    "run_loadtest",
    "sweep_architectures",
]

#: Offered load as multiples of calibrated closed-batch capacity.
DEFAULT_MULTIPLIERS: Tuple[float, ...] = (0.4, 0.8, 1.2, 2.0, 3.5)

#: Extra doubling steps appended when the sweep ends without a knee.
_MAX_EXTENSIONS = 3


@dataclass(frozen=True)
class Calibration:
    """Closed-batch capacity estimate for one architecture."""

    architecture: str
    n_transactions: int
    makespan_ms: float
    capacity_tps: float
    mean_completion_ms: float


@dataclass
class LoadCell:
    """One sweep cell: offered-load multiplier -> open-system outcome."""

    multiplier: float
    offered_tps: float
    run: OpenRunResult

    def to_dict(self) -> Dict[str, Any]:
        out = self.run.to_dict()
        out["multiplier"] = self.multiplier
        out["offered_tps"] = self.offered_tps
        return out


@dataclass
class LoadTestReport:
    """One architecture, one machine state, one offered-load sweep."""

    architecture: str
    state: str
    seed: int
    arrival_process: str
    policy: str
    slo_ms: float
    calibration: Calibration
    cells: List[LoadCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.run.ok for cell in self.cells)

    @property
    def violations(self) -> List[str]:
        out = []
        for cell in self.cells:
            for violation in cell.run.oracle_violations:
                out.append(f"x{cell.multiplier:g}: {violation}")
        return out

    @property
    def peak(self) -> Optional[LoadCell]:
        """The cell with the highest goodput."""
        if not self.cells:
            return None
        return max(self.cells, key=lambda c: c.run.goodput_tps)

    def knee(self, fraction: float = 0.8) -> Optional[LoadCell]:
        """First cell past the peak with goodput <= fraction * peak."""
        peak = self.peak
        if peak is None or peak.run.goodput_tps <= 0:
            return None
        threshold = fraction * peak.run.goodput_tps
        past_peak = False
        for cell in self.cells:
            if cell is peak:
                past_peak = True
                continue
            if past_peak and cell.run.goodput_tps <= threshold:
                return cell
        return None

    def to_dict(self) -> Dict[str, Any]:
        knee = self.knee()
        peak = self.peak
        return {
            "architecture": self.architecture,
            "state": self.state,
            "seed": self.seed,
            "arrival_process": self.arrival_process,
            "policy": self.policy,
            "slo_ms": self.slo_ms,
            "capacity_tps": self.calibration.capacity_tps,
            "closed_makespan_ms": self.calibration.makespan_ms,
            "ok": self.ok,
            "violations": self.violations,
            "peak_goodput_tps": peak.run.goodput_tps if peak else 0.0,
            "peak_multiplier": peak.multiplier if peak else None,
            "knee_multiplier": knee.multiplier if knee else None,
            "knee_goodput_tps": knee.run.goodput_tps if knee else None,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def summary(self) -> str:
        """A compact per-cell table plus the knee verdict."""
        lines = [
            f"loadtest {self.architecture} [{self.state}] "
            f"seed={self.seed} process={self.arrival_process} "
            f"policy={self.policy}",
            f"  capacity {self.calibration.capacity_tps:.2f} tps "
            f"(closed makespan {self.calibration.makespan_ms:.0f} ms), "
            f"SLO {self.slo_ms:.0f} ms",
            "  xload  offered  adm  rej  shed  good_tps  p95_ms",
        ]
        for cell in self.cells:
            run = cell.run
            lines.append(
                f"  x{cell.multiplier:<5g}{run.offered:>6}"
                f"{run.admitted:>6}{run.rejected:>5}{run.shed:>6}"
                f"{run.goodput_tps:>10.2f}{run.sojourn_ms.get('p95', 0.0):>9.0f}"
            )
        knee = self.knee()
        if knee is not None:
            peak = self.peak
            lines.append(
                f"  knee at x{knee.multiplier:g}: goodput "
                f"{knee.run.goodput_tps:.2f} tps vs peak "
                f"{peak.run.goodput_tps:.2f} tps at x{peak.multiplier:g}"
            )
        else:
            lines.append("  no knee found in the swept range")
        if not self.ok:
            lines.append(f"  ORACLE VIOLATIONS: {len(self.violations)}")
        return "\n".join(lines)


def calibrate(arch: str, seed: int, n_transactions: int) -> Calibration:
    """Closed-batch capacity of ``arch`` for the loadtest workload."""
    machine, transactions = build_open_machine(arch, seed, n_transactions)
    result = machine.run(transactions)
    capacity = (
        1000.0 * n_transactions / result.makespan_ms
        if result.makespan_ms > 0
        else 0.0
    )
    return Calibration(
        architecture=arch,
        n_transactions=n_transactions,
        makespan_ms=result.makespan_ms,
        capacity_tps=capacity,
        mean_completion_ms=result.mean_completion_ms,
    )


def run_loadtest(
    arch: str,
    seed: int = 1985,
    n_per_cell: int = 24,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    arrival: Optional[ArrivalConfig] = None,
    policy: str = "drop",
    slo_factor: float = 2.5,
    slo_ms: Optional[float] = None,
    state: str = "healthy",
    knee_fraction: float = 0.8,
    extend: bool = True,
    config_overrides: Optional[Dict[str, Any]] = None,
) -> LoadTestReport:
    """Sweep offered load against ``arch`` and locate the collapse knee.

    ``arrival`` provides the process shape (its ``rate_tps`` and
    ``n_arrivals`` are overridden per cell); ``slo_ms`` pins the SLO
    directly, otherwise it is ``slo_factor`` times the closed-batch mean
    completion.  ``state`` re-runs the whole sweep under a PR-5 degraded
    machine state.
    """
    if state not in DEGRADED_STATES:
        raise ValueError(
            f"unknown degraded state {state!r}; pick one of {DEGRADED_STATES}"
        )
    base_arrival = arrival if arrival is not None else ArrivalConfig()
    cal = calibrate(arch, seed, n_per_cell)
    if slo_ms is None:
        slo_ms = slo_factor * cal.mean_completion_ms
    overrides = dict(config_overrides or {})
    overrides.setdefault("admission_policy", policy)
    report = LoadTestReport(
        architecture=arch,
        state=state,
        seed=seed,
        arrival_process=base_arrival.process,
        policy=policy,
        slo_ms=slo_ms,
        calibration=cal,
    )

    def run_cell(multiplier: float) -> LoadCell:
        offered_tps = multiplier * cal.capacity_tps
        cell_arrival = replace(
            base_arrival, rate_tps=offered_tps, n_arrivals=n_per_cell
        )
        run = run_open_load(
            arch,
            cell_arrival,
            seed=seed,
            slo_ms=slo_ms,
            state=state,
            config_overrides=overrides,
        )
        return LoadCell(multiplier=multiplier, offered_tps=offered_tps, run=run)

    for multiplier in multipliers:
        report.cells.append(run_cell(multiplier))
    extensions = 0
    while (
        extend
        and report.knee(knee_fraction) is None
        and extensions < _MAX_EXTENSIONS
    ):
        report.cells.append(run_cell(report.cells[-1].multiplier * 2.0))
        extensions += 1
    return report


def sweep_architectures(
    archs: Sequence[str],
    states: Sequence[str] = ("healthy",),
    **kwargs,
) -> List[LoadTestReport]:
    """Loadtest every (architecture, state) pair; skip impossible pairs."""
    reports = []
    for arch in archs:
        for state in states:
            if state == "dead-lp" and arch != "wal":
                continue
            reports.append(run_loadtest(arch, state=state, **kwargs))
    return reports


def demo_spike_config() -> ArrivalConfig:
    """A bursty schedule with a scripted mid-run spike (docs/CLI demo)."""
    return ArrivalConfig(
        process="bursty",
        spikes=(Spike(start_ms=2_000.0, duration_ms=1_000.0, multiplier=3.0),),
    )
