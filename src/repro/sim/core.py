"""Core of the discrete-event kernel: environment, events, and processes.

The design follows the classic event-callback architecture used by simpy:

* an :class:`Event` is a one-shot object that is *triggered* with a value
  (or an exception) and later *processed*, at which point its callbacks run;
* a :class:`Process` wraps a generator; every value the generator yields must
  be an event, and the process resumes when that event is processed;
* the :class:`Environment` owns the event calendar (a heap ordered by time,
  priority, and insertion order, which makes runs fully deterministic).

Time is a float; the unit is chosen by the model (the database-machine models
in this package use **milliseconds**, matching the paper).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "AllOf",
    "AnyOf",
    "ConditionEvent",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

#: Priority for ordinary events scheduled at the same instant.
NORMAL = 1
#: Priority used when resuming a process; makes resumption happen before
#: same-time ordinary events, mirroring simpy's URGENT ordering.
URGENT = 0


class SimulationError(Exception):
    """Raised for misuse of the kernel (yielding non-events, etc.)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait for.

    Life cycle: *pending* -> *triggered* (has a value, sits in the event
    calendar) -> *processed* (callbacks have run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the callbacks have been invoked."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (value) rather than failed (error)."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value of untriggered event")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception thrown into them.  If nobody
        waits and the failure is not :meth:`defused <defuse>`, the exception
        propagates out of :meth:`Environment.run`.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env._schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (processed) event.

        Useful as a callback: ``evt_a.callbacks.append(evt_b.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failure as handled so it does not crash the run."""
        self._defused = True

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env._schedule(self, NORMAL, delay)


class _Initialize(Event):
    """Internal event that starts a process at its creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        self._triggered = True
        env._schedule(self, URGENT)


class Process(Event):
    """A running generator.  As an event, it fires when the generator ends.

    The event's value is the generator's return value (via ``StopIteration``)
    or the exception that terminated it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits for (None when running).
        self._target: Optional[Event] = None
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process is detached from whatever event it was waiting for (that
        event stays valid and may be re-yielded).
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self._target is None and self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_evt = Event(self.env)
        interrupt_evt._ok = False
        interrupt_evt._value = Interrupt(cause)
        interrupt_evt._defused = True
        interrupt_evt._triggered = True
        interrupt_evt.callbacks = [self._resume]
        self.env._schedule(interrupt_evt, URGENT)
        # Detach from the old target so its firing no longer resumes us.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                # Generator finished normally.
                self._ok = True
                self._value = exc.value
                self._triggered = True
                env._schedule(self, NORMAL)
                break
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self._ok = False
                self._value = exc
                self._triggered = True
                env._schedule(self, NORMAL)
                break

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                try:
                    self._generator.throw(error)
                except StopIteration as exc:
                    self._ok = True
                    self._value = exc.value
                    self._triggered = True
                    env._schedule(self, NORMAL)
                    break
                except BaseException as exc:  # noqa: BLE001
                    self._ok = False
                    self._value = exc
                    self._triggered = True
                    env._schedule(self, NORMAL)
                    break
                continue

            if next_event.callbacks is not None:
                # Event still pending/triggered-not-processed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: loop around immediately with it.
            event = next_event
        env._active_process = None


class ConditionEvent(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: Tuple[Event, ...] = tuple(events)
        for evt in self.events:
            if evt.env is not env:
                raise SimulationError("events from different environments")
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for evt in self.events:
            if evt.callbacks is None:
                # Already processed.
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            evt: evt._value
            for evt in self.events
            if evt._triggered and evt.callbacks is None and evt._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Fires when *all* constituent events have fired.

    Value: dict mapping each event to its value.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed({evt: evt._value for evt in self.events})


class AnyOf(ConditionEvent):
    """Fires when *any* constituent event fires.

    Value: dict of the events processed so far mapped to their values.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect() or {event: event._value})


class Environment:
    """The simulation clock and event calendar."""

    def __init__(self, initial_time: float = 0.0):
        self._now = initial_time
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Optional deterministic span recorder (see ``repro.trace``).
        #: Components that model time (disks, interconnects) duck-type it
        #: via ``getattr(env, "tracer", None)``; ``None`` disables tracing
        #: at zero cost.  Attached by whoever builds the model.
        self.tracer: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None between steps)."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event, to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling / stepping ----------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("step() on empty schedule")
        when, _, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure: surface it to the caller of run().
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the calendar empties, time ``until``, or an event fires.

        * ``until`` is None: run to exhaustion.
        * ``until`` is a number: run to that time (clock lands exactly on it).
        * ``until`` is an :class:`Event`: run until it is processed and return
          its value (raising if it failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._queue:
                    raise SimulationError(
                        "schedule ran dry before the awaited event fired"
                    )
                self.step()
            if not stop._ok:
                raise stop._value
            return stop._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"until={horizon} lies in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
