"""Discrete-event simulation kernel.

A small, dependency-free, simpy-style kernel: simulation *processes* are
Python generators that yield :class:`Event` objects (timeouts, resource
requests, other processes) and are resumed when those events fire.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def clock(env, name, tick):
...     while env.now < 2:
...         log.append((name, env.now))
...         yield env.timeout(tick)
>>> _ = env.process(clock(env, "fast", 0.5))
>>> _ = env.process(clock(env, "slow", 1.0))
>>> env.run(until=2)
>>> log[0]
('fast', 0)
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.monitor import (
    CounterStat,
    SampleStat,
    ShadowInstallMonitor,
    ShadowInstallViolation,
    TimeWeightedStat,
    UtilizationTracker,
    WALInvariantMonitor,
    WALViolation,
)
from repro.sim.resources import (
    Container,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "CounterStat",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "SampleStat",
    "ShadowInstallMonitor",
    "ShadowInstallViolation",
    "SimulationError",
    "Store",
    "TimeWeightedStat",
    "Timeout",
    "UtilizationTracker",
    "WALInvariantMonitor",
    "WALViolation",
]
