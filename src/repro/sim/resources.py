"""Shared-resource primitives built on the event kernel.

* :class:`Resource` — a counted resource (e.g. a pool of query processors);
  requests are events that fire when a slot frees up, FIFO.
* :class:`PriorityResource` — like Resource but requests carry a priority
  (lower number served first; ties FIFO).
* :class:`Store` — a FIFO buffer of Python objects with blocking get/put
  (used e.g. for message queues between processors).
* :class:`Container` — a level of continuous/discrete "stuff" with blocking
  get/put (used e.g. for free cache-frame accounting).

Requests are usable as context managers inside processes::

    with resource.request() as req:
        yield req
        ... # holding the resource
    # released automatically
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.sim.core import Environment, Event, SimulationError

__all__ = [
    "Container",
    "ContainerGet",
    "ContainerPut",
    "PriorityRequest",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
    "StoreGet",
    "StorePut",
]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` identical servers with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a slot; grants the oldest waiting request, if any."""
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing a queued (never-granted) request is a cancel.
            self._cancel(request)
            return
        while self.queue:
            nxt = self.queue.popleft()
            if nxt.triggered:  # cancelled/interrupted leftover
                continue
            self.users.append(nxt)
            nxt.succeed()
            break

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def retire(self, request: Request) -> None:
        """Remove a granted request *and* its slot (the server died).

        Unlike :meth:`release`, no waiter is promoted: the returned slot
        no longer exists.  Capacity shrinks by one.
        """
        self.users.remove(request)
        self.capacity -= 1

    def add_capacity(self, n: int = 1) -> None:
        """Grow the pool by ``n`` servers, granting waiters that now fit."""
        if n < 1:
            raise SimulationError(f"capacity increment must be >= 1, got {n}")
        self.capacity += n
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            if nxt.triggered:  # cancelled/interrupted leftover
                continue
            self.users.append(nxt)
            nxt.succeed()

    def remove_capacity(self, n: int = 1) -> None:
        """Shrink the pool by ``n`` *idle* servers (a free unit died)."""
        if n < 1:
            raise SimulationError(f"capacity decrement must be >= 1, got {n}")
        if self.capacity - n < len(self.users):
            raise SimulationError(
                f"cannot remove {n} slots: {len(self.users)} of "
                f"{self.capacity} are held (retire the holder instead)"
            )
        self.capacity -= n


class PriorityRequest(Request):
    """A resource claim with a priority key."""

    __slots__ = ("priority", "_order")

    def __init__(self, resource: "PriorityResource", priority: float):
        self.priority = priority
        self._order = resource._next_order()
        super().__init__(resource)

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by request priority."""

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._heap: List[PriorityRequest] = []
        self._order_counter = 0

    def _next_order(self) -> int:
        self._order_counter += 1
        return self._order_counter

    def request(self, priority: float = 0) -> PriorityRequest:  # type: ignore[override]
        req = PriorityRequest(self, priority)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            heapq.heappush(self._heap, req)
        return req

    def release(self, request: Request) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            self._cancel(request)
            return
        while self._heap:
            nxt = heapq.heappop(self._heap)
            if nxt.triggered:
                continue
            self.users.append(nxt)
            nxt.succeed()
            break

    def _cancel(self, request: Request) -> None:
        # Lazy deletion: mark by triggering with a failure-free sentinel is
        # unsafe; instead filter on pop.  Physically remove here for sanity.
        try:
            self._heap.remove(request)  # type: ignore[arg-type]
            heapq.heapify(self._heap)
        except ValueError:
            pass


class StoreGet(Event):
    __slots__ = ()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any):
        super().__init__(env)
        self.item = item


class Store:
    """FIFO object buffer with optional capacity.

    ``put(item)`` blocks while full; ``get()`` blocks while empty.  An
    optional ``get`` filter selects the first matching item (a la simpy's
    FilterStore) — handy for picking messages addressed to a specific node.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._getters: Deque[Tuple[StoreGet, Optional[Callable[[Any], bool]]]] = deque()
        self._putters: Deque[StorePut] = deque()

    def put(self, item: Any) -> StorePut:
        evt = StorePut(self.env, item)
        self._putters.append(evt)
        self._dispatch()
        return evt

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        evt = StoreGet(self.env)
        self._getters.append((evt, filter))
        self._dispatch()
        return evt

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit pending puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                if put.triggered:
                    continue
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Serve getters in FIFO order; a filtered getter that matches
            # nothing stays queued without blocking those behind it.
            remaining: Deque[Tuple[StoreGet, Optional[Callable[[Any], bool]]]] = deque()
            while self._getters:
                get, flt = self._getters.popleft()
                if get.triggered:
                    continue
                idx = None
                if flt is None:
                    if self.items:
                        idx = 0
                else:
                    for i, item in enumerate(self.items):
                        if flt(item):
                            idx = i
                            break
                if idx is None:
                    remaining.append((get, flt))
                else:
                    get.succeed(self.items.pop(idx))
                    progress = True
            self._getters = remaining


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float):
        super().__init__(env)
        self.amount = amount


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float):
        super().__init__(env)
        self.amount = amount


class Container:
    """A homogeneous level (frames, bytes, ...) with blocking get/put."""

    def __init__(self, env: Environment, capacity: float = float("inf"), init: float = 0):
        if init < 0 or init > capacity:
            raise SimulationError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._getters: Deque[ContainerGet] = deque()
        self._putters: Deque[ContainerPut] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        if amount <= 0:
            raise SimulationError("put amount must be positive")
        evt = ContainerPut(self.env, amount)
        self._putters.append(evt)
        self._dispatch()
        return evt

    def get(self, amount: float) -> ContainerGet:
        if amount <= 0:
            raise SimulationError("get amount must be positive")
        evt = ContainerGet(self.env, amount)
        self._getters.append(evt)
        self._dispatch()
        return evt

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                put = self._putters[0]
                if put.triggered:
                    self._putters.popleft()
                    progress = True
                elif self._level + put.amount <= self.capacity:
                    self._putters.popleft()
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self._getters:
                get = self._getters[0]
                if get.triggered:
                    self._getters.popleft()
                    progress = True
                elif self._level >= get.amount:
                    self._getters.popleft()
                    self._level -= get.amount
                    get.succeed()
                    progress = True
