"""Statistics collectors for simulation runs.

All collectors are explicitly fed (no magic instrumentation) and know the
environment only through the timestamps they are given, so they are equally
usable from unit tests without a running simulation.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Set

__all__ = [
    "CounterStat",
    "SampleStat",
    "ShadowInstallMonitor",
    "ShadowInstallViolation",
    "TimeWeightedStat",
    "UtilizationTracker",
    "WALInvariantMonitor",
    "WALViolation",
]


class CounterStat:
    """A plain event counter with a helpful repr."""

    def __init__(self, name: str = "counter"):
        self.name = name
        self.count = 0

    def increment(self, by: int = 1) -> None:
        self.count += by

    def __repr__(self) -> str:
        return f"<CounterStat {self.name}={self.count}>"


class SampleStat:
    """Aggregates i.i.d. samples: mean/variance/min/max, optional retention.

    Uses Welford's algorithm so very long runs do not need to keep samples;
    pass ``keep=True`` to retain raw samples (for percentiles in reports).
    """

    def __init__(self, name: str = "samples", keep: bool = False):
        self.name = name
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: Optional[List[float]] = [] if keep else None

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if self._samples is not None:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    @property
    def total(self) -> float:
        return self._mean * self.n

    def percentile(self, q: float) -> float:
        """q in [0, 100]; requires ``keep=True``."""
        if self._samples is None:
            raise ValueError("percentiles need keep=True")
        if not self._samples:
            return 0.0
        data = sorted(self._samples)
        k = (len(data) - 1) * q / 100.0
        lo = math.floor(k)
        hi = math.ceil(k)
        if lo == hi:
            return data[int(k)]
        return data[lo] * (hi - k) + data[hi] * (k - lo)

    def __repr__(self) -> str:
        return f"<SampleStat {self.name} n={self.n} mean={self.mean:.3f}>"


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant quantity.

    Feed it ``update(t, new_value)`` whenever the quantity changes; query
    ``mean(t_end)`` for the time average over [t0, t_end].  Used for queue
    lengths, cache occupancy, and number of blocked pages.
    """

    def __init__(self, t0: float = 0.0, value: float = 0.0, name: str = "level"):
        self.name = name
        self._t0 = t0
        self._last_t = t0
        self._value = value
        self._area = 0.0
        self._max = value

    @property
    def value(self) -> float:
        return self._value

    def update(self, t: float, value: float) -> None:
        if t < self._last_t:
            raise ValueError(f"time went backwards: {t} < {self._last_t}")
        self._area += self._value * (t - self._last_t)
        self._last_t = t
        self._value = value
        self._max = max(self._max, value)

    def add(self, t: float, delta: float) -> None:
        self.update(t, self._value + delta)

    def mean(self, t_end: Optional[float] = None) -> float:
        t = self._last_t if t_end is None else t_end
        if t < self._last_t:
            raise ValueError("t_end before last update")
        span = t - self._t0
        if span <= 0:
            return self._value
        return (self._area + self._value * (t - self._last_t)) / span

    @property
    def max(self) -> float:
        return self._max

    def __repr__(self) -> str:
        return f"<TimeWeightedStat {self.name} now={self._value}>"


class UtilizationTracker:
    """Fraction of time a server (or a pool of servers) is busy.

    ``start(t)`` / ``stop(t)`` may nest (a pool with N members counts how
    many are busy); ``utilization(t_end, capacity)`` divides busy-time by
    capacity * elapsed.
    """

    def __init__(self, t0: float = 0.0, name: str = "server"):
        self.name = name
        self._t0 = t0
        self._busy = 0
        self._last_t = t0
        self._busy_time = 0.0

    @property
    def busy(self) -> int:
        return self._busy

    def start(self, t: float) -> None:
        self._accumulate(t)
        self._busy += 1

    def stop(self, t: float) -> None:
        if self._busy <= 0:
            raise ValueError(f"stop() on idle tracker {self.name!r}")
        self._accumulate(t)
        self._busy -= 1

    def _accumulate(self, t: float) -> None:
        if t < self._last_t:
            raise ValueError(f"time went backwards: {t} < {self._last_t}")
        self._busy_time += self._busy * (t - self._last_t)
        self._last_t = t

    def busy_time(self, t_end: Optional[float] = None) -> float:
        t = self._last_t if t_end is None else t_end
        return self._busy_time + self._busy * (t - self._last_t)

    def utilization(self, t_end: float, capacity: int = 1) -> float:
        span = t_end - self._t0
        if span <= 0:
            return 0.0
        return self.busy_time(t_end) / (span * capacity)

    def __repr__(self) -> str:
        return f"<UtilizationTracker {self.name} busy={self._busy}>"


class WALViolation(AssertionError):
    """A dirty page reached stable storage before its recovery data."""


class WALInvariantMonitor:
    """Runtime checker of the write-ahead-log rule.

    The invariant (paper Section 3.1, and every WAL system since): a dirty
    page may be written to its home location only after every piece of
    recovery data describing its updates is on stable storage.  The static
    analyser (rule ARCH02) checks the *code paths*; this monitor checks the
    *executions* — producers report recovery data as it is created and
    forced, and the flush path asks permission just before a page goes home.

    Protocol:

    * ``note_recovery_data(page, token)`` — recovery data for ``page``
      exists but is still volatile.  ``token`` is any hashable handle
      (a log fragment, a ``(log, lsn)`` pair) unique to that datum.
    * ``note_force(token)`` — the datum reached stable storage.
    * ``note_flush(page)`` — ``page`` is about to be written home; raises
      :class:`WALViolation` (``strict=True``) or counts a violation if any
      of the page's recovery data is still volatile.
    * ``reset()`` — a crash: volatile recovery data is gone, so pending
      tokens are meaningless.

    Tokens shared by several pages are supported by registering the token
    once per page; a force retires it everywhere.
    """

    def __init__(self, strict: bool = True, name: str = "wal-monitor"):
        self.strict = strict
        self.name = name
        self.checks = 0
        self.forces = 0
        self.violations = 0
        self._pending: Dict[int, Set[Hashable]] = {}
        self._pages_of: Dict[Hashable, Set[int]] = {}

    def note_recovery_data(self, page: int, token: Hashable) -> None:
        self._pending.setdefault(page, set()).add(token)
        self._pages_of.setdefault(token, set()).add(page)

    def note_force(self, token: Hashable) -> None:
        self.forces += 1
        for page in self._pages_of.pop(token, ()):
            tokens = self._pending.get(page)
            if tokens is not None:
                tokens.discard(token)
                if not tokens:
                    del self._pending[page]

    def note_flush(self, page: int) -> None:
        self.checks += 1
        pending = self._pending.get(page)
        if pending:
            self.violations += 1
            if self.strict:
                raise WALViolation(
                    f"{self.name}: page {page} flushed with "
                    f"{len(pending)} unforced recovery datum(s)"
                )

    def reset(self) -> None:
        self._pending.clear()
        self._pages_of.clear()

    @property
    def pending_pages(self) -> int:
        """Pages currently protected by volatile recovery data."""
        return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"<WALInvariantMonitor {self.name} checks={self.checks} "
            f"violations={self.violations} pending={self.pending_pages}>"
        )


class ShadowInstallViolation(AssertionError):
    """A page-table install pointed at a version not yet on stable storage."""


class ShadowInstallMonitor:
    """Runtime checker of the shadow-paging install rule.

    The dual of the WAL invariant (paper Section 3.2): a shadow
    architecture may *install* a page's new version — flip the page-table
    entry (or the version timestamp) to point at it — only after that
    version is entirely on stable storage.  Installing first would leave
    the table referencing garbage if the machine crashed before the
    version landed.

    Protocol (mirrors :class:`WALInvariantMonitor`):

    * ``note_version_written(page, token)`` — a new version of ``page``
      exists but is still volatile (its write-back just started);
      ``token`` is any hashable handle unique to that version, e.g. a
      ``(tid, page)`` pair.
    * ``note_version_durable(token)`` — the version reached stable
      storage.
    * ``note_install(page)`` — the page-table entry for ``page`` is about
      to flip; raises :class:`ShadowInstallViolation` (``strict=True``) or
      counts a violation if any version of the page is still volatile.
    * ``reset()`` — a crash: in-flight versions are gone with the cache.
    """

    def __init__(self, strict: bool = True, name: str = "shadow-monitor"):
        self.strict = strict
        self.name = name
        self.installs = 0
        self.durables = 0
        self.violations = 0
        self._pending: Dict[int, Set[Hashable]] = {}
        self._pages_of: Dict[Hashable, Set[int]] = {}

    def note_version_written(self, page: int, token: Hashable) -> None:
        self._pending.setdefault(page, set()).add(token)
        self._pages_of.setdefault(token, set()).add(page)

    def note_version_durable(self, token: Hashable) -> None:
        self.durables += 1
        for page in self._pages_of.pop(token, ()):
            tokens = self._pending.get(page)
            if tokens is not None:
                tokens.discard(token)
                if not tokens:
                    del self._pending[page]

    def note_install(self, page: int) -> None:
        self.installs += 1
        pending = self._pending.get(page)
        if pending:
            self.violations += 1
            if self.strict:
                raise ShadowInstallViolation(
                    f"{self.name}: page {page} installed with "
                    f"{len(pending)} volatile version(s)"
                )

    def reset(self) -> None:
        self._pending.clear()
        self._pages_of.clear()

    @property
    def pending_pages(self) -> int:
        """Pages whose newest version has not reached stable storage."""
        return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"<ShadowInstallMonitor {self.name} installs={self.installs} "
            f"violations={self.violations} pending={self.pending_pages}>"
        )
