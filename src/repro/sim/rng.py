"""Named, reproducible random-number streams.

Every stochastic component of the simulator draws from its own named stream
derived deterministically from a master seed.  This gives *common random
numbers* across experiment variants: changing, say, the number of log
processors does not perturb the transaction reference strings, so paired
comparisons between architectures are low-variance — the standard variance
reduction technique for simulation studies like the paper's.

This module is the one sanctioned constructor of ``random.Random``
instances; everything else must draw from a named stream.

# reprolint: disable=DET01  (the wrapper the rule points everyone at)
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent ``random.Random`` instances by name."""

    def __init__(self, master_seed: int = 1985):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use, then cached)."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def __getitem__(self, name: str) -> random.Random:
        return self.stream(name)

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        digest = hashlib.sha256(
            f"{self.master_seed}:fork:{name}".encode("utf-8")
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
