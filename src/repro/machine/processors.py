"""Processor pools: the query processors (and helpers for other CPUs).

The pool hands out *indexed* processors: the paper's cyclic and
"QP number mod #log-processors" fragment-routing policies (Section 3.1)
need to know which physical query processor is doing the work.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hardware.params import CpuParams
from repro.sim.core import Environment
from repro.sim.monitor import CounterStat, UtilizationTracker
from repro.sim.resources import Request, Resource

__all__ = ["ProcessorPool"]


class ProcessorPool:
    """``capacity`` identical CPUs with a shared FIFO dispatch queue.

    The paper assumes any free query processor may be assigned any ready
    page (its Section 4.3.2 discusses smarter allocation as future work),
    so a counted resource models the pool; a free-index stack names the
    specific processor granted.
    """

    def __init__(
        self,
        env: Environment,
        capacity: int,
        cpu: CpuParams,
        name: str = "qp",
    ):
        self.env = env
        self.capacity = capacity
        self.cpu = cpu
        self.name = name
        self._pool = Resource(env, capacity=capacity)
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self.busy = UtilizationTracker(env.now, name=name)
        self.jobs = CounterStat(f"{name}.jobs")

    # -- indexed protocol ------------------------------------------------------
    def acquire(self):
        """Generator: claim a processor; returns ``(index, grant)``.

        The processor counts as busy from grant to :meth:`release` — waits
        performed while holding it (e.g. shipping a log fragment) raise its
        utilization, exactly as the paper observes for through-cache fragment
        routing.
        """
        grant = self._pool.request()
        yield grant
        index = self._free.pop()
        self.busy.start(self.env.now)
        return index, grant

    def release(self, index: int, grant: Request) -> None:
        self.busy.stop(self.env.now)
        self.jobs.increment()
        self._free.append(index)
        self._pool.release(grant)

    # -- convenience -----------------------------------------------------------
    def execute_ms(self, ms: float):
        """Generator: grab any processor, burn ``ms`` of CPU, release it."""
        index, grant = yield from self.acquire()
        try:
            yield self.env.timeout(ms)
        finally:
            self.release(index, grant)

    def execute_instructions(self, instructions: float):
        """Generator: like :meth:`execute_ms` but in instruction counts."""
        yield from self.execute_ms(self.cpu.ms(instructions))

    def utilization(self, t_end: Optional[float] = None) -> float:
        t = t_end if t_end is not None else self.env.now
        return self.busy.utilization(t, capacity=self.capacity)

    @property
    def busy_count(self) -> int:
        return self._pool.count
