"""Processor pools: the query processors (and helpers for other CPUs).

The pool hands out *indexed* processors: the paper's cyclic and
"QP number mod #log-processors" fragment-routing policies (Section 3.1)
need to know which physical query processor is doing the work.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.hardware.params import CpuParams
from repro.sim.core import Environment, SimulationError
from repro.sim.monitor import CounterStat, UtilizationTracker
from repro.sim.resources import Request, Resource

__all__ = ["ProcessorFailure", "ProcessorPool"]


class ProcessorFailure(Exception):
    """A query processor died under the transaction running on it.

    Carried as the abort cause when the failover path aborts the victim
    through the machine's normal undo machinery.
    """

    def __init__(self, tid: int, index: int):
        super().__init__(f"query processor {index} failed under transaction {tid}")
        self.tid = tid
        self.index = index


class ProcessorPool:
    """``capacity`` identical CPUs with a shared FIFO dispatch queue.

    The paper assumes any free query processor may be assigned any ready
    page (its Section 4.3.2 discusses smarter allocation as future work),
    so a counted resource models the pool; a free-index stack names the
    specific processor granted.
    """

    def __init__(
        self,
        env: Environment,
        capacity: int,
        cpu: CpuParams,
        name: str = "qp",
    ):
        self.env = env
        self.capacity = capacity
        self.cpu = cpu
        self.name = name
        self._pool = Resource(env, capacity=capacity)
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        #: Indices of processors that died while idle (or after their last
        #: job drained); never dispatched to again.
        self._dead: Set[int] = set()
        #: Indices that died *while busy*: the current job's release
        #: retires the slot instead of returning it to the free list.
        self._doomed: Set[int] = set()
        self.busy = UtilizationTracker(env.now, name=name)
        self.jobs = CounterStat(f"{name}.jobs")
        self.failures = CounterStat(f"{name}.failures")

    # -- indexed protocol ------------------------------------------------------
    def acquire(self):
        """Generator: claim a processor; returns ``(index, grant)``.

        The processor counts as busy from grant to :meth:`release` — waits
        performed while holding it (e.g. shipping a log fragment) raise its
        utilization, exactly as the paper observes for through-cache fragment
        routing.
        """
        grant = self._pool.request()
        yield grant
        index = self._free.pop()
        self.busy.start(self.env.now)
        return index, grant

    def release(self, index: int, grant: Request) -> None:
        self.busy.stop(self.env.now)
        self.jobs.increment()
        if index in self._doomed:
            # The processor died mid-job: retire the slot instead of
            # recycling it — the pool has permanently shrunk.
            self._doomed.discard(index)
            self._dead.add(index)
            self._pool.retire(grant)
            return
        self._free.append(index)
        self._pool.release(grant)

    # -- permanent failures ----------------------------------------------------
    def fail(self, index: int) -> bool:
        """Processor ``index`` dies permanently (fail-stop).

        An idle processor leaves the pool immediately; a busy one is
        doomed — its slot is retired when the in-flight job releases it
        (the machine's failover aborts that job's transaction).  Returns
        True when the processor was busy at the instant of failure.
        """
        if not 0 <= index < self.capacity:
            raise SimulationError(
                f"no processor {index} in a pool of {self.capacity}"
            )
        if index in self._dead or index in self._doomed:
            return index in self._doomed
        self.failures.increment()
        if index in self._free:
            self._free.remove(index)
            self._dead.add(index)
            self._pool.remove_capacity(1)
            return False
        self._doomed.add(index)
        return True

    def repair(self, index: int) -> None:
        """A repaired (or replacement) processor rejoins the pool as
        ``index``; queued work starts dispatching to it immediately."""
        if index in self._doomed:
            # Repaired before its dying job drained: simply un-doom it.
            self._doomed.discard(index)
            return
        if index not in self._dead:
            return
        self._dead.discard(index)
        self._free.append(index)
        self._pool.add_capacity(1)

    def is_alive(self, index: int) -> bool:
        return index not in self._dead and index not in self._doomed

    @property
    def alive_count(self) -> int:
        """Processors still serving (nominal capacity minus failures)."""
        return self.capacity - len(self._dead) - len(self._doomed)

    # -- convenience -----------------------------------------------------------
    def execute_ms(self, ms: float):
        """Generator: grab any processor, burn ``ms`` of CPU, release it."""
        index, grant = yield from self.acquire()
        try:
            yield self.env.timeout(ms)
        finally:
            self.release(index, grant)

    def execute_instructions(self, instructions: float):
        """Generator: like :meth:`execute_ms` but in instruction counts."""
        yield from self.execute_ms(self.cpu.ms(instructions))

    def utilization(self, t_end: Optional[float] = None) -> float:
        t = t_end if t_end is not None else self.env.now
        return self.busy.utilization(t, capacity=self.capacity)

    @property
    def busy_count(self) -> int:
        return self._pool.count
