"""The page-addressable disk cache managed by the back-end controller.

For the timing model the cache is a counted pool of frames plus occupancy
statistics.  The quantities the paper reports are tracked explicitly:

* free frames over time (anticipatory reading stalls when none are free);
* the number of updated pages *blocked* in the cache waiting for their log
  records (or scratch writes) to reach stable storage — e.g. the paper's
  "on average there were less than 5 pages in the cache waiting for their
  log records" (Section 4.1.1) and "129 frames out of 150 were occupied by
  updated pages waiting" (Section 4.1.2).
"""

from __future__ import annotations

from repro.sim.core import Environment, Event, SimulationError
from repro.sim.monitor import CounterStat, TimeWeightedStat
from repro.sim.resources import Container

__all__ = ["DiskCache"]


class DiskCache:
    """A pool of ``capacity`` page frames with blocking allocation."""

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise SimulationError("cache needs at least one frame")
        self.env = env
        self.capacity = capacity
        self._frames = Container(env, capacity=capacity, init=capacity)
        self.free_frames = TimeWeightedStat(env.now, capacity, name="cache.free")
        self.blocked_pages = TimeWeightedStat(env.now, 0, name="cache.blocked")
        self.allocations = CounterStat("cache.allocations")

    @property
    def free(self) -> int:
        return int(self._frames.level)

    @property
    def in_use(self) -> int:
        return self.capacity - self.free

    def acquire(self, n: int = 1) -> Event:
        """Claim ``n`` frames; the event fires when they are available."""
        if n > self.capacity:
            raise SimulationError(
                f"requesting {n} frames from a {self.capacity}-frame cache"
            )
        evt = self._frames.get(n)
        # The callback list survives until the event is *processed*, so this
        # works whether the grant was immediate or deferred.
        evt.callbacks.append(self._on_acquired(n))
        return evt

    def _on_acquired(self, n: int):
        def callback(_event) -> None:
            self._record(n)

        return callback

    def _record(self, n: int) -> None:
        self.allocations.increment(n)
        self.free_frames.update(self.env.now, self.free)

    def release(self, n: int = 1) -> None:
        """Return ``n`` frames to the pool."""
        self._frames.put(n)
        self.free_frames.update(self.env.now, self.free)

    # -- blocked-page accounting ------------------------------------------------
    def mark_blocked(self, n: int = 1) -> None:
        """Count ``n`` updated pages now waiting on stable-storage writes."""
        self.blocked_pages.add(self.env.now, n)

    def unmark_blocked(self, n: int = 1) -> None:
        self.blocked_pages.add(self.env.now, -n)

    def mean_blocked(self, t_end: float) -> float:
        return self.blocked_pages.mean(t_end)

    def mean_free(self, t_end: float) -> float:
        return self.free_frames.mean(t_end)
