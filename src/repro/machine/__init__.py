"""The multiprocessor-cache database machine (paper Section 2).

Query processors process transactions asynchronously; a back-end controller
coordinates them, manages a page-addressable disk cache, and runs a
page-level-locking scheduler; an I/O processor moves pages between the data
disks and the cache.
"""

from repro.machine.admission import AdmissionQueue, BackpressureMonitor
from repro.machine.cache import DiskCache
from repro.machine.config import MachineConfig
from repro.machine.locks import DeadlockAbort, LockManager, LockMode
from repro.machine.machine import DatabaseMachine
from repro.machine.processors import ProcessorPool

__all__ = [
    "AdmissionQueue",
    "BackpressureMonitor",
    "DatabaseMachine",
    "DeadlockAbort",
    "DiskCache",
    "LockManager",
    "LockMode",
    "MachineConfig",
    "ProcessorPool",
]
