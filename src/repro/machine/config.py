"""Configuration of the simulated database machine.

Defaults reproduce the paper's baseline testbed (Section 4): 25 query
processors, 100 4 KB cache frames, 2 data disks, multiprogramming level and
read-ahead chosen to match the paper's bare-machine anchors (see
``EXPERIMENTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hardware.params import IBM_3350, VAX_11_750, CostModel, CpuParams, DiskParams

__all__ = ["MachineConfig"]


@dataclass(frozen=True)
class MachineConfig:
    """Static parameters of one database-machine instance."""

    n_query_processors: int = 25
    cache_frames: int = 100
    n_data_disks: int = 2
    parallel_data_disks: bool = False
    disk: DiskParams = IBM_3350
    cpu: CpuParams = VAX_11_750
    cost: CostModel = field(default_factory=CostModel)
    #: Concurrent transactions admitted by the back-end controller.
    mpl: int = 3
    #: Per-transaction anticipatory-read depth (pages in flight), subject to
    #: free cache frames.  The BEC reads ahead while frames allow.
    prefetch_window: int = 32
    #: Logical database size in pages; the database is striped over the data
    #: disks' non-reserved cylinders.
    db_pages: int = 120_000
    #: Cylinders reserved per data disk for scratch space, differential
    #: files, and other recovery structures.
    reserved_cylinders: int = 50
    #: Queue discipline of conventional data disks: "fcfs" (period-correct
    #: default) or "sstf" (shortest-seek-time-first; ablation extension).
    disk_scheduling: str = "fcfs"
    #: Mirror every data disk (two physical drives per logical disk).  Reads
    #: fall back to the surviving side when one dies; a replacement rebuilds
    #: in the background.  Off by default: the paper's testbed is unmirrored,
    #: and default runs must stay byte-identical.
    mirrored_data_disks: bool = False
    #: Fraction of a surviving mirror side's bandwidth the background rebuild
    #: may consume (the rest is idle gaps left for foreground I/O).
    mirror_rebuild_io_share: float = 0.5
    #: Delivery attempts per log fragment (each attempt re-selects a live
    #: log processor; each link attempt itself retransmits with backoff).
    log_ship_max_attempts: int = 4
    #: Linear backoff between fragment-shipping attempts, in ms.
    log_ship_backoff_ms: float = 2.0
    seed: int = 1985

    def __post_init__(self) -> None:
        if self.n_query_processors < 1:
            raise ValueError("need at least one query processor")
        if self.mpl < 1:
            raise ValueError("multiprogramming level must be >= 1")
        if self.prefetch_window < 1:
            raise ValueError("prefetch window must be >= 1")
        usable = (
            (self.disk.cylinders - self.reserved_cylinders)
            * self.disk.pages_per_cylinder
            * self.n_data_disks
        )
        if self.db_pages > usable:
            raise ValueError(
                f"database of {self.db_pages} pages does not fit in "
                f"{usable} usable pages "
                f"({self.n_data_disks} disks minus reserved cylinders)"
            )
        if self.cache_frames < self.mpl:
            raise ValueError("cache must hold at least one frame per active txn")
        if self.disk_scheduling not in ("fcfs", "sstf"):
            raise ValueError(f"unknown disk scheduling {self.disk_scheduling!r}")
        if not 0.0 < self.mirror_rebuild_io_share <= 1.0:
            raise ValueError(
                f"mirror rebuild I/O share must be in (0, 1], "
                f"got {self.mirror_rebuild_io_share}"
            )
        if self.log_ship_max_attempts < 1:
            raise ValueError("need at least one log-ship attempt")
        if self.log_ship_backoff_ms < 0:
            raise ValueError("log-ship backoff must be >= 0")

    @property
    def usable_pages_per_disk(self) -> int:
        return (self.disk.cylinders - self.reserved_cylinders) * self.disk.pages_per_cylinder

    @property
    def reserved_start_cylinder(self) -> int:
        return self.disk.cylinders - self.reserved_cylinders

    def with_overrides(self, **kwargs) -> "MachineConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)
