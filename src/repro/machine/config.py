"""Configuration of the simulated database machine.

Defaults reproduce the paper's baseline testbed (Section 4): 25 query
processors, 100 4 KB cache frames, 2 data disks, multiprogramming level and
read-ahead chosen to match the paper's bare-machine anchors (see
``EXPERIMENTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hardware.params import IBM_3350, VAX_11_750, CostModel, CpuParams, DiskParams

__all__ = ["MachineConfig"]


@dataclass(frozen=True)
class MachineConfig:
    """Static parameters of one database-machine instance."""

    n_query_processors: int = 25
    cache_frames: int = 100
    n_data_disks: int = 2
    parallel_data_disks: bool = False
    disk: DiskParams = IBM_3350
    cpu: CpuParams = VAX_11_750
    cost: CostModel = field(default_factory=CostModel)
    #: Concurrent transactions admitted by the back-end controller.
    mpl: int = 3
    #: Per-transaction anticipatory-read depth (pages in flight), subject to
    #: free cache frames.  The BEC reads ahead while frames allow.
    prefetch_window: int = 32
    #: Logical database size in pages; the database is striped over the data
    #: disks' non-reserved cylinders.
    db_pages: int = 120_000
    #: Cylinders reserved per data disk for scratch space, differential
    #: files, and other recovery structures.
    reserved_cylinders: int = 50
    #: Queue discipline of conventional data disks: "fcfs" (period-correct
    #: default) or "sstf" (shortest-seek-time-first; ablation extension).
    disk_scheduling: str = "fcfs"
    #: Mirror every data disk (two physical drives per logical disk).  Reads
    #: fall back to the surviving side when one dies; a replacement rebuilds
    #: in the background.  Off by default: the paper's testbed is unmirrored,
    #: and default runs must stay byte-identical.
    mirrored_data_disks: bool = False
    #: Fraction of a surviving mirror side's bandwidth the background rebuild
    #: may consume (the rest is idle gaps left for foreground I/O).
    mirror_rebuild_io_share: float = 0.5
    #: Run the online integrity scrubber: a background patrol that reads
    #: every data-disk cylinder, detects rotted sectors (BIT_ROT faults),
    #: and repairs them from the mirror twin or escalates to archive media
    #: recovery.  Off by default: fault-free runs must stay byte-identical.
    scrub_enabled: bool = False
    #: Fraction of a disk's bandwidth the scrubber may consume (the rest is
    #: idle gaps left for foreground I/O, like the mirror rebuild's share).
    scrub_io_share: float = 0.1
    #: Idle time between complete scrub patrols, in ms (0 = back-to-back).
    scrub_interval_ms: float = 50.0
    #: Delivery attempts per log fragment (each attempt re-selects a live
    #: log processor; each link attempt itself retransmits with backoff).
    log_ship_max_attempts: int = 4
    #: Linear backoff between fragment-shipping attempts, in ms.
    log_ship_backoff_ms: float = 2.0
    #: Depth of the bounded admission queue in front of the machine
    #: (admitted-but-not-yet-running transactions).  Only open-system runs
    #: (:meth:`DatabaseMachine.run_open`) consult the admission knobs;
    #: closed-batch ``run()`` is untouched and stays byte-identical.
    admission_queue_limit: int = 16
    #: Admission policy when an offered transaction arrives:
    #: ``drop`` (turn away instantly when the queue is full),
    #: ``block`` (wait up to ``admission_block_timeout_ms`` for room), or
    #: ``token-bucket`` (admit only while tokens remain; they refill at
    #: ``admission_tokens_per_s`` up to ``admission_token_burst``).
    admission_policy: str = "drop"
    #: How long a ``block``-policy arrival waits for queue room before the
    #: attempt counts as a turn-away, in ms.
    admission_block_timeout_ms: float = 250.0
    #: Token refill rate for ``token-bucket`` admission (tokens/second).
    admission_tokens_per_s: float = 0.0
    #: Token bucket capacity (burst size) for ``token-bucket`` admission.
    admission_token_burst: int = 8
    #: Client-side attempts per offered transaction (first try + retries);
    #: a turned-away client retries with capped exponential backoff.
    admission_retry_max_attempts: int = 3
    #: Base of the capped exponential client backoff, in ms.
    admission_retry_base_ms: float = 50.0
    #: Cap on the exponential client backoff, in ms.
    admission_retry_cap_ms: float = 400.0
    #: Client deadline from arrival to admission, in ms; a transaction not
    #: admitted by its deadline is shed (0 disables deadline shedding).
    admission_deadline_ms: float = 0.0
    #: Cache-occupancy fraction at which backpressure asserts (arrivals
    #: are turned away) and the fraction below which it releases.
    backpressure_cache_high: float = 0.95
    backpressure_cache_low: float = 0.75
    #: Waiting lock requests at which backpressure asserts / releases.
    backpressure_lock_high: int = 48
    backpressure_lock_low: int = 12
    seed: int = 1985

    def __post_init__(self) -> None:
        if self.n_query_processors < 1:
            raise ValueError("need at least one query processor")
        if self.mpl < 1:
            raise ValueError("multiprogramming level must be >= 1")
        if self.prefetch_window < 1:
            raise ValueError("prefetch window must be >= 1")
        usable = (
            (self.disk.cylinders - self.reserved_cylinders)
            * self.disk.pages_per_cylinder
            * self.n_data_disks
        )
        if self.db_pages > usable:
            raise ValueError(
                f"database of {self.db_pages} pages does not fit in "
                f"{usable} usable pages "
                f"({self.n_data_disks} disks minus reserved cylinders)"
            )
        if self.cache_frames < self.mpl:
            raise ValueError("cache must hold at least one frame per active txn")
        if self.disk_scheduling not in ("fcfs", "sstf"):
            raise ValueError(f"unknown disk scheduling {self.disk_scheduling!r}")
        if not 0.0 < self.mirror_rebuild_io_share <= 1.0:
            raise ValueError(
                f"mirror rebuild I/O share must be in (0, 1], "
                f"got {self.mirror_rebuild_io_share}"
            )
        if not 0.0 < self.scrub_io_share <= 1.0:
            raise ValueError(
                f"scrub I/O share must be in (0, 1], got {self.scrub_io_share}"
            )
        if self.scrub_interval_ms < 0:
            raise ValueError("scrub interval must be >= 0")
        if self.log_ship_max_attempts < 1:
            raise ValueError("need at least one log-ship attempt")
        if self.log_ship_backoff_ms < 0:
            raise ValueError("log-ship backoff must be >= 0")
        if self.admission_queue_limit < 1:
            raise ValueError("admission queue needs at least one slot")
        if self.admission_policy not in ("drop", "block", "token-bucket"):
            raise ValueError(
                f"unknown admission policy {self.admission_policy!r}"
            )
        if self.admission_block_timeout_ms < 0:
            raise ValueError("admission block timeout must be >= 0")
        if self.admission_policy == "token-bucket" and self.admission_tokens_per_s <= 0:
            raise ValueError(
                "token-bucket admission needs admission_tokens_per_s > 0"
            )
        if self.admission_token_burst < 1:
            raise ValueError("token bucket needs a burst of at least 1")
        if self.admission_retry_max_attempts < 1:
            raise ValueError("need at least one admission attempt")
        if self.admission_retry_base_ms < 0 or self.admission_retry_cap_ms < 0:
            raise ValueError("admission retry backoff must be >= 0")
        if self.admission_deadline_ms < 0:
            raise ValueError("admission deadline must be >= 0 (0 disables)")
        if not 0.0 < self.backpressure_cache_low <= self.backpressure_cache_high <= 1.0:
            raise ValueError(
                "backpressure cache watermarks need "
                "0 < low <= high <= 1, got "
                f"{self.backpressure_cache_low}/{self.backpressure_cache_high}"
            )
        if not 0 <= self.backpressure_lock_low <= self.backpressure_lock_high:
            raise ValueError(
                "backpressure lock watermarks need 0 <= low <= high, got "
                f"{self.backpressure_lock_low}/{self.backpressure_lock_high}"
            )

    @property
    def usable_pages_per_disk(self) -> int:
        return (self.disk.cylinders - self.reserved_cylinders) * self.disk.pages_per_cylinder

    @property
    def reserved_start_cylinder(self) -> int:
        return self.disk.cylinders - self.reserved_cylinders

    def with_overrides(self, **kwargs) -> "MachineConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)
