"""The database machine: back-end controller, pipelines, and the run loop.

One :class:`DatabaseMachine` instance owns a simulation environment, the
hardware (data disks, cache, query-processor pool), the page-level-locking
scheduler, and a recovery architecture.  ``run(transactions)`` executes a
transaction load to completion and returns a :class:`~repro.metrics.RunResult`.

Execution model (paper Sections 2 and 4):

* the back-end controller admits up to ``mpl`` transactions concurrently;
* each transaction's reference string is pipelined through a read-ahead
  window: lock -> (architecture indirection) -> cache frame -> disk read ->
  query processor -> optional update -> write-back;
* write-backs run detached; the recovery architecture owns the durability
  path (WAL barriers, scratch writes, ...);
* transaction completion time runs from the first cache-frame allocation to
  the last updated page reaching disk, exactly the paper's metric.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.base import AuxRead, DataPage, RecoveryArchitecture, WorkItem
from repro.hardware.disk import Disk, DiskAddress, make_disk, split_by_cylinder
from repro.hardware.mirror import MirroredDisk
from repro.hardware.placement import ClusteredPlacement, Placement
from repro.machine.admission import ADMITTED, AdmissionQueue
from repro.machine.cache import DiskCache
from repro.machine.config import MachineConfig
from repro.machine.locks import DeadlockAbort, LockManager, LockMode
from repro.machine.processors import ProcessorFailure, ProcessorPool
from repro.metrics.collectors import RunResult
from repro.metrics.timeline import Timeline
from repro.sim.core import Environment, Event, Process
from repro.sim.monitor import (
    CounterStat,
    SampleStat,
    ShadowInstallMonitor,
    WALInvariantMonitor,
)
from repro.sim.resources import Container, Resource
from repro.sim.rng import RandomStreams
from repro.workload.transaction import Transaction, TransactionStatus

__all__ = ["DatabaseMachine"]

#: Delay before a deadlock victim restarts, in ms.
RESTART_BACKOFF_MS = 50.0


class _TxnRuntime:
    """Per-attempt bookkeeping the machine and architectures share."""

    __slots__ = ("aborted", "abort_cause", "writebacks", "started", "scratch")

    def __init__(self) -> None:
        self.aborted = False
        #: Why the attempt aborted (a DeadlockAbort, a ProcessorFailure, ...).
        self.abort_cause: Optional[Exception] = None
        self.writebacks: List[Process] = []
        self.started = False
        #: Free-form per-attempt state for the recovery architecture.
        self.scratch: dict = {}


class DatabaseMachine:
    """A multiprocessor-cache database machine with pluggable recovery."""

    def __init__(
        self,
        config: MachineConfig,
        architecture: Optional[RecoveryArchitecture] = None,
        placement: Optional[Placement] = None,
        timeline: Optional[Timeline] = None,
        wal_monitor: Optional[WALInvariantMonitor] = None,
        shadow_monitor: Optional[ShadowInstallMonitor] = None,
        faults=None,
        tracer=None,
    ):
        self.config = config
        self.timeline = timeline
        #: Optional :class:`repro.trace.Tracer` (duck-typed; the machine
        #: only calls ``begin``/``end``/``instant`` through the ``_tspan``
        #: guard helpers, which are no-ops when no tracer is attached).
        self.tracer = tracer
        #: Optional runtime WAL checker; architectures that gate write-backs
        #: on recovery data report to it (see sim.monitor.WALInvariantMonitor).
        self.wal_monitor = wal_monitor
        #: Optional runtime checker of the shadow install rule (a page-table
        #: entry may only flip to a version already on stable storage).
        self.shadow_monitor = shadow_monitor
        #: Optional :class:`repro.faults.FaultInjector` (duck-typed: the
        #: machine only calls ``poll``; disks/links use their own
        #: predicates).  Wired into the data disks here and into the
        #: architecture's private hardware during ``attach``.
        self.faults = faults
        self.env = Environment()
        # Bind the tracer to this machine's clock; disks and interconnects
        # pick it up from the environment.
        if tracer is not None:
            tracer.env = self.env
        self.env.tracer = tracer
        self.streams = RandomStreams(config.seed)
        self.placement = placement or ClusteredPlacement(
            config.disk, config.n_data_disks, config.db_pages
        )
        if config.mirrored_data_disks:
            # Mirror pairs draw from their own named streams (derived
            # independently of ``disk.data{i}``), so flipping mirroring on
            # never perturbs an unmirrored run with the same seed.
            self.data_disks: List[Disk] = [
                MirroredDisk(
                    self.env,
                    config.disk,
                    streams=self.streams,
                    parallel=config.parallel_data_disks,
                    name=f"data{i}",
                    scheduling=config.disk_scheduling,
                    rebuild_io_share=config.mirror_rebuild_io_share,
                )
                for i in range(config.n_data_disks)
            ]
        else:
            self.data_disks = [
                make_disk(
                    self.env,
                    config.disk,
                    parallel=config.parallel_data_disks,
                    name=f"data{i}",
                    rng=self.streams.stream(f"disk.data{i}"),
                    scheduling=config.disk_scheduling,
                )
                for i in range(config.n_data_disks)
            ]
        self.cache = DiskCache(self.env, config.cache_frames)
        self.qps = ProcessorPool(
            self.env, config.n_query_processors, config.cpu, name="qp"
        )
        self.locks = LockManager(self.env)
        self.pages_read = CounterStat("pages_read")
        self.pages_written = CounterStat("pages_written")
        self.qp_failures = CounterStat("qp_failures")
        self.completions = SampleStat("completion_ms", keep=True)
        self._runtimes: Dict[int, _TxnRuntime] = {}
        self._restarts = 0
        #: QP index -> (transaction, runtime) currently executing there,
        #: so a processor failure knows which transaction to fail over.
        self._qp_holders: Dict[int, Tuple[Transaction, _TxnRuntime]] = {}
        #: Optional duck-typed health monitor (repro.resilience attaches
        #: itself here); with one attached, component failover waits for
        #: the monitor's detection instead of firing instantly.
        self.health = None
        #: Optional duck-typed integrity scrubber (repro.resilience
        #: attaches itself here when ``config.scrub_enabled``); its
        #: ``extra_counters()`` are folded into the run result.
        self.scrubber = None
        #: Bounded admission queue; built by :meth:`run_open` only, so the
        #: closed-batch path never touches the overload-protection code.
        self.admission: Optional[AdmissionQueue] = None
        #: Fires when an injected whole-machine crash halts the run.
        self._crash_event: Event = self.env.event()
        self.crashed = False
        self.crash_reason: Optional[str] = None
        if faults is not None:
            for disk in self.data_disks:
                disk.faults = faults
        self.arch = architecture if architecture is not None else RecoveryArchitecture()
        self.arch.attach(self)

    # ------------------------------------------------------------------ tracing
    def _tspan(self, name: str, parent=None, tid: Optional[int] = None, **args):
        """Open a trace span, or return None when tracing is disabled.

        Recording is a synchronous append — no simulation events, no RNG
        draws — so a traced run's event calendar is identical to an
        untraced one (the zero-perturbation acceptance criterion).
        """
        if self.tracer is None:
            return None
        # The forwarding site itself; callers pass catalogue literals.
        return self.tracer.begin(name, parent=parent, tid=tid, **args)  # reprolint: disable-line=TRACE01

    def _tend(self, span, **args) -> None:
        if span is not None:
            self.tracer.end(span, **args)

    def _tinstant(self, name: str, tid: Optional[int] = None, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, tid=tid, **args)  # reprolint: disable-line=TRACE01

    # ------------------------------------------------------------------ helpers
    def locate(self, page: int) -> Tuple[int, DiskAddress]:
        """Home disk and address of logical ``page`` under the placement."""
        return self.placement.locate(page)

    def runtime(self, txn: Transaction) -> _TxnRuntime:
        """The per-attempt runtime record for ``txn``."""
        return self._runtimes[txn.tid]

    def note_page_written(
        self, txn: Transaction, n: int = 1, page: Optional[int] = None
    ) -> None:
        """Record that ``n`` updated pages of ``txn`` reached the disk.

        Architectures that install versions (shadow paging) pass ``page``
        so the install monitor learns the version became durable.
        """
        self.pages_written.increment(n)
        txn.last_durable_write = self.env.now
        if page is not None and self.shadow_monitor is not None:
            self.shadow_monitor.note_version_durable((txn.tid, page))
        self._trace("write_durable", tid=txn.tid, pages=n)
        self._tinstant("page.durable", tid=txn.tid, pages=n)
        self.fault_hook("machine.writeback")

    def wait_writebacks(self, txn: Transaction):
        """Generator: wait for every outstanding write-back of ``txn``."""
        runtime = self.runtime(txn)
        if runtime.writebacks:
            yield self.env.all_of(runtime.writebacks)

    def spawn_writeback(self, txn: Transaction, page: int, parent=None) -> Process:
        """Start the architecture's durability path for an updated page."""
        if self.shadow_monitor is not None:
            self.shadow_monitor.note_version_written(page, (txn.tid, page))
        proc = self.env.process(
            self._traced_writeback(txn, page, parent), name=f"wb.t{txn.tid}.p{page}"
        )
        self.runtime(txn).writebacks.append(proc)
        return proc

    def _traced_writeback(self, txn: Transaction, page: int, parent=None):
        span = self._tspan("writeback", parent=parent, tid=txn.tid, page=page)
        try:
            yield from self.arch.writeback(txn, page)
        finally:
            self._tend(span)

    def read_batched(self, disk_idx: int, addresses: Sequence[DiskAddress], tag: str):
        """Generator: read ``addresses``, split per cylinder for parallel
        drives (their requests must be single-cylinder)."""
        yield from self._io_batched(disk_idx, "read", addresses, tag)

    def write_batched(self, disk_idx: int, addresses: Sequence[DiskAddress], tag: str):
        """Generator: write ``addresses``, split per cylinder when needed."""
        yield from self._io_batched(disk_idx, "write", addresses, tag)

    def _io_batched(self, disk_idx, kind, addresses, tag):
        disk = self.data_disks[disk_idx]
        if disk.parallel_access:
            groups = split_by_cylinder(addresses)
        else:
            groups = [list(addresses)]
        requests = [disk.submit(kind, group, tag) for group in groups]
        yield self.env.all_of([r.done for r in requests])

    # ------------------------------------------------------------------ faults
    def trigger_crash(self, reason: str) -> None:
        """A whole-machine crash: the run loop stops at the current instant.

        Volatile state (cache contents, unforced log pages, monitor
        bookkeeping) is gone; what survives is whatever already reached
        the disks — exactly the state a recovery pass starts from.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_reason = reason
        if self.wal_monitor is not None:
            self.wal_monitor.reset()
        if self.shadow_monitor is not None:
            self.shadow_monitor.reset()
        self._trace("machine_crash", reason=reason)
        self._tinstant("machine.crash", reason=reason)
        if not self._crash_event.triggered:
            self._crash_event.succeed(reason)

    def fault_hook(self, name: str) -> None:
        """A simulation-layer fault point: crash here if the plan says so."""
        self._tinstant("fault.point", hook=name)
        if self.faults is not None and not self.crashed and self.faults.poll(name):
            self.trigger_crash(name)

    # ------------------------------------------------------------------ failover
    def fail_query_processor(self, index: int) -> None:
        """Query processor ``index`` dies permanently (fail-stop).

        The pool stops dispatching to it at once (the hardware is gone);
        the *failover* — aborting whatever transaction was caught on it —
        runs immediately when no health monitor is attached, or at the
        monitor's detection instant when one is (bounding the window in
        which the victim's pipeline keeps waiting on a dead processor).
        """
        self.qps.fail(index)
        self.qp_failures.increment()
        self._trace("qp_fail", index=index)
        self._tinstant("component.fail", kind="qp", index=index)
        if self.health is None:
            self.failover_query_processor(index)

    def failover_query_processor(self, index: int) -> None:
        """Abort, via the normal undo path, the transaction running on a
        dead query processor; surviving processors absorb its restart."""
        self.fault_hook("machine.failover.qp")
        holder = self._qp_holders.get(index)
        if holder is None:
            return
        txn, runtime = holder
        if not runtime.aborted:
            runtime.aborted = True
            runtime.abort_cause = ProcessorFailure(txn.tid, index)
            self._tinstant("failover.qp", tid=txn.tid, index=index)

    def repair_query_processor(self, index: int) -> None:
        """A repaired or replacement processor rejoins the pool."""
        self.qps.repair(index)
        self._trace("qp_repair", index=index)

    def fail_data_disk(self, index: int) -> None:
        """Permanent media failure of data disk ``index``.

        On a mirrored machine this kills one physical side and the mirror
        keeps serving off its twin; on an unmirrored machine every later
        request errors out — only an archive restore helps (the functional
        layer's ``recover_from_media_failure``).
        """
        self._trace("disk_fail", index=index)
        self._tinstant("component.fail", kind="disk", index=index)
        self.data_disks[index].fail()

    def attach_disk_replacement(self, index: int) -> None:
        """A replacement drive arrives for mirrored disk ``index``; the
        background rebuild starts at the configured I/O share."""
        disk = self.data_disks[index]
        attach = getattr(disk, "attach_replacement", None)
        if attach is None:
            raise ValueError(
                f"data disk {index} is not mirrored; nothing to rebuild "
                "a replacement from"
            )
        self.fault_hook("machine.rebuild.start")
        attach()

    # ------------------------------------------------------------------ running
    def run(self, transactions: Sequence[Transaction]) -> RunResult:
        """Execute the load to completion and collect the paper's metrics.

        With a fault injector armed the run also ends at an injected
        whole-machine crash; the result then carries ``crashed_at`` in its
        ``extras`` and reflects only the work finished before the crash.
        """
        if not transactions:
            raise ValueError("empty transaction load")
        done = self.env.process(self._driver(transactions), name="driver")
        if self.faults is not None:
            self.env.run(until=self.env.any_of([done, self._crash_event]))
        else:
            self.env.run(until=done)
        return self._collect(transactions)

    def run_open(
        self,
        transactions: Sequence[Transaction],
        arrival_times_ms: Sequence[float],
        spike_times_ms: Sequence[float] = (),
    ) -> RunResult:
        """Open-system run: one client per transaction, arriving on schedule.

        Each offered transaction arrives at its scheduled instant and runs
        the admission protocol (:mod:`repro.machine.admission`): it ends
        **admitted** (and then always executes to commit), **rejected**,
        or **shed**.  Admitted transactions wait in the bounded admission
        queue for a multiprogramming slot; backpressure turns arrivals
        away while the lock table or cache is saturated.  The accounting
        counters land in ``RunResult.counters`` (``admission_*``).

        ``spike_times_ms`` marks scripted load-spike starts with
        ``arrival.spike`` trace instants (schedule generation itself lives
        in :mod:`repro.loadgen`).
        """
        if not transactions:
            raise ValueError("empty transaction load")
        if len(arrival_times_ms) != len(transactions):
            raise ValueError(
                f"{len(transactions)} transactions but "
                f"{len(arrival_times_ms)} arrival times"
            )
        self.admission = AdmissionQueue(self)
        done = self.env.process(
            self._open_driver(transactions, arrival_times_ms, spike_times_ms),
            name="open-driver",
        )
        if self.faults is not None:
            self.env.run(until=self.env.any_of([done, self._crash_event]))
        else:
            self.env.run(until=done)
        return self._collect(transactions)

    def _open_driver(self, transactions, arrival_times_ms, spike_times_ms):
        mpl = Resource(self.env, capacity=self.config.mpl)
        if self.tracer is not None:
            for at in spike_times_ms:
                self.env.process(self._spike_marker(at), name="spike")
        clients = [
            self.env.process(
                self._open_client(txn, at, mpl), name=f"client{txn.tid}"
            )
            for txn, at in zip(transactions, arrival_times_ms)
        ]
        yield self.env.all_of(clients)

    def _spike_marker(self, at_ms: float):
        yield self.env.timeout(max(0.0, at_ms - self.env.now))
        self._tinstant("arrival.spike", at=at_ms)

    def _open_client(self, txn: Transaction, arrival_ms: float, mpl: Resource):
        """One open-system client: arrive, seek admission, execute."""
        if arrival_ms > self.env.now:
            yield self.env.timeout(arrival_ms - self.env.now)
        disposition = yield from self.admission.admit(txn, arrival_ms)
        if disposition is not ADMITTED:
            return
        grant = mpl.request()
        yield grant
        # The multiprogramming slot is granted: the transaction leaves the
        # admission queue, freeing a slot for the next arrival.
        self.admission.start()
        yield from self._run_transaction(txn, mpl, grant)
        self.admission.note_completion()

    def _driver(self, transactions: Sequence[Transaction]):
        mpl = Resource(self.env, capacity=self.config.mpl)
        running = []
        for txn in transactions:
            grant = mpl.request()
            yield grant
            proc = self.env.process(
                self._run_transaction(txn, mpl, grant), name=f"txn{txn.tid}"
            )
            running.append(proc)
        if running:
            yield self.env.all_of(running)

    def _run_transaction(self, txn: Transaction, mpl: Resource, grant) -> None:
        try:
            while True:
                self._runtimes[txn.tid] = _TxnRuntime()
                completed = yield from self._attempt(txn)
                if completed:
                    break
                txn.restarts += 1
                self._restarts += 1
                backoff = self._tspan("restart.wait", tid=txn.tid, restarts=txn.restarts)
                yield self.env.timeout(RESTART_BACKOFF_MS * txn.restarts)
                self._tend(backoff)
        finally:
            mpl.release(grant)

    def _attempt(self, txn: Transaction):
        """One execution attempt; returns True on commit, False on abort."""
        env = self.env
        runtime = self.runtime(txn)
        txn.status = TransactionStatus.ACTIVE
        self._trace("txn_begin", tid=txn.tid, attempt=txn.restarts + 1)
        tspan = self._tspan("txn", tid=txn.tid, attempt=txn.restarts + 1)
        yield from self.arch.on_begin(txn)

        window = Container(
            env, capacity=self.config.prefetch_window, init=self.config.prefetch_window
        )
        pipelines: List[Process] = []
        for item in self.arch.read_sequence(txn):
            yield window.get(1)
            if runtime.aborted:
                window.put(1)
                break
            pipelines.append(
                env.process(
                    self._item_pipeline(txn, runtime, item, window, tspan),
                    name=f"pipe.t{txn.tid}",
                )
            )
        if pipelines:
            yield env.all_of(pipelines)

        if runtime.aborted:
            # The architecture's abort hook runs first: it must unblock any
            # write-backs gated on recovery data (e.g. force the log pages
            # holding this transaction's fragments).
            aspan = self._tspan("abort", parent=tspan)
            yield from self.arch.on_abort(txn)
            yield from self.wait_writebacks(txn)
            self._tend(aspan)
            self.locks.release_all(txn.tid)
            txn.status = TransactionStatus.ABORTED
            self._trace("txn_abort", tid=txn.tid)
            self._tend(tspan, status="aborted")
            txn.reset_runtime()
            return False

        self.fault_hook("machine.commit")
        cspan = self._tspan("commit", parent=tspan)
        yield from self.arch.on_commit(txn)
        self._tend(cspan)
        self.locks.release_all(txn.tid)
        txn.status = TransactionStatus.COMMITTED
        self._trace("txn_commit", tid=txn.tid)
        if txn.write_pages and txn.last_durable_write is not None:
            txn.finish_time = txn.last_durable_write
        else:
            txn.finish_time = env.now
        if txn.start_time is not None:
            self.completions.add(txn.finish_time - txn.start_time)
            self._tend(
                tspan,
                status="committed",
                window_start=txn.start_time,
                window_end=txn.finish_time,
            )
        else:
            self._tend(tspan, status="committed")
        return True

    # ------------------------------------------------------------------ pipelines
    def _item_pipeline(self, txn, runtime, item: WorkItem, window: Container, tspan=None):
        try:
            if isinstance(item, DataPage):
                yield from self._data_page_pipeline(txn, runtime, item.page, tspan)
            elif isinstance(item, AuxRead):
                yield from self._aux_read_pipeline(txn, runtime, item, tspan)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown work item {item!r}")
        finally:
            window.put(1)

    def _data_page_pipeline(self, txn, runtime, page: int, tspan=None):
        env = self.env
        is_update = page in txn.write_pages
        mode = LockMode.X if is_update else LockMode.S
        lspan = self._tspan("lock.wait", parent=tspan, tid=txn.tid, page=page)
        try:
            yield self.locks.acquire(txn.tid, page, mode)
        except DeadlockAbort as abort:
            self._tend(lspan, outcome="deadlock")
            runtime.aborted = True
            runtime.abort_cause = abort
            return
        self._tend(lspan, outcome="granted")
        if runtime.aborted:
            return
        ispan = self._tspan("indirection", parent=tspan, tid=txn.tid, page=page)
        yield from self.arch.before_page_read(txn, page)
        self._tend(ispan)
        if runtime.aborted:
            return
        fspan = self._tspan("cache.wait", parent=tspan, tid=txn.tid, frames=1)
        yield self.cache.acquire(1)
        self._tend(fspan)
        if not runtime.started:
            runtime.started = True
            txn.start_time = env.now
        disk_idx, addresses = self.arch.read_addresses(txn, page)
        rspan = self._tspan("io.data.read", parent=tspan, tid=txn.tid, page=page)
        request = self.data_disks[disk_idx].read(addresses, tag="data")
        yield request.done
        self._tend(rspan)
        self.pages_read.increment()
        self._trace("page_read", tid=txn.tid, page=page)
        self.fault_hook("machine.page-read")
        if runtime.aborted:
            self.cache.release(1)
            return
        qspan = self._tspan("qp.wait", parent=tspan, tid=txn.tid)
        qp_index, grant = yield from self.qps.acquire()
        self._tend(qspan)
        xspan = self._tspan(
            "qp.exec", parent=tspan, tid=txn.tid, page=page, update=is_update
        )
        self._qp_holders[qp_index] = (txn, runtime)
        try:
            yield env.timeout(self.arch.page_cpu_ms(txn, page, is_update))
            if is_update and not runtime.aborted:
                yield from self.arch.on_page_updated(txn, page, qp_index)
        finally:
            self._qp_holders.pop(qp_index, None)
            self.qps.release(qp_index, grant)
            self._tend(xspan)
        if is_update and not runtime.aborted:
            self.spawn_writeback(txn, page, parent=tspan)
        else:
            self.cache.release(1)

    def _aux_read_pipeline(self, txn, runtime, item: AuxRead, tspan=None):
        n_frames = len(item.addresses)
        fspan = self._tspan("cache.wait", parent=tspan, tid=txn.tid, frames=n_frames)
        yield self.cache.acquire(n_frames)
        self._tend(fspan)
        if not runtime.started:
            runtime.started = True
            txn.start_time = self.env.now
        rspan = self._tspan(
            "io.aux.read", parent=tspan, tid=txn.tid, tag=item.tag, pages=n_frames
        )
        yield from self.read_batched(item.disk_idx, item.addresses, item.tag)
        self._tend(rspan)
        if item.cpu_ms > 0 and not runtime.aborted:
            xspan = self._tspan("qp.exec", parent=tspan, tid=txn.tid, cpu_ms=item.cpu_ms)
            yield from self.qps.execute_ms(item.cpu_ms)
            self._tend(xspan)
        self.cache.release(n_frames)

    def _trace(self, category: str, **fields) -> None:
        if self.timeline is not None:
            self.timeline.record(self.env.now, category, **fields)

    # ------------------------------------------------------------------ results
    def _collect(self, transactions: Sequence[Transaction]) -> RunResult:
        t_end = self.env.now
        pages_processed = sum(t.pages_processed for t in transactions)
        utilizations = {"qp": self.qps.utilization(t_end)}
        counters = {
            "data_disk_accesses": 0,
            "data_pages_read": self.pages_read.count,
            "data_pages_written": self.pages_written.count,
            "lock_blocks": self.locks.blocks.count,
            "lock_deadlocks": self.locks.deadlocks.count,
        }
        for disk in self.data_disks:
            utilizations[disk.name] = disk.utilization(t_end)
            counters["data_disk_accesses"] += disk.accesses.count
            mirror_counters = getattr(disk, "extra_counters", None)
            if mirror_counters is not None:
                for key, value in mirror_counters().items():
                    counters[key] = counters.get(key, 0) + value
        if self.qp_failures.count:
            counters["qp_failures"] = self.qp_failures.count
        if self.scrubber is not None:
            counters.update(self.scrubber.extra_counters())
        if self.data_disks:
            utilizations["data_disks"] = sum(
                d.utilization(t_end) for d in self.data_disks
            ) / len(self.data_disks)
        averages = {
            "blocked_pages": self.cache.mean_blocked(t_end),
            "free_frames": self.cache.mean_free(t_end),
        }
        utilizations.update(self.arch.extra_utilizations(t_end))
        counters.update(self.arch.extra_counters())
        averages.update(self.arch.extra_averages(t_end))
        if self.admission is not None:
            self.admission.backpressure.finish()
            counters.update(self.admission.counters())
        extras: Dict[str, float] = {}
        if self.admission is not None:
            extras["backpressure_ms"] = self.admission.backpressure.asserted_ms
        if self.crashed:
            extras["crashed_at"] = t_end
        percentiles = {
            f"p{q:g}": self.completions.percentile(q) for q in (50.0, 95.0, 99.0)
        }
        return RunResult(
            architecture=self.arch.describe(),
            makespan_ms=t_end,
            pages_processed=pages_processed,
            mean_completion_ms=self.completions.mean,
            max_completion_ms=self.completions.max,
            n_transactions=len(transactions),
            n_restarts=self._restarts,
            utilizations=utilizations,
            counters=counters,
            averages=averages,
            extras=extras,
            completion_percentiles=percentiles,
        )
