"""Overload protection: bounded admission, token buckets, backpressure.

The paper drives its machine with a closed batch, so the back-end
controller never has to say *no*.  An open system must: when offered
load exceeds capacity, the admitted work must stay bounded or the lock
table and cache thrash and goodput collapses.  This module is the
machine-layer half of the open-system story (the arrival processes live
in :mod:`repro.loadgen`):

* :class:`AdmissionQueue` — a bounded queue in front of the machine with
  three policies (``drop``, ``block``-with-timeout, ``token-bucket``),
  client-side retry with capped exponential backoff, and deadline-based
  shedding.  Every offered transaction ends in exactly one disposition:
  **admitted**, **rejected** (turned away, retries exhausted), or
  **shed** (client deadline expired first) — the accounting oracle
  ``admitted + rejected + shed = offered`` is checked by the loadtest.
* :class:`BackpressureMonitor` — watches the lock table and buffer cache
  against high/low watermarks; while asserted, arrivals are turned away
  at the door regardless of queue room.

Everything here is deterministic — backoffs are computed, never drawn —
so an open-system run is exactly reproducible from its arrival schedule.
Closed-batch ``DatabaseMachine.run()`` never constructs these objects,
keeping pre-existing traces byte-identical.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.sim.core import Event
from repro.sim.monitor import CounterStat

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.machine.machine import DatabaseMachine
    from repro.workload.transaction import Transaction

__all__ = ["AdmissionQueue", "BackpressureMonitor"]

#: Final dispositions of an offered transaction.
ADMITTED = "admitted"
REJECTED = "rejected"
SHED = "shed"


class BackpressureMonitor:
    """Hysteresis watermark monitor over the lock table and cache.

    ``update()`` is called at every admission attempt and every
    transaction completion; it flips :attr:`active` when the cache
    occupancy or the count of blocked lock requests crosses the high
    watermark, and releases only when *both* signals drain below their
    low watermarks (classic hysteresis, so the signal does not flap).
    """

    def __init__(self, machine: "DatabaseMachine"):
        self.machine = machine
        config = machine.config
        self._cache_high = config.backpressure_cache_high
        self._cache_low = config.backpressure_cache_low
        self._lock_high = config.backpressure_lock_high
        self._lock_low = config.backpressure_lock_low
        self.active = False
        self.transitions = CounterStat("backpressure.transitions")
        #: Total simulated time spent with backpressure asserted.
        self.asserted_ms = 0.0
        self._asserted_at: Optional[float] = None

    def _cache_fraction(self) -> float:
        cache = self.machine.cache
        return cache.in_use / cache.capacity

    def update(self) -> bool:
        """Re-evaluate the signals; returns the (possibly new) state."""
        machine = self.machine
        waiting = machine.locks.waiting_requests
        cache_frac = self._cache_fraction()
        if not self.active:
            if cache_frac >= self._cache_high or waiting >= self._lock_high:
                self.active = True
                self.transitions.increment()
                self._asserted_at = machine.env.now
                machine._tinstant(
                    "backpressure.on",
                    cache_fraction=round(cache_frac, 4),
                    lock_waiters=waiting,
                )
                machine.fault_hook("machine.backpressure.on")
        else:
            if cache_frac <= self._cache_low and waiting <= self._lock_low:
                self.active = False
                self.transitions.increment()
                if self._asserted_at is not None:
                    self.asserted_ms += machine.env.now - self._asserted_at
                    self._asserted_at = None
                machine._tinstant(
                    "backpressure.off",
                    cache_fraction=round(cache_frac, 4),
                    lock_waiters=waiting,
                )
                machine.fault_hook("machine.backpressure.off")
        return self.active

    def finish(self) -> None:
        """Close an open assertion window at the end of the run."""
        if self._asserted_at is not None:
            self.asserted_ms += self.machine.env.now - self._asserted_at
            self._asserted_at = None


class _SlotQueue:
    """Bounded admission slots with cancellable FIFO waiters.

    ``Container`` cannot back this: its getter queue is strictly FIFO and
    an abandoned (timed-out) getter at the head would wedge everyone
    behind it.  Here a timed-out waiter is cancelled and skipped.
    """

    def __init__(self, env, capacity: int):
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def depth(self) -> int:
        return self.in_use

    def try_acquire(self) -> bool:
        if self.in_use < self.capacity:
            self.in_use += 1
            return True
        return False

    def wait(self) -> Event:
        """An event granted (FIFO) when a slot frees up."""
        evt = self.env.event()
        self._waiters.append(evt)
        return evt

    def cancel(self, evt: Event) -> None:
        try:
            self._waiters.remove(evt)
        except ValueError:
            pass

    def release(self) -> None:
        while self._waiters:
            nxt = self._waiters.popleft()
            if nxt.triggered:
                continue
            # The slot passes directly to the waiter; occupancy unchanged.
            nxt.succeed()
            return
        self.in_use -= 1


class AdmissionQueue:
    """The bounded admission queue in front of the multiprogramming level.

    One instance serves one open-system run (:meth:`DatabaseMachine.run_open`).
    ``admit(txn, arrival_ms)`` is a simulation generator driving the whole
    client-side protocol — policy check, retries with capped exponential
    backoff, deadline shedding — and returns the final disposition.
    """

    def __init__(self, machine: "DatabaseMachine"):
        self.machine = machine
        config = machine.config
        self.policy = config.admission_policy
        self.queue = _SlotQueue(machine.env, config.admission_queue_limit)
        self.backpressure = BackpressureMonitor(machine)
        self.offered = CounterStat("admission.offered")
        self.admitted = CounterStat("admission.admitted")
        self.rejected = CounterStat("admission.rejected")
        self.shed = CounterStat("admission.shed")
        self.retries = CounterStat("admission.retries")
        #: Token bucket state (lazily refilled; exact, no process needed).
        self._tokens = float(config.admission_token_burst)
        self._tokens_at = machine.env.now

    # ------------------------------------------------------------------ tokens
    def _refill_tokens(self) -> None:
        config = self.machine.config
        now = self.machine.env.now
        if config.admission_tokens_per_s > 0:
            self._tokens = min(
                float(config.admission_token_burst),
                self._tokens
                + config.admission_tokens_per_s * (now - self._tokens_at) / 1000.0,
            )
        self._tokens_at = now

    def _take_token(self) -> bool:
        self._refill_tokens()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    # ------------------------------------------------------------------ protocol
    def _deadline_of(self, arrival_ms: float) -> Optional[float]:
        deadline = self.machine.config.admission_deadline_ms
        return arrival_ms + deadline if deadline > 0 else None

    def _backoff_ms(self, attempt: int) -> float:
        """Capped exponential client backoff after the ``attempt``-th try."""
        config = self.machine.config
        return min(
            config.admission_retry_cap_ms,
            config.admission_retry_base_ms * (2.0 ** (attempt - 1)),
        )

    def _try_once(self, txn: "Transaction"):
        """Generator: one admission attempt; returns True when a slot is held."""
        machine = self.machine
        if self.backpressure.update():
            return False
        if self.policy == "token-bucket" and not self._take_token():
            return False
        if self.queue.try_acquire():
            return True
        if self.policy != "block":
            return False
        timeout_ms = machine.config.admission_block_timeout_ms
        if timeout_ms <= 0:
            return False
        waiter = self.queue.wait()
        timeout = machine.env.timeout(timeout_ms)
        yield machine.env.any_of([waiter, timeout])
        if waiter.triggered:
            return True
        self.queue.cancel(waiter)
        return False

    def admit(self, txn: "Transaction", arrival_ms: float):
        """Generator: run the client protocol; returns the disposition.

        On ``ADMITTED`` the caller holds one queue slot and must call
        :meth:`start` when the transaction begins executing (freeing the
        slot for the next arrival) — or :meth:`queue.release` directly.
        """
        machine = self.machine
        self.offered.increment()
        deadline = self._deadline_of(arrival_ms)
        max_attempts = machine.config.admission_retry_max_attempts
        attempt = 0
        while True:
            if deadline is not None and machine.env.now >= deadline:
                self.shed.increment()
                machine._tinstant("admission.shed", tid=txn.tid, attempts=attempt)
                machine.fault_hook("machine.admission.shed")
                return SHED
            attempt += 1
            got = yield from self._try_once(txn)
            if got:
                self.admitted.increment()
                machine._tinstant(
                    "admission.enqueue",
                    tid=txn.tid,
                    attempts=attempt,
                    depth=self.queue.depth,
                )
                machine.fault_hook("machine.admission.enqueue")
                return ADMITTED
            if attempt >= max_attempts:
                self.rejected.increment()
                machine._tinstant("admission.reject", tid=txn.tid, attempts=attempt)
                machine.fault_hook("machine.admission.reject")
                return REJECTED
            self.retries.increment()
            backoff = self._backoff_ms(attempt)
            if deadline is not None:
                backoff = min(backoff, max(0.0, deadline - machine.env.now))
            if backoff > 0:
                yield machine.env.timeout(backoff)

    def start(self) -> None:
        """An admitted transaction left the queue for a processor slot."""
        self.queue.release()

    def note_completion(self) -> None:
        """A transaction finished; pressure may have drained."""
        self.backpressure.update()

    # ------------------------------------------------------------------ results
    def counters(self) -> Dict[str, int]:
        """The accounting counters, folded into ``RunResult.counters``."""
        return {
            "admission_offered": self.offered.count,
            "admission_admitted": self.admitted.count,
            "admission_rejected": self.rejected.count,
            "admission_shed": self.shed.count,
            "admission_retries": self.retries.count,
            "backpressure_transitions": self.backpressure.transitions.count,
        }

    @property
    def accounted(self) -> bool:
        """The conservation oracle: every offered txn has one disposition."""
        return (
            self.offered.count
            == self.admitted.count + self.rejected.count + self.shed.count
        )
