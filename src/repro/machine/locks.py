"""Page-level two-phase locking with wait-for-graph deadlock detection.

The paper assumes "a scheduler, located in the back-end controller, which
employs page-level locking" (Section 3).  We implement strict 2PL: shared /
exclusive page locks held to end of transaction, FIFO grant order, and
deadlock detection by cycle search on the wait-for graph at every blocking
request — the requester is the victim (its grant event fails with
:class:`DeadlockAbort`).

Because the machine pipelines page reads, one transaction may have several
outstanding lock requests at once; wait-for edges are therefore kept per
(transaction, page) and dissolve as each individual request is granted.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from repro.sim.core import Environment, Event
from repro.sim.monitor import CounterStat

__all__ = ["DeadlockAbort", "LockManager", "LockMode"]


class LockMode(enum.IntEnum):
    """Lock modes, ordered by strength."""

    S = 1
    X = 2


class DeadlockAbort(Exception):
    """Raised into a transaction chosen as deadlock victim."""

    def __init__(self, tid: int, cycle: Tuple[int, ...]):
        super().__init__(f"transaction {tid} aborted; wait-for cycle {cycle}")
        self.tid = tid
        self.cycle = cycle


class _LockEntry:
    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        self.holders: Dict[int, LockMode] = {}
        self.queue: Deque[Tuple[int, LockMode, Event]] = deque()


class LockManager:
    """Lock table plus wait-for graph for one database machine."""

    def __init__(self, env: Environment):
        self.env = env
        self._table: Dict[int, _LockEntry] = {}
        #: (tid, page) -> tids this request waits for.
        self._edges: Dict[Tuple[int, int], Set[int]] = {}
        self.grants = CounterStat("lock.grants")
        self.blocks = CounterStat("lock.blocks")
        self.deadlocks = CounterStat("lock.deadlocks")

    # -- public API -----------------------------------------------------------
    @property
    def waiting_requests(self) -> int:
        """Lock requests currently blocked (the backpressure signal)."""
        return len(self._edges)

    def acquire(self, tid: int, page: int, mode: LockMode) -> Event:
        """Request a lock; the event fires on grant, fails on deadlock."""
        event = self.env.event()
        entry = self._table.setdefault(page, _LockEntry())

        held = entry.holders.get(tid)
        if held is not None:
            if held >= mode:
                self.grants.increment()
                return event.succeed()
            if len(entry.holders) == 1:
                # Sole holder upgrading S -> X.
                entry.holders[tid] = mode
                self.grants.increment()
                return event.succeed()
            # Upgrade while others hold S: wait at the head of the queue.
            blockers = set(entry.holders) - {tid}
            return self._block(tid, page, mode, event, blockers, front=True)

        if not entry.queue and self._compatible(entry, mode):
            entry.holders[tid] = mode
            self.grants.increment()
            return event.succeed()

        blockers = set(entry.holders) | {t for t, _, _ in entry.queue}
        blockers.discard(tid)
        return self._block(tid, page, mode, event, blockers, front=False)

    def release_all(self, tid: int) -> None:
        """Drop every lock and queued request of ``tid`` (end of transaction)."""
        for key in [k for k in self._edges if k[0] == tid]:
            del self._edges[key]
        for page in list(self._table):
            entry = self._table[page]
            entry.holders.pop(tid, None)
            if entry.queue:
                entry.queue = deque(
                    (t, m, e) for t, m, e in entry.queue if t != tid
                )
            self._grant_waiters(page, entry)
            if not entry.holders and not entry.queue:
                del self._table[page]

    def holds(self, tid: int, page: int, mode: LockMode = LockMode.S) -> bool:
        entry = self._table.get(page)
        if entry is None:
            return False
        held = entry.holders.get(tid)
        return held is not None and held >= mode

    @property
    def active_waiters(self) -> int:
        return len(self._edges)

    # -- internals --------------------------------------------------------------
    @staticmethod
    def _compatible(entry: _LockEntry, mode: LockMode) -> bool:
        if not entry.holders:
            return True
        return mode is LockMode.S and all(
            m is LockMode.S for m in entry.holders.values()
        )

    def _block(
        self,
        tid: int,
        page: int,
        mode: LockMode,
        event: Event,
        blockers: Set[int],
        front: bool,
    ) -> Event:
        self.blocks.increment()
        self._edges[(tid, page)] = blockers
        cycle = self._find_cycle(tid)
        if cycle is not None:
            self.deadlocks.increment()
            del self._edges[(tid, page)]
            event.fail(DeadlockAbort(tid, cycle))
            return event
        entry = self._table[page]
        if front:
            entry.queue.appendleft((tid, mode, event))
        else:
            entry.queue.append((tid, mode, event))
        return event

    def _grant_waiters(self, page: int, entry: _LockEntry) -> None:
        while entry.queue:
            tid, mode, event = entry.queue[0]
            held = entry.holders.get(tid)
            if held is not None and len(entry.holders) == 1:
                entry.holders[tid] = max(held, mode)  # pending upgrade
            elif held is None and self._compatible(entry, mode):
                entry.holders[tid] = mode
            else:
                break
            entry.queue.popleft()
            self._edges.pop((tid, page), None)
            self.grants.increment()
            event.succeed()

    def _waits_of(self, tid: int) -> Set[int]:
        out: Set[int] = set()
        for (t, _page), blockers in self._edges.items():
            if t == tid:
                out |= blockers
        return out

    def _find_cycle(self, start: int) -> Optional[Tuple[int, ...]]:
        """DFS from ``start`` through the wait-for graph; a path back to
        ``start`` is a deadlock cycle."""
        visited: Set[int] = set()
        path: list = []

        def dfs(node: int) -> Optional[Tuple[int, ...]]:
            for nxt in self._waits_of(node):
                if nxt == start:
                    return tuple(path + [node, start])
                if nxt not in visited:
                    visited.add(nxt)
                    path.append(node)
                    found = dfs(nxt)
                    path.pop()
                    if found:
                        return found
            return None

        return dfs(start)
