"""The result object produced by one simulated run.

The two paper metrics (Section 4):

* ``execution_time_per_page`` — machine time to execute the whole load
  divided by the total number of pages processed (pages read + pages
  written by the logical workload).  Throughput measure; lower is better.
* ``mean_completion_time`` — average over transactions of (first cache
  frame allocated -> last updated page written to disk).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Everything measured in one run of the database machine."""

    architecture: str
    makespan_ms: float
    pages_processed: int
    mean_completion_ms: float
    max_completion_ms: float = 0.0
    n_transactions: int = 0
    n_restarts: int = 0
    #: Name -> busy fraction over the run (data disks, log disks, QPs, ...).
    utilizations: Dict[str, float] = field(default_factory=dict)
    #: Name -> event count (disk accesses, pages read, log pages, ...).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Name -> time-averaged level (blocked pages, free frames, ...).
    averages: Dict[str, float] = field(default_factory=dict)
    #: Architecture-specific extras.
    extras: Dict[str, float] = field(default_factory=dict)
    #: Exact completion-time percentiles (``p50``/``p95``/``p99``), from
    #: the same sample set as ``mean_completion_ms``.
    completion_percentiles: Dict[str, float] = field(default_factory=dict)

    @property
    def execution_time_per_page(self) -> float:
        """The paper's throughput metric, in ms per page."""
        if self.pages_processed == 0:
            return 0.0
        return self.makespan_ms / self.pages_processed

    def utilization(self, name: str) -> float:
        return self.utilizations.get(name, 0.0)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    #: Resilience and overload counters surfaced uniformly by ``summary()``
    #: whenever the run recorded them: component failures and log-ship
    #: retries on one side, admission dispositions on the other.
    RESILIENCE_COUNTERS = (
        "qp_failures",
        "log_ship_retries",
        "log_fragments_reshipped",
        "log_fragments_orphaned",
        "mirror_fallback_reads",
        "mirror_rebuilt_pages",
        "mirror_lost_requests",
    )
    OVERLOAD_COUNTERS = (
        "admission_offered",
        "admission_admitted",
        "admission_rejected",
        "admission_shed",
        "admission_retries",
        "backpressure_transitions",
    )

    def summary(self) -> str:
        """A one-paragraph human-readable digest."""
        lines = [
            f"architecture          : {self.architecture}",
            f"makespan              : {self.makespan_ms:.1f} ms",
            f"pages processed       : {self.pages_processed}",
            f"execution time / page : {self.execution_time_per_page:.2f} ms",
            f"mean completion time  : {self.mean_completion_ms:.1f} ms",
            f"transactions          : {self.n_transactions}"
            + (f" ({self.n_restarts} restarts)" if self.n_restarts else ""),
        ]
        if self.completion_percentiles:
            lines.append(
                "completion percentiles: "
                + "  ".join(
                    f"{name}={self.completion_percentiles[name]:.1f} ms"
                    for name in sorted(self.completion_percentiles)
                )
            )
        for name in sorted(self.utilizations):
            lines.append(f"util[{name}] : {self.utilizations[name]:.2f}")
        resilience = [n for n in self.RESILIENCE_COUNTERS if n in self.counters]
        if resilience:
            lines.append(
                "resilience            : "
                + "  ".join(f"{n}={self.counters[n]}" for n in resilience)
            )
        overload = [n for n in self.OVERLOAD_COUNTERS if n in self.counters]
        if overload:
            lines.append(
                "overload              : "
                + "  ".join(f"{n}={self.counters[n]}" for n in overload)
            )
        return "\n".join(lines)
