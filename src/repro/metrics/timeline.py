"""Run timelines: optional event-level instrumentation of a machine run.

Attach a :class:`Timeline` to a :class:`~repro.machine.DatabaseMachine`
and every transaction lifecycle step and page movement is recorded with
its simulation timestamp — the raw material for debugging a model,
plotting a Gantt chart of a run, or computing custom statistics the
built-in collectors don't cover.

    timeline = Timeline()
    machine = DatabaseMachine(config, arch, timeline=timeline)
    machine.run(transactions)
    print(timeline.summary())
    timeline.to_csv("run.csv")
"""

from __future__ import annotations

import csv
import io
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Timeline", "TimelineEvent"]


@dataclass(frozen=True)
class TimelineEvent:
    """One instant in a run: a timestamp, a category, and free-form fields."""

    time: float
    category: str
    fields: Dict = field(default_factory=dict, compare=False)

    def __getitem__(self, key):
        return self.fields[key]


class Timeline:
    """An append-only, time-ordered event log."""

    def __init__(self) -> None:
        self._events: List[TimelineEvent] = []

    def record(self, time: float, category: str, **fields) -> None:
        if self._events and time < self._events[-1].time:
            raise ValueError(
                f"event at {time} precedes last event at {self._events[-1].time}"
            )
        self._events.append(TimelineEvent(time, category, fields))

    # -- queries ---------------------------------------------------------------
    def events(self, category: Optional[str] = None) -> List[TimelineEvent]:
        if category is None:
            return list(self._events)
        return [event for event in self._events if event.category == category]

    def between(self, t0: float, t1: float) -> Iterator[TimelineEvent]:
        """Events with t0 <= time < t1."""
        for event in self._events:
            if t0 <= event.time < t1:
                yield event

    def counts(self) -> Dict[str, int]:
        return dict(Counter(event.category for event in self._events))

    def span(self) -> float:
        if not self._events:
            return 0.0
        return self._events[-1].time - self._events[0].time

    def rate_per_second(self, category: str) -> float:
        """Events of ``category`` per simulated second."""
        span_ms = self.span()
        if span_ms <= 0:
            return 0.0
        return len(self.events(category)) / (span_ms / 1000.0)

    def __len__(self) -> int:
        return len(self._events)

    # -- export --------------------------------------------------------------------
    def to_csv(self, destination=None) -> Optional[str]:
        """Write ``time,category,key=value;...`` rows; returns the text when
        ``destination`` is None, else writes to the path/file object."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["time_ms", "category", "fields"])
        for event in self._events:
            packed = ";".join(f"{k}={v}" for k, v in sorted(event.fields.items()))
            writer.writerow([f"{event.time:.3f}", event.category, packed])
        text = buffer.getvalue()
        if destination is None:
            return text
        if hasattr(destination, "write"):
            destination.write(text)
        else:
            with open(destination, "w") as handle:
                handle.write(text)
        return None

    def summary(self) -> str:
        lines = [f"timeline: {len(self)} events over {self.span():.1f} ms"]
        for category, count in sorted(self.counts().items()):
            lines.append(f"  {category:<18} {count}")
        return "\n".join(lines)
