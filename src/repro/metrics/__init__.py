"""Run-level metrics, timelines, and report rendering."""

from repro.metrics.collectors import RunResult
from repro.metrics.report import format_table, percentile_table, render_comparison
from repro.metrics.timeline import Timeline, TimelineEvent

__all__ = [
    "RunResult",
    "Timeline",
    "TimelineEvent",
    "format_table",
    "percentile_table",
    "render_comparison",
]
