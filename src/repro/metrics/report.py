"""Plain-text table rendering for experiment output.

The benchmark harness prints tables in the same row/column layout the paper
uses so measured numbers can be compared against it cell by cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "percentile_table", "render_comparison"]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Align ``rows`` under ``headers``; column widths fit the content."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in text_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def percentile_table(results: Dict[str, object], title: Optional[str] = None) -> str:
    """Completion-time percentile table, one row per named run.

    ``results`` maps a label to anything carrying the
    ``completion_percentiles`` dict a :class:`~repro.metrics.RunResult`
    has (``p50``/``p95``/``p99``, in ms); the mean rides along so tail
    latency can be read against it.
    """
    rows = []
    for label in results:
        result = results[label]
        p = result.completion_percentiles
        rows.append(
            [
                label,
                round(result.mean_completion_ms, 1),
                round(p.get("p50", 0.0), 1),
                round(p.get("p95", 0.0), 1),
                round(p.get("p99", 0.0), 1),
            ]
        )
    return format_table(
        ["run", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"], rows, title=title
    )


def render_comparison(
    measured: Dict[str, float],
    paper: Dict[str, float],
    metric: str = "ms/page",
    title: Optional[str] = None,
) -> str:
    """Side-by-side measured-vs-paper table with ratios.

    Keys present in only one of the dicts are still shown (blank partner).
    """
    keys: List[str] = list(measured)
    keys += [k for k in paper if k not in measured]
    rows = []
    for key in keys:
        m = measured.get(key)
        p = paper.get(key)
        ratio = "" if (m is None or p is None or p == 0) else f"{m / p:.2f}"
        rows.append(
            [
                key,
                "" if m is None else f"{m:.2f}",
                "" if p is None else f"{p:.2f}",
                ratio,
            ]
        )
    return format_table(
        ["case", f"measured ({metric})", f"paper ({metric})", "ratio"],
        rows,
        title=title,
    )
