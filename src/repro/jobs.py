"""Process fan-out shared by experiments, benchmarks, and the linter.

Lives at the very bottom of the layering (below even ``sim`` — see
``_LAYERS`` in the API02 rule): it imports nothing from ``repro``, so any
layer may use it without tangling the graph.  Moved here from
``repro.experiments.runner`` (which still re-exports it) when the linter
grew a ``--jobs`` flag and layer 0 needed the fan-out too.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["map_jobs"]


def map_jobs(func: Callable, items, jobs: int = 1) -> list:
    """Order-preserving map, optionally fanned out over worker processes.

    ``jobs <= 1`` runs serially in-process.  With more jobs a
    ``multiprocessing`` pool maps ``func`` over ``items`` — results come
    back in input order, and each cell is seeded independently of the
    others, so the output is byte-identical to the serial path.  ``func``
    and the items must be picklable (module-level functions, plain data).
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    import multiprocessing

    with multiprocessing.Pool(processes=min(jobs, len(items))) as pool:
        return pool.map(func, items)
