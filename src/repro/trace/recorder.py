"""The deterministic span/event recorder.

A :class:`Tracer` attaches to a simulation
:class:`~repro.sim.core.Environment` (``machine = DatabaseMachine(...,
tracer=tracer)`` sets ``env.tracer``); instrumented components call
``begin``/``end``/``instant`` with names from the registered catalogue.
Recording is a synchronous list append — no simulation events, no RNG
draws, no callbacks — so a traced run is *observationally identical* to
an untraced one: same event calendar, same random streams, same metrics.

Record order derives from ``(simulation time, sequence number)`` where
the sequence number increments per record — never from wall clock — so
two runs with the same seed produce byte-identical trace files (lint
rule DET01 polices wall-clock use; the determinism test in
``tests/test_trace_export.py`` proves it end to end).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.trace.names import CATALOGUE

__all__ = ["Span", "Tracer"]


class Span:
    """One interval of work or waiting, in simulation time.

    ``end`` is ``None`` while the span is open.  ``tid`` marks spans
    belonging to a transaction's tree; ``track`` marks device-lane spans
    (a disk, an interconnect).  ``args`` is free-form structured detail
    (page numbers, hook names, byte counts).
    """

    __slots__ = ("sid", "parent_sid", "name", "start", "end", "tid", "track", "args", "seq")

    def __init__(
        self,
        sid: int,
        name: str,
        start: float,
        seq: int,
        parent_sid: Optional[int] = None,
        tid: Optional[int] = None,
        track: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.sid = sid
        self.parent_sid = parent_sid
        self.name = name
        self.start = start
        self.seq = seq
        self.end: Optional[float] = None
        self.tid = tid
        self.track = track
        self.args: Dict[str, Any] = args or {}

    @property
    def duration(self) -> float:
        """Span length in ms (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end:.3f}" if self.end is not None else "open"
        return f"<Span {self.sid} {self.name} [{self.start:.3f}, {end}] tid={self.tid}>"


class Tracer:
    """Deterministic recorder of spans and instants for one run.

    Spans are kept in ``begin()`` order; ``seq`` numbers every record
    monotonically, which breaks simulation-time ties without touching
    wall clock.  Names are validated against the registered catalogue at
    record time, mirroring the static TRACE01 check.
    """

    def __init__(self, env=None) -> None:
        #: The clock source.  ``DatabaseMachine(..., tracer=tracer)`` binds
        #: its own environment here, so a tracer may be built first.
        self.env = env
        self.spans: List[Span] = []
        self.instants: List[Span] = []
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    @staticmethod
    def _check_name(name: str) -> None:
        if name not in CATALOGUE:
            raise ValueError(
                f"span name {name!r} is not in the registered catalogue "
                "(repro.trace.names.CATALOGUE); register it there first"
            )

    def begin(
        self,
        name: str,
        parent: Optional[Span] = None,
        tid: Optional[int] = None,
        track: Optional[str] = None,
        **args,
    ) -> Span:
        """Open a span at the current simulation time."""
        self._check_name(name)
        span = Span(
            sid=len(self.spans),
            name=name,
            start=self.env.now,
            seq=self._next_seq(),
            parent_sid=parent.sid if parent is not None else None,
            tid=tid if tid is not None else (parent.tid if parent is not None else None),
            track=track,
            args=args or None,
        )
        self.spans.append(span)
        return span

    def end(self, span: Span, **args) -> Span:
        """Close ``span`` at the current simulation time."""
        if span.end is not None:
            raise ValueError(f"span {span.sid} ({span.name}) already ended")
        span.end = self.env.now
        if args:
            span.args.update(args)
        return span

    def instant(
        self,
        name: str,
        tid: Optional[int] = None,
        track: Optional[str] = None,
        **args,
    ) -> Span:
        """Record a zero-duration marker at the current simulation time."""
        self._check_name(name)
        mark = Span(
            sid=len(self.instants),
            name=name,
            start=self.env.now,
            seq=self._next_seq(),
            tid=tid,
            track=track,
            args=args or None,
        )
        mark.end = mark.start
        self.instants.append(mark)
        return mark

    # -- queries ---------------------------------------------------------------
    def spans_of(self, tid: int) -> List[Span]:
        """Closed spans belonging to transaction ``tid``, in begin order."""
        return [s for s in self.spans if s.tid == tid and s.closed]

    def named(self, name: str) -> List[Span]:
        """Closed spans with ``name``, in begin order."""
        return [s for s in self.spans if s.name == name and s.closed]

    def open_spans(self) -> List[Span]:
        """Spans begun but never ended (e.g. cut off by a machine crash)."""
        return [s for s in self.spans if not s.closed]

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)
