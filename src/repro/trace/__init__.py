"""Deterministic tracing & critical-path observability (``repro.trace``).

The run-level metrics in :class:`~repro.metrics.RunResult` say *how
long*; this subsystem says *why*: every transaction becomes a tree of
spans (lock waits, cache frames, disk service, WAL barriers, commit
processing, ...), a priority sweep charges each slice of the completion
window to the phase actually responsible, and exporters emit
Chrome/Perfetto ``trace_event`` JSON plus terminal timelines.

Tracing is opt-in and perturbs nothing: with no tracer attached every
hook is a ``None``-check; with one attached, recording is a synchronous
append ordered by (simulation time, sequence number) — never wall clock
— so traced and untraced runs produce identical metrics and same-seed
traces are byte-identical.

See ``docs/TRACE.md`` for the span model and the CLI (``repro trace``,
``repro trace-diff``).
"""

from repro.trace.analysis import (
    aggregate_breakdown,
    completion_percentiles,
    critical_resource,
    diff_breakdowns,
    phase_breakdown,
    transaction_windows,
)
from repro.trace.export import (
    render_flame,
    render_timeline,
    to_chrome_trace,
    validate_chrome_trace,
    write_json,
)
from repro.trace.names import CATALOGUE, OTHER_PHASE, PHASE_CHARS, PRIORITY
from repro.trace.recorder import Span, Tracer

__all__ = [
    "CATALOGUE",
    "OTHER_PHASE",
    "PHASE_CHARS",
    "PRIORITY",
    "Span",
    "Tracer",
    "aggregate_breakdown",
    "completion_percentiles",
    "critical_resource",
    "diff_breakdowns",
    "phase_breakdown",
    "render_flame",
    "render_timeline",
    "to_chrome_trace",
    "transaction_windows",
    "validate_chrome_trace",
    "write_json",
]
