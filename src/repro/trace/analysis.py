"""Critical-path extraction and phase breakdowns over recorded spans.

The paper's completion-time metric runs from a transaction's first cache
frame to its last durable page (Section 4); this module decomposes that
window into *phases*.  The attribution rule is a priority sweep: the
window is cut at every span boundary, and each elementary segment is
charged to the highest-priority span active during it
(:data:`repro.trace.names.PRIORITY` — productive work beats waits, so a
wait only claims a segment when nothing else is progressing).  Segments
no span covers go to ``"other"``.

Because the segments partition the window exactly, a transaction's
phase breakdown sums to its completion time, the per-architecture mean
breakdown sums to the mean completion time, and the phase-by-phase
difference of two runs sums to their completion-time delta — which is
what lets ``repro trace-diff`` *quantitatively* attribute a paper
comparison's gap to phases.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.trace.names import OTHER_PHASE, PRIORITY, TXN
from repro.trace.recorder import Span, Tracer

__all__ = [
    "aggregate_breakdown",
    "completion_percentiles",
    "critical_resource",
    "diff_breakdowns",
    "phase_breakdown",
    "transaction_windows",
]


def transaction_windows(tracer: Tracer) -> Dict[int, Tuple[float, float]]:
    """Completion window of every committed transaction.

    The machine stamps the committed attempt's ``txn`` span with the
    paper's window (first frame allocated -> last updated page durable);
    aborted attempts and transactions that never started carry none.
    """
    windows: Dict[int, Tuple[float, float]] = {}
    for span in tracer.spans:
        if span.name != TXN or span.args.get("status") != "committed":
            continue
        start = span.args.get("window_start")
        end = span.args.get("window_end")
        if start is None or end is None:
            continue
        windows[span.tid] = (start, end)
    return windows


def phase_breakdown(
    spans: Iterable[Span], window: Tuple[float, float]
) -> Dict[str, float]:
    """Decompose ``window`` into phases by the priority sweep.

    ``spans`` are the transaction's spans (any others are ignored via the
    priority table); the returned dict's values sum to the window length
    exactly (one ``"other"`` bucket absorbs uncovered time).
    """
    start, end = window
    if end <= start:
        return {}
    active = [
        s
        for s in spans
        if s.closed and s.name in PRIORITY and s.start < end and s.end > start
    ]
    bounds = {start, end}
    for s in active:
        bounds.add(max(start, s.start))
        bounds.add(min(end, s.end))
    cuts = sorted(bounds)
    out: Dict[str, float] = {}
    for a, b in zip(cuts, cuts[1:]):
        best: Optional[Span] = None
        for s in active:
            if s.start <= a and s.end >= b:
                if best is None or PRIORITY[s.name] > PRIORITY[best.name]:
                    best = s
        name = best.name if best is not None else OTHER_PHASE
        out[name] = out.get(name, 0.0) + (b - a)
    return out


def aggregate_breakdown(tracer: Tracer) -> Dict[str, float]:
    """Mean phase breakdown over the run's committed transactions.

    The values sum to the run's mean completion time (same windows the
    machine's ``completion_ms`` statistic measures).
    """
    windows = transaction_windows(tracer)
    if not windows:
        return {}
    totals: Dict[str, float] = {}
    for tid in sorted(windows):
        for name, ms in phase_breakdown(tracer.spans_of(tid), windows[tid]).items():
            totals[name] = totals.get(name, 0.0) + ms
    n = len(windows)
    return {name: ms / n for name, ms in totals.items()}


def critical_resource(breakdown: Dict[str, float]) -> Optional[str]:
    """The phase the completion time mostly went to (``other`` excluded)."""
    named = {k: v for k, v in breakdown.items() if k != OTHER_PHASE}
    if not named:
        return None
    return max(sorted(named), key=lambda k: named[k])


def diff_breakdowns(
    a: Dict[str, float], b: Dict[str, float]
) -> List[Tuple[str, float, float, float]]:
    """Per-phase attribution of the gap between two runs.

    Returns ``(phase, ms_a, ms_b, delta)`` rows sorted by descending
    ``|delta|``; the deltas sum to ``sum(b) - sum(a)``, the mean
    completion-time difference.
    """
    phases = sorted(set(a) | set(b))
    rows = [(p, a.get(p, 0.0), b.get(p, 0.0), b.get(p, 0.0) - a.get(p, 0.0)) for p in phases]
    rows.sort(key=lambda row: (-abs(row[3]), row[0]))
    return rows


def completion_percentiles(
    tracer: Tracer, qs: Sequence[float] = (50.0, 95.0, 99.0)
) -> Dict[str, float]:
    """Exact completion-time percentiles from the traced windows.

    Uses the same linear-interpolation definition as
    :meth:`repro.sim.monitor.SampleStat.percentile`, so for a committed-
    only run these match ``RunResult.completion_percentiles`` exactly.
    """
    samples = sorted(end - start for start, end in transaction_windows(tracer).values())
    out: Dict[str, float] = {}
    for q in qs:
        out[f"p{q:g}"] = _percentile(samples, q)
    return out


def _percentile(data: List[float], q: float) -> float:
    if not data:
        return 0.0
    k = (len(data) - 1) * q / 100.0
    lo = math.floor(k)
    hi = math.ceil(k)
    if lo == hi:
        return data[int(k)]
    return data[lo] * (hi - k) + data[hi] * (k - lo)
