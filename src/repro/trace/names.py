"""The registered span-name catalogue.

Every span or instant recorded through :class:`repro.trace.Tracer` must
use a name from this catalogue (runtime-checked by the recorder and
statically checked by lint rule TRACE01), so traces from different
commits and architectures stay diffable: a phase rename is an API change
here, not a silent drift in the instrumentation.

Names are dotted lowercase: ``<subsystem>.<what>``.  Spans that belong
to a transaction carry a ``tid`` and take part in critical-path
attribution; device-lane spans (``disk.service``, ``link.transfer``)
carry a ``track`` instead and render as their own rows in exports.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

__all__ = [
    "ABORT",
    "ADMISSION_ENQUEUE",
    "ADMISSION_REJECT",
    "ADMISSION_SHED",
    "APPEND",
    "ARRIVAL_SPIKE",
    "BACKPRESSURE_OFF",
    "BACKPRESSURE_ON",
    "CACHE_WAIT",
    "CATALOGUE",
    "CHECKPOINT",
    "COMMIT",
    "COMPONENT_FAIL",
    "CORRUPT_INJECT",
    "DATA_READ",
    "AUX_READ",
    "DISK_SERVICE",
    "FAILOVER_LP",
    "FAILOVER_QP",
    "FAULT_POINT",
    "HEALTH_DETECT",
    "INDIRECTION",
    "LINK_TRANSFER",
    "LOCK_RELEASE",
    "LOCK_WAIT",
    "LOG_ANALYSIS",
    "LOG_SHIP",
    "MACHINE_CRASH",
    "MIRROR_REBUILD",
    "OTHER_PHASE",
    "OVERWRITE",
    "PAGE_DURABLE",
    "PHASE_CHARS",
    "PRIORITY",
    "PT_FLUSH",
    "PT_UPDATE",
    "QP_EXEC",
    "QP_WAIT",
    "RECOVERY_REDO",
    "RECOVERY_UNDO",
    "REPLAY_WAVE",
    "RESTART_WAIT",
    "SCRATCH_WRITE",
    "SCRUB_DETECT",
    "SCRUB_PASS",
    "SCRUB_REPAIR",
    "TXN",
    "WAL_WAIT",
    "WRITEBACK",
]

# -- transaction-tree spans ---------------------------------------------------
#: Whole execution attempt; parent of every other transaction span.
TXN = "txn"
#: Waiting for a page lock (BEC scheduling).
LOCK_WAIT = "lock.wait"
#: Architecture indirection before the data read (page-table lookup).
INDIRECTION = "indirection"
#: Waiting for cache frames.
CACHE_WAIT = "cache.wait"
#: Data-page read from a data disk.
DATA_READ = "io.data.read"
#: Auxiliary read (A/D differential pages).
AUX_READ = "io.aux.read"
#: Waiting for a free query processor.
QP_WAIT = "qp.wait"
#: Processing the page on a query processor (includes recovery CPU).
QP_EXEC = "qp.exec"
#: The architecture's durability path for one updated page.
WRITEBACK = "writeback"
#: WAL barrier: page blocked until its log fragment is durable.
WAL_WAIT = "wal.wait"
#: Log fragment in flight from query processor to log processor.
LOG_SHIP = "log.ship"
#: Updated page parked in the scratch ring (overwriting).
SCRATCH_WRITE = "scratch.write"
#: Commit-time scratch-read + home-overwrite pass (overwriting).
OVERWRITE = "overwrite"
#: Commit-time page-table entry updates and flushes (shadow).
PT_UPDATE = "pt.update"
#: Page-table flush outside commit (shadow checkpoint).
PT_FLUSH = "pt.flush"
#: Commit-time A/D-file append (differential).
APPEND = "append"
#: Commit processing (container for the architecture's commit work).
COMMIT = "commit"
#: Abort processing.
ABORT = "abort"
#: Deadlock-victim backoff before a restart attempt.
RESTART_WAIT = "restart.wait"
#: A checkpoint being taken (span in architectures that do work; instant
#: in the bare machine).
CHECKPOINT = "checkpoint"

# -- restart-phase spans (modern managers) ------------------------------------
#: Single-pass restart scan classifying log records (analysis phase).
LOG_ANALYSIS = "log.analysis"
#: One dependency wave of parallel command replay across log processors.
REPLAY_WAVE = "replay.wave"
#: Redo application at restart (re-installing committed-unreflected pages).
RECOVERY_REDO = "recovery.redo"
#: Undo application at restart.  Redo-only recovery never records these;
#: the resilience harness counts them to assert zero undo work.
RECOVERY_UNDO = "recovery.undo"

# -- device-lane spans --------------------------------------------------------
#: A disk serving one access (data, log, or page-table disk).
DISK_SERVICE = "disk.service"
#: A message occupying an interconnect channel.
LINK_TRANSFER = "link.transfer"
#: A mirrored disk's background rebuild copying the survivor onto the
#: replacement side (track = the logical mirror name).
MIRROR_REBUILD = "mirror.rebuild"
#: One throttled scrubber patrol over a disk's cylinders (track = the
#: logical disk name; args carry sectors read / detections / repairs).
SCRUB_PASS = "scrub.pass"

# -- instants -----------------------------------------------------------------
#: A simulation-layer fault point was crossed (``machine.*`` hooks).
FAULT_POINT = "fault.point"
#: An injected whole-machine crash halted the run.
MACHINE_CRASH = "machine.crash"
#: An updated page reached stable storage.
PAGE_DURABLE = "page.durable"
#: A permanent single-component failure fired (args: kind = qp/lp/disk).
COMPONENT_FAIL = "component.fail"
#: The health monitor declared a component dead after its suspicion window.
HEALTH_DETECT = "health.detect"
#: QP failover: the transaction caught on the dead processor aborts via
#: normal undo and restarts on the survivors.
FAILOVER_QP = "failover.qp"
#: LP failover: surviving log processors take ownership of the dead one's
#: stream (orphans re-shipped, survivors forced).
FAILOVER_LP = "failover.lp"
#: An offered transaction entered the bounded admission queue.
ADMISSION_ENQUEUE = "admission.enqueue"
#: The admission controller turned an offered transaction away for good
#: (queue full / no token / backpressure, retries exhausted).
ADMISSION_REJECT = "admission.reject"
#: The client gave up before admission (deadline-based shedding).
ADMISSION_SHED = "admission.shed"
#: The lock table or buffer cache crossed its high watermark; arrivals
#: are turned away until the pressure drains below the low watermark.
BACKPRESSURE_ON = "backpressure.on"
#: Pressure drained below the low watermark; admission reopened.
BACKPRESSURE_OFF = "backpressure.off"
#: A scripted load spike began (the arrival process multiplies its rate).
ARRIVAL_SPIKE = "arrival.spike"
#: Early lock release: a transaction's page locks freed at commit-record
#: append, before the force completes (redo-only WAL).
LOCK_RELEASE = "lock.release"
#: A stored sector rotted in place (silent corruption injected by a
#: BIT_ROT fault; args: track, sector).
CORRUPT_INJECT = "corrupt.inject"
#: The scrubber found a rotted sector (args: track, sector, latency_ms —
#: the detection latency since the rot was injected).
SCRUB_DETECT = "scrub.detect"
#: The scrubber healed a rotted sector (twin copy rewrite, or an
#: escalation to archive media recovery when no clean copy survives).
SCRUB_REPAIR = "scrub.repair"

#: Every name the recorder accepts.
CATALOGUE: FrozenSet[str] = frozenset(
    {
        TXN,
        LOCK_WAIT,
        INDIRECTION,
        CACHE_WAIT,
        DATA_READ,
        AUX_READ,
        QP_WAIT,
        QP_EXEC,
        WRITEBACK,
        WAL_WAIT,
        LOG_SHIP,
        SCRATCH_WRITE,
        OVERWRITE,
        PT_UPDATE,
        PT_FLUSH,
        APPEND,
        COMMIT,
        ABORT,
        RESTART_WAIT,
        CHECKPOINT,
        LOG_ANALYSIS,
        REPLAY_WAVE,
        RECOVERY_REDO,
        RECOVERY_UNDO,
        DISK_SERVICE,
        LINK_TRANSFER,
        MIRROR_REBUILD,
        FAULT_POINT,
        MACHINE_CRASH,
        PAGE_DURABLE,
        COMPONENT_FAIL,
        HEALTH_DETECT,
        FAILOVER_QP,
        FAILOVER_LP,
        ADMISSION_ENQUEUE,
        ADMISSION_REJECT,
        ADMISSION_SHED,
        BACKPRESSURE_ON,
        BACKPRESSURE_OFF,
        ARRIVAL_SPIKE,
        LOCK_RELEASE,
        SCRUB_PASS,
        CORRUPT_INJECT,
        SCRUB_DETECT,
        SCRUB_REPAIR,
    }
)

#: Bucket for window time no span covers.
OTHER_PHASE = "other"

#: Attribution priority for the critical-path sweep: at any instant the
#: transaction's time is charged to its highest-priority active span.
#: Productive work outranks recovery-data movement, which outranks pure
#: waits, which outrank the commit/abort containers — so waits only claim
#: the intervals where nothing is actually progressing, which is exactly
#: "what was the completion time waiting on".  ``TXN`` is the tree root
#: and never claims time; device-lane spans carry no ``tid`` and are
#: excluded by construction.
PRIORITY: Dict[str, int] = {
    QP_EXEC: 100,
    DATA_READ: 90,
    AUX_READ: 85,
    WAL_WAIT: 82,
    WRITEBACK: 80,
    OVERWRITE: 78,
    SCRATCH_WRITE: 76,
    APPEND: 74,
    PT_UPDATE: 72,
    PT_FLUSH: 70,
    LOG_SHIP: 60,
    CHECKPOINT: 55,
    INDIRECTION: 50,
    QP_WAIT: 24,
    CACHE_WAIT: 22,
    LOCK_WAIT: 20,
    COMMIT: 15,
    ABORT: 14,
    RESTART_WAIT: 10,
}

#: One character per phase for the terminal timeline strips.
PHASE_CHARS: Dict[str, str] = {
    QP_EXEC: "x",
    DATA_READ: "r",
    AUX_READ: "a",
    WAL_WAIT: "W",
    WRITEBACK: "w",
    OVERWRITE: "o",
    SCRATCH_WRITE: "S",
    APPEND: "+",
    PT_UPDATE: "p",
    PT_FLUSH: "P",
    LOG_SHIP: "s",
    CHECKPOINT: "k",
    INDIRECTION: "i",
    QP_WAIT: "q",
    CACHE_WAIT: "c",
    LOCK_WAIT: "l",
    COMMIT: "C",
    ABORT: "A",
    RESTART_WAIT: "b",
    OTHER_PHASE: ".",
}
