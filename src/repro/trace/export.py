"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and terminal views.

``to_chrome_trace`` emits the Trace Event Format (JSON array of ``"X"``
complete events and ``"i"`` instants, timestamps in microseconds) that
chrome://tracing and https://ui.perfetto.dev open directly.  Transaction
spans render one row per transaction; device-lane spans (disks, links)
render one row per device.  Event order is ``(timestamp, sequence)``,
both derived from simulation state, so the export is byte-stable across
runs with the same seed.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.trace.names import CATALOGUE, OTHER_PHASE, PHASE_CHARS, PRIORITY
from repro.trace.recorder import Span, Tracer

__all__ = [
    "render_flame",
    "render_timeline",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_json",
]

#: Synthetic Chrome "thread id" base for device-lane rows (real transaction
#: ids stay below this).
_TRACK_TID_BASE = 100_000

_MS_TO_US = 1000.0


def _row_of(span: Span, tracks: Dict[str, int]) -> int:
    if span.track is not None:
        if span.track not in tracks:
            tracks[span.track] = _TRACK_TID_BASE + len(tracks)
        return tracks[span.track]
    return span.tid if span.tid is not None else _TRACK_TID_BASE - 1


def to_chrome_trace(tracer: Tracer, process_name: str = "repro") -> List[Dict[str, Any]]:
    """The run as a Chrome ``trace_event`` list (open spans are skipped)."""
    tracks: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for span in tracer.spans:
        if not span.closed:
            continue
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "ts": span.start * _MS_TO_US,
            "dur": span.duration * _MS_TO_US,
            "pid": 1,
            "tid": _row_of(span, tracks),
        }
        if span.args:
            event["args"] = dict(sorted(span.args.items()))
        events.append((span.start, span.seq, event))
    for mark in tracer.instants:
        event = {
            "name": mark.name,
            "cat": "instant",
            "ph": "i",
            "s": "t",
            "ts": mark.start * _MS_TO_US,
            "pid": 1,
            "tid": _row_of(mark, tracks),
        }
        if mark.args:
            event["args"] = dict(sorted(mark.args.items()))
        events.append((mark.start, mark.seq, event))
    events.sort(key=lambda item: (item[0], item[1]))
    out: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    rows: Dict[int, str] = {}
    for span in tracer.spans:
        if span.closed:
            row = _row_of(span, tracks)
            if row not in rows:
                rows[row] = (
                    span.track if span.track is not None else f"txn {span.tid}"
                )
    for row in sorted(rows):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": row,
                "args": {"name": rows[row]},
            }
        )
    out.extend(event for _, _, event in events)
    return out


def validate_chrome_trace(events: List[Dict[str, Any]]) -> int:
    """Schema-check an exported trace; returns the event count.

    Raises :class:`ValueError` on the first malformed event — missing
    keys, negative times, a duration on a non-span, a name outside the
    registered catalogue, or timestamps out of order.
    """
    if not isinstance(events, list) or not events:
        raise ValueError("trace must be a non-empty JSON array")
    last_ts: Optional[float] = None
    count = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {i} missing {key!r}")
        ph = event["ph"]
        if ph == "M":
            continue
        if ph not in ("X", "i"):
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        if event["name"] not in CATALOGUE:
            raise ValueError(f"event {i} name {event['name']!r} not in catalogue")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {i} has bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            raise ValueError(f"event {i} goes back in time ({ts} < {last_ts})")
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {i} has bad dur {dur!r}")
        count += 1
    return count


def write_json(events: List[Dict[str, Any]], path: str) -> None:
    """Write an exported trace to ``path`` (stable key order)."""
    with open(path, "w") as handle:
        json.dump(events, handle, sort_keys=True, indent=1)
        handle.write("\n")


# -- terminal views ------------------------------------------------------------
def render_timeline(tracer: Tracer, width: int = 72) -> str:
    """ASCII activity strips: one lane per transaction, one column per
    time slice, the dominant phase's character in each column."""
    windows = {
        tid: (min(s.start for s in spans), max(s.end for s in spans))
        for tid, spans in (
            (tid, tracer.spans_of(tid))
            for tid in sorted({s.tid for s in tracer.spans if s.tid is not None})
        )
        if spans
    }
    if not windows:
        return "(no transaction spans recorded)"
    t_end = max(end for _, end in windows.values())
    if t_end <= 0:
        return "(empty trace)"
    lines = [f"phase legend: " + " ".join(
        f"{char}={name}" for name, char in sorted(PHASE_CHARS.items(), key=lambda kv: kv[1])
    )]
    scale = width / t_end
    for tid in sorted(windows):
        spans = [s for s in tracer.spans_of(tid) if s.name in PRIORITY]
        lane = [" "] * width
        for col in range(width):
            a, b = col / scale, (col + 1) / scale
            best: Optional[Span] = None
            for s in spans:
                if s.start < b and s.end > a:
                    if best is None or PRIORITY[s.name] > PRIORITY[best.name]:
                        best = s
            if best is not None:
                lane[col] = PHASE_CHARS[best.name]
            elif windows[tid][0] < b and windows[tid][1] > a:
                lane[col] = PHASE_CHARS[OTHER_PHASE]
        lines.append(f"T{tid:<3d} |{''.join(lane)}|")
    lines.append(f"     0 ms {'-' * max(0, width - 18)} {t_end:.0f} ms")
    return "\n".join(lines)


def render_flame(breakdown: Dict[str, float], title: Optional[str] = None) -> str:
    """A one-level terminal flame view of a mean phase breakdown."""
    if not breakdown:
        return "(empty breakdown)"
    total = sum(breakdown.values())
    lines = []
    if title:
        lines.append(title)
    width = max(len(name) for name in breakdown)
    bar_width = 40
    for name in sorted(breakdown, key=lambda k: -breakdown[k]):
        ms = breakdown[name]
        frac = ms / total if total else 0.0
        bar = "#" * max(1, round(frac * bar_width)) if ms > 0 else ""
        lines.append(f"{name:<{width}} {ms:8.1f} ms {100 * frac:5.1f}% {bar}")
    lines.append(f"{'total':<{width}} {total:8.1f} ms")
    return "\n".join(lines)
