"""When to checkpoint: operation-count, log-volume, or sim-time triggers.

The scheduler is deliberately dumb and deterministic: callers feed it
progress (:meth:`CheckpointScheduler.note_op`,
:meth:`~CheckpointScheduler.note_records`) and poll
:meth:`~CheckpointScheduler.maybe_checkpoint` at operation boundaries.
Once a trigger fires the scheduler stays *due* until a checkpoint
actually completes — a quiescent policy may skip while transactions are
active, and the sticky flag turns that skip into deferral rather than a
lost checkpoint.

:func:`sim_checkpointer` is the timed-simulation counterpart: a
generator process that periodically drives an architecture's
``take_checkpoint`` hook (used by the parallel architectures in
``repro.core``; duck-typed so this layer-0 package imports neither the
machine nor the architectures).
"""

from __future__ import annotations

from typing import Optional

from repro.checkpoint.policy import CheckpointStats

__all__ = ["CheckpointScheduler", "sim_checkpointer"]


class CheckpointScheduler:
    """Sticky-due checkpoint trigger on operation count or record volume."""

    def __init__(
        self,
        every_ops: Optional[int] = None,
        every_records: Optional[int] = None,
    ):
        if every_ops is not None and every_ops < 1:
            raise ValueError("every_ops must be at least 1")
        if every_records is not None and every_records < 1:
            raise ValueError("every_records must be at least 1")
        self.every_ops = every_ops
        self.every_records = every_records
        self._ops = 0
        self._records = 0
        self._due = False
        self.taken = 0
        self.skipped = 0

    # -- progress feed -------------------------------------------------------
    def note_op(self, n: int = 1) -> None:
        self._ops += n
        if self.every_ops is not None and self._ops >= self.every_ops:
            self._due = True

    def note_records(self, n: int) -> None:
        self._records += n
        if self.every_records is not None and self._records >= self.every_records:
            self._due = True

    @property
    def due(self) -> bool:
        return self._due

    def mark_taken(self) -> None:
        self._due = False
        self._ops = 0
        self._records = 0
        self.taken += 1

    # -- the poll ------------------------------------------------------------
    def maybe_checkpoint(self, manager) -> Optional[CheckpointStats]:
        """Take a checkpoint if one is due; None when not due.

        A skipped checkpoint (quiescence deferral) leaves the scheduler
        due, so the next boundary retries.
        """
        if not self._due:
            return None
        stats = manager.take_checkpoint()
        if stats.skipped:
            self.skipped += 1
            return stats
        self.mark_taken()
        return stats


def sim_checkpointer(env, architecture, interval_ms: float):
    """Generator process: drive ``architecture.take_checkpoint()`` on a timer."""
    if interval_ms <= 0:
        raise ValueError("checkpoint interval must be positive")
    while True:
        yield env.timeout(interval_ms)
        yield from architecture.take_checkpoint()
