"""Checkpoint policies: the paper's Section 6 restart-bounding mechanisms.

The paper's restart analysis assumes every architecture periodically
checkpoints so that restart cost is bounded by the checkpoint interval
rather than by the length of history.  Three policies cover the design
space the five architectures occupy:

* :class:`QuiescentCheckpoint` — wait until no transaction is active,
  compact the recovery data, write a checkpoint record.  The only option
  for mechanisms whose recovery data cannot distinguish "old committed"
  from "current committed" without the full commit history (version
  selection).
* :class:`FuzzyCheckpoint` — record the active-transaction table and the
  dirty-page table and compact *around* live transactions without ever
  draining them (the paper's Section 3.1 claim for parallel logging).
* :class:`SnapshotCheckpoint` — for the shadow and differential families
  the atomically-installed snapshot (page-table root, merged base file)
  *is* the checkpoint; taking one just flips/merges and reclaims garbage.

A policy is a template: :meth:`CheckpointPolicy.take` brackets the
architecture-specific :meth:`~CheckpointPolicy.prepare` compaction with
the shared bookkeeping — quiescence check, active/dirty capture, durable
:data:`CHECKPOINT_FILE` record — and crosses ``_fault_point`` hooks at
every step so the crashtest sweep covers crash-during-checkpoint.
Concrete per-architecture subclasses live in
:mod:`repro.checkpoint.adapters`; recovery managers declare which policy
they support via the ``checkpoint_policy`` class attribute (reprolint
rule ARCH03).
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

__all__ = [
    "CHECKPOINT_FILE",
    "CheckpointError",
    "CheckpointPolicy",
    "CheckpointRecord",
    "CheckpointStats",
    "CheckpointUnsupported",
    "FuzzyCheckpoint",
    "QuiescentCheckpoint",
    "SnapshotCheckpoint",
]

#: Stable file holding one record per completed checkpoint.  Append-only:
#: recovery may read it, nothing ever truncates it (the "checkpoint-lost"
#: harness oracle counts on that).
CHECKPOINT_FILE = "checkpoints"


class CheckpointError(Exception):
    """A checkpoint request that cannot be honored correctly."""


class CheckpointUnsupported(CheckpointError):
    """The manager declares no checkpoint capability."""


class CheckpointRecord(NamedTuple):
    """One durable checkpoint: what restart needs to know to start here."""

    seq: int
    kind: str
    #: Transactions active when the checkpoint began (fuzzy: the ATT).
    active: Tuple[int, ...]
    #: Buffered pages not yet on stable storage (fuzzy: the DPT).
    dirty_pages: Tuple[int, ...]
    #: Recovery-data volume (records) retained after compaction.
    retained: int
    #: Architecture-specific facts, as sorted (key, value) pairs.
    payload: Tuple[Tuple[str, int], ...]


class CheckpointStats(NamedTuple):
    """Outcome of one checkpoint attempt."""

    record: Optional[CheckpointRecord]
    skipped: bool
    reason: Optional[str]
    #: Recovery-data records reclaimed by the compaction.
    reclaimed: int


class CheckpointPolicy:
    """Template for taking one checkpoint against a recovery manager."""

    kind = "abstract"
    requires_quiescence = False

    def take(self, manager) -> CheckpointStats:
        """Run the checkpoint protocol; returns what happened.

        Crash-safe at every hook crossing: the compaction steps are
        individually atomic-or-redundant, and the checkpoint record is
        pure metadata appended last.
        """
        manager._fault_point(f"checkpoint.{self.kind}.begin")
        if self.requires_quiescence and manager.active_transactions:
            # Sticky deferral: the caller (scheduler/harness) retries at a
            # later operation boundary instead of force-draining.
            manager._fault_point(f"checkpoint.{self.kind}.skip")
            return CheckpointStats(None, True, "active-transactions", 0)
        active = tuple(sorted(manager.active_transactions))
        dirty = tuple(self.dirty_pages(manager))
        before = self.volume(manager)
        payload = self.prepare(manager)
        after = self.volume(manager)
        record = CheckpointRecord(
            seq=manager.stable.file_length(CHECKPOINT_FILE) + 1,
            kind=self.kind,
            active=active,
            dirty_pages=dirty,
            retained=after,
            payload=tuple(sorted(payload.items())),
        )
        manager._fault_point(f"checkpoint.{self.kind}.pre-record")
        manager.stable.append(CHECKPOINT_FILE, record)
        manager._fault_point(f"checkpoint.{self.kind}.post-record")
        return CheckpointStats(record, False, None, max(0, before - after))

    # -- architecture-specific steps (adapters override) ----------------------
    def prepare(self, manager) -> Dict[str, int]:
        """Compact the manager's recovery data; returns payload facts."""
        raise CheckpointUnsupported(
            f"{type(self).__name__} has no prepare step for {manager.name!r}"
        )

    def volume(self, manager) -> int:
        """Recovery-data records restart would have to scan right now."""
        return 0

    def dirty_pages(self, manager) -> Tuple[int, ...]:
        """Pages dirty in the buffer pool at checkpoint begin (the DPT)."""
        return ()


class QuiescentCheckpoint(CheckpointPolicy):
    """Drain (defer until no transaction is active), then compact."""

    kind = "quiescent"
    requires_quiescence = True


class FuzzyCheckpoint(CheckpointPolicy):
    """Record ATT + DPT and compact without draining transactions."""

    kind = "fuzzy"


class SnapshotCheckpoint(CheckpointPolicy):
    """The page-table / differential-file flip doubles as the checkpoint."""

    kind = "snapshot"
