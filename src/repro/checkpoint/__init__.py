"""Checkpointing: bounded-restart recovery across the five architectures.

``policy`` defines the three checkpoint disciplines of the paper's design
space (quiescent, fuzzy, snapshot-consistent), ``adapters`` binds one to
each recovery architecture by name, and ``scheduler`` decides when to take
one (operation count, record volume, or simulated time).  See
docs/CHECKPOINT.md for the policy catalogue and the per-architecture
mapping to the paper's Section 6 restart assumptions.
"""

from repro.checkpoint.adapters import (
    CommandLoggingCheckpointAdapter,
    DifferentialCheckpointAdapter,
    OverwriteCheckpointAdapter,
    RedoOnlyCheckpointAdapter,
    ShadowCheckpointAdapter,
    VersionCheckpointAdapter,
    WalCheckpointAdapter,
    adapter_for,
    recovery_volume,
)
from repro.checkpoint.policy import (
    CHECKPOINT_FILE,
    CheckpointError,
    CheckpointPolicy,
    CheckpointRecord,
    CheckpointStats,
    CheckpointUnsupported,
    FuzzyCheckpoint,
    QuiescentCheckpoint,
    SnapshotCheckpoint,
)
from repro.checkpoint.scheduler import CheckpointScheduler, sim_checkpointer

__all__ = [
    "CHECKPOINT_FILE",
    "CheckpointError",
    "CheckpointPolicy",
    "CheckpointRecord",
    "CheckpointScheduler",
    "CheckpointStats",
    "CheckpointUnsupported",
    "CommandLoggingCheckpointAdapter",
    "DifferentialCheckpointAdapter",
    "FuzzyCheckpoint",
    "OverwriteCheckpointAdapter",
    "QuiescentCheckpoint",
    "RedoOnlyCheckpointAdapter",
    "ShadowCheckpointAdapter",
    "SnapshotCheckpoint",
    "VersionCheckpointAdapter",
    "WalCheckpointAdapter",
    "adapter_for",
    "recovery_volume",
    "sim_checkpointer",
]
