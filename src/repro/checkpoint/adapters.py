"""Per-architecture checkpoint adapters, dispatched by manager name.

Each adapter subclasses the policy its architecture declares (the
``checkpoint_policy`` class attribute checked by reprolint's ARCH03) and
fills in the two architecture-specific steps: :meth:`prepare` runs the
actual compaction on the manager, :meth:`volume` measures the
recovery-data records a restart would scan.

Dispatch is by ``manager.name`` string so this package imports nothing
from :mod:`repro.storage` — the storage managers import *us* to declare
their policy, and :meth:`RecoveryManager.take_checkpoint` calls
:func:`adapter_for` at runtime.  The name table and the declared policies
are cross-checked on every dispatch.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.checkpoint.policy import (
    CheckpointError,
    CheckpointUnsupported,
    FuzzyCheckpoint,
    QuiescentCheckpoint,
    SnapshotCheckpoint,
)

__all__ = [
    "CommandLoggingCheckpointAdapter",
    "DifferentialCheckpointAdapter",
    "OverwriteCheckpointAdapter",
    "RedoOnlyCheckpointAdapter",
    "ShadowCheckpointAdapter",
    "VersionCheckpointAdapter",
    "WalCheckpointAdapter",
    "adapter_for",
    "recovery_volume",
]


class WalCheckpointAdapter(FuzzyCheckpoint):
    """Distributed WAL: flush dirty pages, truncate reflected records.

    The DPT is captured *before* the flush (that is the fuzzy-checkpoint
    record's whole point); ``DistributedWalManager.checkpoint`` then does
    the two-phase log truncation with its own fault points.
    """

    def dirty_pages(self, manager) -> Tuple[int, ...]:
        return tuple(sorted(manager.dirty_pages))

    def prepare(self, manager) -> Dict[str, int]:
        return manager.checkpoint(flush=True)

    def volume(self, manager) -> int:
        return sum(manager.log_lengths().values())


class CommandLoggingCheckpointAdapter(FuzzyCheckpoint):
    """Command logging: flush committed pages, truncate replayed records.

    Same fuzzy discipline as the WAL adapter — the no-steal gate simply
    holds back pages whose latest update is uncommitted, so their records
    survive the truncation.
    """

    def dirty_pages(self, manager) -> Tuple[int, ...]:
        return tuple(sorted(manager.dirty_pages))

    def prepare(self, manager) -> Dict[str, int]:
        return manager.checkpoint(flush=True)

    def volume(self, manager) -> int:
        return sum(manager.log_lengths().values())


class RedoOnlyCheckpointAdapter(FuzzyCheckpoint):
    """Redo-only WAL: flush committed pages, truncate the sequential log."""

    def dirty_pages(self, manager) -> Tuple[int, ...]:
        return tuple(sorted(manager.dirty_pages))

    def prepare(self, manager) -> Dict[str, int]:
        return manager.checkpoint(flush=True)

    def volume(self, manager) -> int:
        return sum(manager.log_lengths().values())


class ShadowCheckpointAdapter(SnapshotCheckpoint):
    """Shadow page table: the committed root is the snapshot; GC slots."""

    def prepare(self, manager) -> Dict[str, int]:
        return manager.collect_garbage()

    def volume(self, manager) -> int:
        return manager.garbage_slots()


class VersionCheckpointAdapter(QuiescentCheckpoint):
    """Version selection: compact the unbounded commit-order file.

    Quiescent by necessity: rewriting both blocks of a page to the
    current winner destroys any uncommitted block, which is only garbage
    when no transaction is active.
    """

    def prepare(self, manager) -> Dict[str, int]:
        return manager.compact_commit_order()

    def volume(self, manager) -> int:
        return manager.stable.file_length("commit_order")


class OverwriteCheckpointAdapter(FuzzyCheckpoint):
    """Overwriting: prune transaction lists down to in-doubt tids."""

    def prepare(self, manager) -> Dict[str, int]:
        return manager.compact_transaction_lists()

    def volume(self, manager) -> int:
        stable = manager.stable
        return (
            stable.file_length("scratch")
            + stable.file_length("committed_txns")
            + stable.file_length("applied_txns")
        )


class DifferentialCheckpointAdapter(SnapshotCheckpoint):
    """Differential files: the merge into a new base is the checkpoint."""

    def prepare(self, manager) -> Dict[str, int]:
        return {"base_tuples": manager.merge()}

    def volume(self, manager) -> int:
        stable = manager.stable
        a, d = manager.differential_sizes()
        return a + d + stable.file_length("diff_commits")


_ADAPTERS = {
    "command-logging": CommandLoggingCheckpointAdapter,
    "distributed-wal": WalCheckpointAdapter,
    "redo-only-wal": RedoOnlyCheckpointAdapter,
    "shadow-page-table": ShadowCheckpointAdapter,
    "version-selection": VersionCheckpointAdapter,
    "overwriting": OverwriteCheckpointAdapter,
    "differential-files": DifferentialCheckpointAdapter,
}


def adapter_for(manager):
    """The checkpoint adapter for ``manager``, honoring its declaration."""
    if getattr(manager, "checkpoint_unsupported", False):
        raise CheckpointUnsupported(
            f"{manager.name!r} declares checkpoint_unsupported"
        )
    adapter_cls = _ADAPTERS.get(manager.name)
    if adapter_cls is None:
        raise CheckpointUnsupported(
            f"no checkpoint adapter for architecture {manager.name!r}"
        )
    declared = getattr(manager, "checkpoint_policy", None)
    if declared is not None and not issubclass(adapter_cls, declared):
        raise CheckpointError(
            f"{manager.name!r} declares {declared.__name__} but its adapter "
            f"is {adapter_cls.__name__}"
        )
    return adapter_cls()


def recovery_volume(manager) -> int:
    """Recovery-data records a restart of ``manager`` would scan now."""
    return adapter_for(manager).volume(manager)
