"""Traced experiment runs: ``repro trace`` and ``repro trace-diff``.

Glue between the pure recorder/analysis layer (:mod:`repro.trace`) and
the experiment runner: build a seeded workload on one of the registered
architectures, attach a tracer, and hand back both the usual
:class:`~repro.metrics.RunResult` and the span-level view — the mean
phase breakdown, the critical resource, and exporters' input.

``trace_diff`` runs the *same* configuration and workload under two
architectures and attributes their mean completion-time gap phase by
phase; because the breakdown partitions each completion window exactly,
the per-phase deltas sum to the gap (this is how a Table 12 comparison
is explained, not just measured).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.runner import (
    CONFIGURATIONS,
    Configuration,
    ExperimentSettings,
    run_configuration,
)
from repro.metrics.collectors import RunResult
from repro.registry import SIM_ARCHITECTURES, machine_overrides
from repro.trace import (
    Tracer,
    aggregate_breakdown,
    completion_percentiles,
    critical_resource,
    diff_breakdowns,
)

__all__ = ["SIM_ARCHITECTURES", "TracedRun", "render_diff", "run_traced", "trace_diff"]


@dataclass
class TracedRun:
    """One traced run: the usual metrics plus the span-level view."""

    architecture: str
    configuration: str
    result: RunResult
    tracer: Tracer
    #: Mean phase breakdown over committed transactions; sums to the mean
    #: completion time.
    breakdown: Dict[str, float]
    #: The phase most of the completion time went to.
    critical: Optional[str]
    #: Exact completion percentiles recomputed from the trace windows
    #: (equal to ``result.completion_percentiles`` — asserted in tests).
    percentiles: Dict[str, float]


def run_traced(
    arch: str,
    configuration: str = "parallel-random",
    settings: Optional[ExperimentSettings] = None,
) -> TracedRun:
    """Run ``arch`` under ``configuration`` with a tracer attached."""
    if arch not in SIM_ARCHITECTURES:
        raise ValueError(
            f"unknown architecture {arch!r}; pick from {sorted(SIM_ARCHITECTURES)}"
        )
    config = _configuration(configuration)
    tracer = Tracer()
    result = run_configuration(
        config,
        SIM_ARCHITECTURES[arch],
        settings=settings,
        machine_overrides=_machine_overrides(arch),
        tracer=tracer,
    )
    breakdown = aggregate_breakdown(tracer)
    return TracedRun(
        architecture=arch,
        configuration=config.name,
        result=result,
        tracer=tracer,
        breakdown=breakdown,
        critical=critical_resource(breakdown),
        percentiles=completion_percentiles(tracer),
    )


def _machine_overrides(arch: str) -> Optional[dict]:
    # Per-architecture conventions (e.g. version pairs halve the database
    # to fit the same drives, Section 4.2.5) live in the registry.
    return machine_overrides(arch) or None


def _configuration(name: str) -> Configuration:
    if name not in CONFIGURATIONS:
        raise ValueError(
            f"unknown configuration {name!r}; pick from {sorted(CONFIGURATIONS)}"
        )
    return CONFIGURATIONS[name]


def trace_diff(
    arch_a: str,
    arch_b: str,
    configuration: str = "parallel-random",
    settings: Optional[ExperimentSettings] = None,
) -> Tuple[TracedRun, TracedRun, List[Tuple[str, float, float, float]]]:
    """Attribute the completion-time gap between two architectures.

    Both runs share the workload and machine seed (the experiments'
    common-random-numbers discipline), so the phase deltas are a paired
    comparison, and they sum to the mean completion-time difference.
    """
    run_a = run_traced(arch_a, configuration, settings)
    run_b = run_traced(arch_b, configuration, settings)
    rows = diff_breakdowns(run_a.breakdown, run_b.breakdown)
    return run_a, run_b, rows


def render_diff(
    run_a: TracedRun, run_b: TracedRun, rows: List[Tuple[str, float, float, float]]
) -> str:
    """The trace-diff attribution as an aligned terminal table."""
    total_a = sum(run_a.breakdown.values())
    total_b = sum(run_b.breakdown.values())
    lines = [
        f"mean completion: {run_a.architecture}={total_a:.1f} ms, "
        f"{run_b.architecture}={total_b:.1f} ms, delta={total_b - total_a:+.1f} ms",
        f"{'phase':<14} {run_a.architecture:>12} {run_b.architecture:>12} {'delta':>10}",
    ]
    for phase, ms_a, ms_b, delta in rows:
        lines.append(f"{phase:<14} {ms_a:>9.1f} ms {ms_b:>9.1f} ms {delta:>+7.1f} ms")
    lines.append(
        f"{'total':<14} {total_a:>9.1f} ms {total_b:>9.1f} ms "
        f"{total_b - total_a:>+7.1f} ms"
    )
    return "\n".join(lines)
