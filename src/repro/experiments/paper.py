"""The paper's published numbers, table by table.

Used by the benchmark harness to print measured-vs-paper comparisons and by
tests that check the reproduction preserves the paper's *shape* (orderings,
ratios, crossovers).  Keys follow the paper's row/column labels; execution
times are ms/page, completion times ms.
"""

from __future__ import annotations

__all__ = ["PAPER", "CONFIG_NAMES"]

CONFIG_NAMES = (
    "conventional-random",
    "parallel-random",
    "conventional-sequential",
    "parallel-sequential",
)

PAPER = {
    # Table 1: impact of (logical) logging, one log disk.
    "table1": {
        "exec_without_log": {
            "conventional-random": 18.0,
            "parallel-random": 16.6,
            "conventional-sequential": 11.0,
            "parallel-sequential": 1.9,
        },
        "exec_with_log": {
            "conventional-random": 17.9,
            "parallel-random": 16.5,
            "conventional-sequential": 11.4,
            "parallel-sequential": 2.0,
        },
        "completion_without_log": {
            "conventional-random": 7398.4,
            "parallel-random": 6476.0,
            "conventional-sequential": 4016.5,
            "parallel-sequential": 758.1,
        },
        "completion_with_log": {
            "conventional-random": 7543.2,
            "parallel-random": 6649.9,
            "conventional-sequential": 4333.5,
            "parallel-sequential": 862.2,
        },
    },
    # Table 2: log-disk utilization with one log processor.
    "table2": {
        "conventional-random": 0.02,
        "parallel-random": 0.02,
        "conventional-sequential": 0.02,
        "parallel-sequential": 0.13,
    },
    # Table 3: physical logging, 75 QPs, 2 parallel-access disks, 150 frames.
    # exec[(n_log_disks, policy)] and completion[(n_log_disks, policy)].
    "table3": {
        "exec": {
            (1, "cyclic"): 5.1, (1, "random"): 5.1, (1, "qp_mod"): 5.1, (1, "txn_mod"): 5.1,
            (2, "cyclic"): 2.5, (2, "random"): 2.6, (2, "qp_mod"): 2.6, (2, "txn_mod"): 2.7,
            (3, "cyclic"): 1.7, (3, "random"): 1.8, (3, "qp_mod"): 1.8, (3, "txn_mod"): 2.1,
            (4, "cyclic"): 1.5, (4, "random"): 1.5, (4, "qp_mod"): 1.5, (4, "txn_mod"): 2.0,
            (5, "cyclic"): 1.3, (5, "random"): 1.4, (5, "qp_mod"): 1.3, (5, "txn_mod"): 2.0,
        },
        "completion": {
            (1, "cyclic"): 4518.1, (1, "random"): 4518.1, (1, "qp_mod"): 4518.1, (1, "txn_mod"): 4518.1,
            (2, "cyclic"): 1999.5, (2, "random"): 2104.3, (2, "qp_mod"): 2232.0, (2, "txn_mod"): 2165.4,
            (3, "cyclic"): 1078.9, (3, "random"): 1137.2, (3, "qp_mod"): 1135.7, (3, "txn_mod"): 1381.8,
            (4, "cyclic"): 830.7, (4, "random"): 854.6, (4, "qp_mod"): 837.8, (4, "txn_mod"): 1137.5,
            (5, "cyclic"): 716.3, (5, "random"): 741.7, (5, "qp_mod"): 714.1, (5, "txn_mod"): 1128.4,
        },
        "exec_without_logging": 0.9,
        "completion_without_logging": 430.6,
    },
    # Table 4: impact of the shadow mechanism (PT buffer = 10).
    "table4": {
        "exec_bare": {
            "conventional-random": 18.00,
            "parallel-random": 16.62,
            "conventional-sequential": 11.01,
            "parallel-sequential": 1.92,
        },
        "exec_1ptp": {
            "conventional-random": 20.51,
            "parallel-random": 20.49,
            "conventional-sequential": 10.98,
            "parallel-sequential": 1.94,
        },
        "exec_2ptp": {
            "conventional-random": 17.99,
            "parallel-random": 16.69,
            "conventional-sequential": 10.99,
            "parallel-sequential": 1.93,
        },
        "completion_bare": {
            "conventional-random": 7398.41,
            "parallel-random": 6476.04,
            "conventional-sequential": 4016.46,
            "parallel-sequential": 758.06,
        },
        "completion_1ptp": {
            "conventional-random": 8367.19,
            "parallel-random": 8352.91,
            "conventional-sequential": 4066.86,
            "parallel-sequential": 829.34,
        },
        "completion_2ptp": {
            "conventional-random": 7758.92,
            "parallel-random": 6962.23,
            "conventional-sequential": 4061.19,
            "parallel-sequential": 816.29,
        },
    },
    # Table 5: average utilization of data and page-table disks.
    "table5": {
        "bare_data": {
            "conventional-random": 0.99,
            "parallel-random": 1.00,
            "conventional-sequential": 0.75,
            "parallel-sequential": 0.92,
        },
        "1ptp_data": {
            "conventional-random": 0.86,
            "parallel-random": 0.85,
            "conventional-sequential": 0.75,
            "parallel-sequential": 0.90,
        },
        "1ptp_pt": {
            "conventional-random": 1.00,
            "parallel-random": 1.00,
            "conventional-sequential": 0.06,
            "parallel-sequential": 0.34,
        },
        "2ptp_pt": {
            "conventional-random": 0.60,
            "parallel-random": 0.64,
            "conventional-sequential": 0.03,
            "parallel-sequential": 0.16,
        },
    },
    # Table 6: execution time/page, 1 PT processor, random transactions.
    "table6": {
        "conventional": {"bare": 18.00, 10: 20.51, 25: 18.02, 50: 18.01},
        "parallel": {"bare": 16.62, 10: 20.49, 25: 17.18, 50: 16.70},
    },
    # Table 7: execution time/page, sequential transactions.
    "table7": {
        "conventional": {
            "bare": 11.01, "clustered": 10.98, "scrambled": 20.74, "overwriting": 24.08,
        },
        "parallel": {
            "bare": 1.92, "clustered": 1.94, "scrambled": 18.54, "overwriting": 2.31,
        },
    },
    # Table 8: execution time/page, random transactions.
    "table8": {
        "conventional": {"bare": 18.00, "thru_pt": 20.51, "overwriting": 26.94},
        "parallel": {"bare": 16.62, "thru_pt": 20.49, "overwriting": 21.65},
    },
    # Table 9: impact of the differential-file mechanism.
    "table9": {
        "exec_bare": {
            "conventional-random": 18.0,
            "parallel-random": 16.6,
            "conventional-sequential": 11.0,
            "parallel-sequential": 1.9,
        },
        "exec_basic": {
            "conventional-random": 37.8,
            "parallel-random": 37.7,
            "conventional-sequential": 37.6,
            "parallel-sequential": 37.6,
        },
        "exec_optimal": {
            "conventional-random": 19.2,
            "parallel-random": 18.0,
            "conventional-sequential": 17.8,
            "parallel-sequential": 13.9,
        },
        "completion_basic": {
            "conventional-random": 11589.8,
            "parallel-random": 11565.1,
            "conventional-sequential": 11443.7,
            "parallel-sequential": 11368.8,
        },
        "completion_optimal": {
            "conventional-random": 6634.3,
            "parallel-random": 6207.6,
            "conventional-sequential": 5795.5,
            "parallel-sequential": 4573.5,
        },
    },
    # Table 10: effect of the output fraction (optimal strategy).
    "table10": {
        "conventional-random": {"bare": 18.0, 0.10: 19.2, 0.20: 19.2, 0.50: 20.3},
        "parallel-random": {"bare": 16.6, 0.10: 18.0, 0.20: 18.0, 0.50: 18.9},
        "conventional-sequential": {"bare": 11.0, 0.10: 17.8, 0.20: 17.9, 0.50: 17.8},
        "parallel-sequential": {"bare": 1.9, 0.10: 13.9, 0.20: 13.9, 0.50: 13.6},
    },
    # Table 11: effect of the size of the differential files.
    "table11": {
        "conventional-random": {"bare": 18.0, 0.10: 19.2, 0.15: 24.8, 0.20: 37.0},
        "parallel-random": {"bare": 16.6, 0.10: 18.0, 0.15: 24.4, 0.20: 37.0},
        "conventional-sequential": {"bare": 11.0, 0.10: 17.8, 0.15: 25.8, 0.20: 39.6},
        "parallel-sequential": {"bare": 1.9, 0.10: 13.9, 0.15: 23.5, 0.20: 36.4},
    },
    # Table 12: grand comparison, execution time per page.
    "table12": {
        "conventional-random": {
            "bare": 18.0, "logging": 17.9, "shadow_b10": 20.5, "shadow_b50": 18.0,
            "shadow_2ptp": 18.0, "scrambled": 20.5, "overwriting": 26.9, "differential": 19.2,
        },
        "parallel-random": {
            "bare": 16.6, "logging": 16.5, "shadow_b10": 20.5, "shadow_b50": 16.7,
            "shadow_2ptp": 16.7, "scrambled": 20.5, "overwriting": 21.6, "differential": 18.0,
        },
        "conventional-sequential": {
            "bare": 11.0, "logging": 11.4, "shadow_b10": 11.0, "shadow_b50": 11.0,
            "shadow_2ptp": 11.0, "scrambled": 20.7, "overwriting": 24.1, "differential": 17.8,
        },
        "parallel-sequential": {
            "bare": 1.9, "logging": 2.0, "shadow_b10": 1.9, "shadow_b50": 1.9,
            "shadow_2ptp": 1.9, "scrambled": 18.5, "overwriting": 2.3, "differential": 13.9,
        },
    },
}
