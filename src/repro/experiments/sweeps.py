"""Generic parameter sweeps over machine / workload / architecture knobs.

A sweep runs the same (configuration, architecture) cell while varying one
named parameter and returns one row per value — the building block behind
the sensitivity ablations (cache frames, MPL, read-ahead) and handy for
users exploring their own what-ifs::

    from repro.experiments import CONFIGURATIONS
    from repro.experiments.sweeps import sweep_machine

    rows = sweep_machine(
        CONFIGURATIONS["parallel-sequential"],
        field="cache_frames",
        values=(50, 100, 200),
    )
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.core.base import RecoveryArchitecture
from repro.experiments.runner import (
    Configuration,
    ExperimentSettings,
    run_configuration,
)

__all__ = ["sweep_machine", "sweep_workload"]


def _row(value, result) -> Dict:
    return {
        "value": value,
        "exec_ms_per_page": round(result.execution_time_per_page, 2),
        "completion_ms": round(result.mean_completion_ms, 1),
        "qp_util": round(result.utilization("qp"), 2),
        "data_disk_util": round(result.utilization("data_disks"), 2),
        "restarts": result.n_restarts,
    }


def sweep_machine(
    configuration: Configuration,
    field: str,
    values: Iterable,
    architecture: Optional[Callable[[], RecoveryArchitecture]] = None,
    settings: Optional[ExperimentSettings] = None,
) -> List[Dict]:
    """One run per value of ``MachineConfig.<field>``; returns row dicts."""
    rows = []
    for value in values:
        result = run_configuration(
            configuration,
            architecture,
            settings,
            machine_overrides={field: value},
        )
        rows.append(_row(value, result))
    return rows


def sweep_workload(
    configuration: Configuration,
    field: str,
    values: Iterable,
    architecture: Optional[Callable[[], RecoveryArchitecture]] = None,
    settings: Optional[ExperimentSettings] = None,
) -> List[Dict]:
    """One run per value of ``WorkloadConfig.<field>``; returns row dicts."""
    rows = []
    for value in values:
        result = run_configuration(
            configuration,
            architecture,
            settings,
            workload_overrides={field: value},
        )
        rows.append(_row(value, result))
    return rows
