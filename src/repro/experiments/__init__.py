"""Per-table experiment configurations and runners.

Every table (1-12) of the paper's evaluation has a function here that runs
the corresponding simulations and returns structured rows; the benchmark
harness under ``benchmarks/`` prints them next to the paper's numbers.
"""

from repro.experiments.paper import PAPER
from repro.experiments.runner import (
    CONFIGURATIONS,
    Configuration,
    ExperimentSettings,
    run_configuration,
)
from repro.experiments.tables import (
    ablation_checkpointing,
    ablation_disk_scheduling,
    ablation_hotspot,
    ablation_interconnect,
    ablation_overwriting_variants,
    ablation_version_selection,
    table1_logging_impact,
    table2_log_utilization,
    table3_parallel_logging,
    table4_shadow_impact,
    table5_shadow_utilization,
    table6_pt_buffer,
    table7_sequential_shadow,
    table8_random_overwriting,
    table9_differential_impact,
    table10_output_fraction,
    table11_differential_size,
    table12_comparison,
)

__all__ = [
    "CONFIGURATIONS",
    "Configuration",
    "ExperimentSettings",
    "PAPER",
    "ablation_checkpointing",
    "ablation_disk_scheduling",
    "ablation_hotspot",
    "ablation_interconnect",
    "ablation_overwriting_variants",
    "ablation_version_selection",
    "run_configuration",
    "table1_logging_impact",
    "table2_log_utilization",
    "table3_parallel_logging",
    "table4_shadow_impact",
    "table5_shadow_utilization",
    "table6_pt_buffer",
    "table7_sequential_shadow",
    "table8_random_overwriting",
    "table9_differential_impact",
    "table10_output_fraction",
    "table11_differential_size",
    "table12_comparison",
]
