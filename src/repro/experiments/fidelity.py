"""Fidelity scoring: how close is the reproduction to the paper, overall?

``fidelity_summary`` runs a set of paper tables, pairs every measured cell
with its published counterpart, and reports per-table and overall mean
absolute relative error — a single number tracking whether model changes
move the reproduction toward or away from the paper.  Exposed as
``python -m repro fidelity``.

Not every cell pairs automatically (Table 3's grid and Table 5's
utilizations have bespoke layouts), so the summary covers the execution
-time tables where rows and columns line up one-to-one; that is already
40+ cells across eight tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.paper import PAPER
from repro.experiments.runner import ExperimentSettings
from repro.experiments.tables import (
    table1_logging_impact,
    table2_log_utilization,
    table4_shadow_impact,
    table6_pt_buffer,
    table7_sequential_shadow,
    table8_random_overwriting,
    table9_differential_impact,
    table10_output_fraction,
    table11_differential_size,
    table12_comparison,
)

__all__ = ["CellComparison", "FidelityReport", "fidelity_summary"]


@dataclass(frozen=True)
class CellComparison:
    table: str
    cell: str
    measured: float
    paper: float

    @property
    def relative_error(self) -> float:
        if self.paper == 0:
            return 0.0 if self.measured == 0 else 1.0
        return abs(self.measured - self.paper) / abs(self.paper)


@dataclass
class FidelityReport:
    cells: List[CellComparison]

    @property
    def mean_relative_error(self) -> float:
        if not self.cells:
            return 0.0
        return sum(cell.relative_error for cell in self.cells) / len(self.cells)

    def by_table(self) -> Dict[str, float]:
        groups: Dict[str, List[float]] = {}
        for cell in self.cells:
            groups.setdefault(cell.table, []).append(cell.relative_error)
        return {
            table: sum(errors) / len(errors) for table, errors in sorted(groups.items())
        }

    def worst(self, n: int = 5) -> List[CellComparison]:
        return sorted(self.cells, key=lambda c: -c.relative_error)[:n]

    def render(self) -> str:
        lines = [
            f"fidelity over {len(self.cells)} paper cells: "
            f"mean |relative error| = {self.mean_relative_error:.1%}",
            "",
            "per table:",
        ]
        for table, error in self.by_table().items():
            lines.append(f"  {table:<8} {error:.1%}")
        lines.append("")
        lines.append("worst cells:")
        for cell in self.worst():
            lines.append(
                f"  {cell.table} {cell.cell}: measured {cell.measured:.2f} "
                f"vs paper {cell.paper:.2f} ({cell.relative_error:.0%})"
            )
        return "\n".join(lines)


# Each entry: table name, runner, and a pairing function
# rows -> [(cell label, measured, paper)].
def _pairs_table1(rows) -> List[Tuple[str, float, float]]:
    out = []
    for row in rows:
        name = row["configuration"]
        out.append((f"{name}/without", row["exec_without_log"], PAPER["table1"]["exec_without_log"][name]))
        out.append((f"{name}/with", row["exec_with_log"], PAPER["table1"]["exec_with_log"][name]))
    return out


def _pairs_table2(rows):
    return [
        (row["configuration"], row["log_disk_utilization"], PAPER["table2"][row["configuration"]])
        for row in rows
    ]


def _pairs_table4(rows):
    out = []
    for row in rows:
        name = row["configuration"]
        for column, key in (("exec_bare", "exec_bare"), ("exec_1ptp", "exec_1ptp"), ("exec_2ptp", "exec_2ptp")):
            out.append((f"{name}/{column}", row[column], PAPER["table4"][key][name]))
    return out


def _pairs_table6(rows):
    out = []
    for row in rows:
        kind = "conventional" if row["configuration"].startswith("conv") else "parallel"
        paper_row = PAPER["table6"][kind]
        out.append((f"{kind}/bare", row["bare"], paper_row["bare"]))
        for size in (10, 25, 50):
            out.append((f"{kind}/buf{size}", row[f"buffer_{size}"], paper_row[size]))
    return out


def _pairs_table7(rows):
    out = []
    for row in rows:
        kind = "conventional" if row["configuration"].startswith("conv") else "parallel"
        paper_row = PAPER["table7"][kind]
        for column in ("bare", "clustered", "scrambled", "overwriting"):
            out.append((f"{kind}/{column}", row[column], paper_row[column]))
    return out


def _pairs_table8(rows):
    out = []
    for row in rows:
        kind = "conventional" if row["configuration"].startswith("conv") else "parallel"
        paper_row = PAPER["table8"][kind]
        for column in ("bare", "thru_pt", "overwriting"):
            out.append((f"{kind}/{column}", row[column], paper_row[column]))
    return out


def _pairs_table9(rows):
    out = []
    for row in rows:
        name = row["configuration"]
        for column in ("exec_bare", "exec_basic", "exec_optimal"):
            out.append((f"{name}/{column}", row[column], PAPER["table9"][column][name]))
    return out


def _pairs_table10(rows):
    out = []
    for row in rows:
        name = row["configuration"]
        paper_row = PAPER["table10"][name]
        out.append((f"{name}/bare", row["bare"], paper_row["bare"]))
        for fraction in (0.10, 0.20, 0.50):
            out.append(
                (
                    f"{name}/{int(fraction * 100)}pct",
                    row[f"output_{int(fraction * 100)}pct"],
                    paper_row[fraction],
                )
            )
    return out


def _pairs_table11(rows):
    out = []
    for row in rows:
        name = row["configuration"]
        paper_row = PAPER["table11"][name]
        out.append((f"{name}/bare", row["bare"], paper_row["bare"]))
        for size in (0.10, 0.15, 0.20):
            out.append(
                (
                    f"{name}/{int(size * 100)}pct",
                    row[f"size_{int(size * 100)}pct"],
                    paper_row[size],
                )
            )
    return out


def _pairs_table12(rows):
    out = []
    for row in rows:
        name = row["configuration"]
        paper_row = PAPER["table12"][name]
        for column in paper_row:
            out.append((f"{name}/{column}", row[column], paper_row[column]))
    return out


_TABLES: Tuple[Tuple[str, Callable, Callable], ...] = (
    ("table1", table1_logging_impact, _pairs_table1),
    ("table2", table2_log_utilization, _pairs_table2),
    ("table4", table4_shadow_impact, _pairs_table4),
    ("table6", table6_pt_buffer, _pairs_table6),
    ("table7", table7_sequential_shadow, _pairs_table7),
    ("table8", table8_random_overwriting, _pairs_table8),
    ("table9", table9_differential_impact, _pairs_table9),
    ("table10", table10_output_fraction, _pairs_table10),
    ("table11", table11_differential_size, _pairs_table11),
    ("table12", table12_comparison, _pairs_table12),
)


def fidelity_summary(
    settings: Optional[ExperimentSettings] = None,
    tables: Optional[Tuple[str, ...]] = None,
) -> FidelityReport:
    """Run the pairable tables and score measured vs paper cell by cell."""
    settings = settings or ExperimentSettings()
    cells: List[CellComparison] = []
    for name, runner, pairing in _TABLES:
        if tables is not None and name not in tables:
            continue
        result = runner(settings)
        for label, measured, paper in pairing(result["rows"]):
            cells.append(CellComparison(name, label, measured, paper))
    return FidelityReport(cells)
