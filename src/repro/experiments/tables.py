"""One function per paper table (plus the ablations the text describes).

Each function runs the simulations for its table and returns a dict with a
``"rows"`` list (one dict per table row, measured values) and a ``"paper"``
reference to the published numbers.  ``render(result)`` on any of them
produces an aligned plain-text table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.bare import BareArchitecture
from repro.core.differential import DifferentialConfig, DifferentialFileArchitecture
from repro.core.modern import CommandLoggingArchitecture, RedoOnlyWalArchitecture
from repro.core.logging import (
    FragmentRouting,
    LoggingConfig,
    LogMode,
    ParallelLoggingArchitecture,
    SelectionPolicy,
)
from repro.core.shadow import (
    OverwritingArchitecture,
    OverwritingMode,
    PageTableShadowArchitecture,
    ShadowConfig,
    VersionSelectionArchitecture,
)
from repro.experiments.paper import CONFIG_NAMES, PAPER
from repro.experiments.runner import (
    CONFIGURATIONS,
    ExperimentSettings,
    run_configuration,
)
from repro.metrics.report import format_table

__all__ = [
    "ablation_checkpointing",
    "ablation_disk_scheduling",
    "ablation_hotspot",
    "ablation_interconnect",
    "ablation_overwriting_variants",
    "ablation_version_selection",
    "render",
    "table1_logging_impact",
    "table2_log_utilization",
    "table3_parallel_logging",
    "table4_shadow_impact",
    "table5_shadow_utilization",
    "table6_pt_buffer",
    "table7_sequential_shadow",
    "table8_random_overwriting",
    "table9_differential_impact",
    "table10_output_fraction",
    "table11_differential_size",
    "table12_comparison",
]

#: Table 3 testbed: 75 QPs, 2 parallel-access data disks, 150 cache frames.
TABLE3_MACHINE = {
    "n_query_processors": 75,
    "cache_frames": 150,
    "prefetch_window": 48,
}


def _settings(settings: Optional[ExperimentSettings]) -> ExperimentSettings:
    return settings or ExperimentSettings()


def render(result: Dict) -> str:
    """Render any table-function result as aligned text."""
    rows = result["rows"]
    headers = list(rows[0].keys())
    return format_table(
        headers,
        [[row[h] for h in headers] for row in rows],
        title=result.get("title"),
    )


# --------------------------------------------------------------------------- 1
def table1_logging_impact(settings: Optional[ExperimentSettings] = None) -> Dict:
    """Table 1: impact of (logical) logging with one log disk."""
    settings = _settings(settings)
    rows: List[Dict] = []
    for name in CONFIG_NAMES:
        config = CONFIGURATIONS[name]
        bare = run_configuration(config, None, settings)
        logged = run_configuration(
            config, lambda: ParallelLoggingArchitecture(LoggingConfig()), settings
        )
        rows.append(
            {
                "configuration": name,
                "exec_without_log": round(bare.execution_time_per_page, 2),
                "exec_with_log": round(logged.execution_time_per_page, 2),
                "completion_without_log": round(bare.mean_completion_ms, 1),
                "completion_with_log": round(logged.mean_completion_ms, 1),
            }
        )
    return {"title": "Table 1. Impact of Logging", "rows": rows, "paper": PAPER["table1"]}


# --------------------------------------------------------------------------- 2
def table2_log_utilization(settings: Optional[ExperimentSettings] = None) -> Dict:
    """Table 2: log-disk utilization with one log processor."""
    settings = _settings(settings)
    rows = []
    for name in CONFIG_NAMES:
        result = run_configuration(
            CONFIGURATIONS[name],
            lambda: ParallelLoggingArchitecture(LoggingConfig()),
            settings,
        )
        rows.append(
            {
                "configuration": name,
                "log_disk_utilization": round(result.utilization("log_disks"), 3),
                "paper": PAPER["table2"][name],
            }
        )
    return {
        "title": "Table 2. Log Characteristics (one log processor)",
        "rows": rows,
        "paper": PAPER["table2"],
    }


# --------------------------------------------------------------------------- 3
def table3_parallel_logging(
    settings: Optional[ExperimentSettings] = None,
    n_log_disks=(1, 2, 3, 4, 5),
) -> Dict:
    """Table 3: physical logging, 1-5 log disks x 4 selection policies.

    Testbed: 75 query processors, 2 parallel-access data disks, 150 cache
    frames, sequential transactions.
    """
    settings = _settings(settings)
    config = CONFIGURATIONS["parallel-sequential"]
    policies = [
        SelectionPolicy.CYCLIC,
        SelectionPolicy.RANDOM,
        SelectionPolicy.QP_MOD,
        SelectionPolicy.TXN_MOD,
    ]
    rows = []
    for n in n_log_disks:
        row: Dict = {"n_log_disks": n}
        for policy in policies:
            result = run_configuration(
                config,
                lambda: ParallelLoggingArchitecture(
                    LoggingConfig(
                        n_log_processors=n,
                        mode=LogMode.PHYSICAL,
                        selection=policy,
                    )
                ),
                settings,
                machine_overrides=TABLE3_MACHINE,
            )
            row[f"exec_{policy.value}"] = round(result.execution_time_per_page, 2)
            row[f"compl_{policy.value}"] = round(result.mean_completion_ms, 1)
        rows.append(row)
    bare = run_configuration(config, None, settings, machine_overrides=TABLE3_MACHINE)
    rows.append(
        {
            "n_log_disks": "w/o logging",
            **{
                f"exec_{p.value}": round(bare.execution_time_per_page, 2)
                for p in policies
            },
            **{
                f"compl_{p.value}": round(bare.mean_completion_ms, 1)
                for p in policies
            },
        }
    )
    return {
        "title": "Table 3. Parallel Logging and Selection Algorithms "
        "(75 QPs, 2 parallel-access disks, 150 frames)",
        "rows": rows,
        "paper": PAPER["table3"],
    }


# --------------------------------------------------------------------------- 4
def table4_shadow_impact(settings: Optional[ExperimentSettings] = None) -> Dict:
    """Table 4: impact of the shadow mechanism, 1 vs 2 PT processors."""
    settings = _settings(settings)
    rows = []
    for name in CONFIG_NAMES:
        config = CONFIGURATIONS[name]
        bare = run_configuration(config, None, settings)
        one = run_configuration(
            config,
            lambda: PageTableShadowArchitecture(ShadowConfig(n_pt_processors=1)),
            settings,
        )
        two = run_configuration(
            config,
            lambda: PageTableShadowArchitecture(ShadowConfig(n_pt_processors=2)),
            settings,
        )
        rows.append(
            {
                "configuration": name,
                "exec_bare": round(bare.execution_time_per_page, 2),
                "exec_1ptp": round(one.execution_time_per_page, 2),
                "exec_2ptp": round(two.execution_time_per_page, 2),
                "completion_bare": round(bare.mean_completion_ms, 1),
                "completion_1ptp": round(one.mean_completion_ms, 1),
                "completion_2ptp": round(two.mean_completion_ms, 1),
            }
        )
    return {
        "title": "Table 4. Impact of the Shadow Mechanism",
        "rows": rows,
        "paper": PAPER["table4"],
    }


# --------------------------------------------------------------------------- 5
def table5_shadow_utilization(settings: Optional[ExperimentSettings] = None) -> Dict:
    """Table 5: average utilization of data and page-table disks."""
    settings = _settings(settings)
    rows = []
    for name in CONFIG_NAMES:
        config = CONFIGURATIONS[name]
        bare = run_configuration(config, None, settings)
        one = run_configuration(
            config,
            lambda: PageTableShadowArchitecture(ShadowConfig(n_pt_processors=1)),
            settings,
        )
        two = run_configuration(
            config,
            lambda: PageTableShadowArchitecture(ShadowConfig(n_pt_processors=2)),
            settings,
        )
        rows.append(
            {
                "configuration": name,
                "bare_data": round(bare.utilization("data_disks"), 2),
                "1ptp_data": round(one.utilization("data_disks"), 2),
                "1ptp_pt": round(one.utilization("pt_disks"), 2),
                "2ptp_data": round(two.utilization("data_disks"), 2),
                "2ptp_pt": round(two.utilization("pt_disks"), 2),
            }
        )
    return {
        "title": "Table 5. Average Utilization of Data and Page-Table Disks",
        "rows": rows,
        "paper": PAPER["table5"],
    }


# --------------------------------------------------------------------------- 6
def table6_pt_buffer(
    settings: Optional[ExperimentSettings] = None, buffer_sizes=(10, 25, 50)
) -> Dict:
    """Table 6: page-table buffer size, 1 PT processor, random txns."""
    settings = _settings(settings)
    rows = []
    for name in ("conventional-random", "parallel-random"):
        config = CONFIGURATIONS[name]
        row: Dict = {"configuration": name}
        bare = run_configuration(config, None, settings)
        row["bare"] = round(bare.execution_time_per_page, 2)
        for size in buffer_sizes:
            result = run_configuration(
                config,
                lambda: PageTableShadowArchitecture(
                    ShadowConfig(pt_buffer_pages=size)
                ),
                settings,
            )
            row[f"buffer_{size}"] = round(result.execution_time_per_page, 2)
        rows.append(row)
    return {
        "title": "Table 6. Execution Time per Page (1 Page-Table Processor)",
        "rows": rows,
        "paper": PAPER["table6"],
    }


# --------------------------------------------------------------------------- 7
def table7_sequential_shadow(settings: Optional[ExperimentSettings] = None) -> Dict:
    """Table 7: sequential txns — clustered / scrambled / overwriting."""
    settings = _settings(settings)
    rows = []
    for name in ("conventional-sequential", "parallel-sequential"):
        config = CONFIGURATIONS[name]
        bare = run_configuration(config, None, settings)
        clustered = run_configuration(
            config,
            lambda: PageTableShadowArchitecture(ShadowConfig(clustered=True)),
            settings,
        )
        scrambled = run_configuration(
            config,
            lambda: PageTableShadowArchitecture(ShadowConfig(clustered=False)),
            settings,
        )
        overwriting = run_configuration(
            config, lambda: OverwritingArchitecture(), settings
        )
        rows.append(
            {
                "configuration": name,
                "bare": round(bare.execution_time_per_page, 2),
                "clustered": round(clustered.execution_time_per_page, 2),
                "scrambled": round(scrambled.execution_time_per_page, 2),
                "overwriting": round(overwriting.execution_time_per_page, 2),
            }
        )
    return {
        "title": "Table 7. Execution Time per Page (Sequential Transactions)",
        "rows": rows,
        "paper": PAPER["table7"],
    }


# --------------------------------------------------------------------------- 8
def table8_random_overwriting(settings: Optional[ExperimentSettings] = None) -> Dict:
    """Table 8: random txns — thru page-table vs overwriting."""
    settings = _settings(settings)
    rows = []
    for name in ("conventional-random", "parallel-random"):
        config = CONFIGURATIONS[name]
        bare = run_configuration(config, None, settings)
        thru_pt = run_configuration(
            config, lambda: PageTableShadowArchitecture(ShadowConfig()), settings
        )
        overwriting = run_configuration(
            config, lambda: OverwritingArchitecture(), settings
        )
        rows.append(
            {
                "configuration": name,
                "bare": round(bare.execution_time_per_page, 2),
                "thru_pt": round(thru_pt.execution_time_per_page, 2),
                "overwriting": round(overwriting.execution_time_per_page, 2),
            }
        )
    return {
        "title": "Table 8. Execution Time per Page (Random Transactions)",
        "rows": rows,
        "paper": PAPER["table8"],
    }


# --------------------------------------------------------------------------- 9
def table9_differential_impact(settings: Optional[ExperimentSettings] = None) -> Dict:
    """Table 9: differential files, basic vs optimal query processing."""
    settings = _settings(settings)
    rows = []
    for name in CONFIG_NAMES:
        config = CONFIGURATIONS[name]
        bare = run_configuration(config, None, settings)
        basic = run_configuration(
            config,
            lambda: DifferentialFileArchitecture(DifferentialConfig(optimal=False)),
            settings,
        )
        optimal = run_configuration(
            config,
            lambda: DifferentialFileArchitecture(DifferentialConfig(optimal=True)),
            settings,
        )
        rows.append(
            {
                "configuration": name,
                "exec_bare": round(bare.execution_time_per_page, 2),
                "exec_basic": round(basic.execution_time_per_page, 2),
                "exec_optimal": round(optimal.execution_time_per_page, 2),
                "completion_bare": round(bare.mean_completion_ms, 1),
                "completion_basic": round(basic.mean_completion_ms, 1),
                "completion_optimal": round(optimal.mean_completion_ms, 1),
            }
        )
    return {
        "title": "Table 9. Impact of the Differential File Mechanism",
        "rows": rows,
        "paper": PAPER["table9"],
    }


# -------------------------------------------------------------------------- 10
def table10_output_fraction(
    settings: Optional[ExperimentSettings] = None, fractions=(0.10, 0.20, 0.50)
) -> Dict:
    """Table 10: effect of the output fraction (optimal strategy)."""
    settings = _settings(settings)
    rows = []
    for name in CONFIG_NAMES:
        config = CONFIGURATIONS[name]
        row: Dict = {"configuration": name}
        bare = run_configuration(config, None, settings)
        row["bare"] = round(bare.execution_time_per_page, 2)
        for fraction in fractions:
            result = run_configuration(
                config,
                lambda: DifferentialFileArchitecture(
                    DifferentialConfig(output_fraction=fraction)
                ),
                settings,
            )
            row[f"output_{int(fraction * 100)}pct"] = round(
                result.execution_time_per_page, 2
            )
        rows.append(row)
    return {
        "title": "Table 10. Effect of Output Fraction on Execution Time per Page",
        "rows": rows,
        "paper": PAPER["table10"],
    }


# -------------------------------------------------------------------------- 11
def table11_differential_size(
    settings: Optional[ExperimentSettings] = None, sizes=(0.10, 0.15, 0.20)
) -> Dict:
    """Table 11: effect of differential-file size (nonlinear degradation)."""
    settings = _settings(settings)
    rows = []
    for name in CONFIG_NAMES:
        config = CONFIGURATIONS[name]
        row: Dict = {"configuration": name}
        bare = run_configuration(config, None, settings)
        row["bare"] = round(bare.execution_time_per_page, 2)
        for size in sizes:
            result = run_configuration(
                config,
                lambda: DifferentialFileArchitecture(
                    DifferentialConfig(size_fraction=size)
                ),
                settings,
            )
            row[f"size_{int(size * 100)}pct"] = round(
                result.execution_time_per_page, 2
            )
        rows.append(row)
    return {
        "title": "Table 11. Effect of Size of Differential Files",
        "rows": rows,
        "paper": PAPER["table11"],
    }


# -------------------------------------------------------------------------- 12
def table12_comparison(settings: Optional[ExperimentSettings] = None) -> Dict:
    """Table 12: grand comparison of all recovery architectures."""
    settings = _settings(settings)
    architectures = {
        "bare": lambda: BareArchitecture(),
        "logging": lambda: ParallelLoggingArchitecture(LoggingConfig()),
        "shadow_b10": lambda: PageTableShadowArchitecture(
            ShadowConfig(pt_buffer_pages=10)
        ),
        "shadow_b50": lambda: PageTableShadowArchitecture(
            ShadowConfig(pt_buffer_pages=50)
        ),
        "shadow_2ptp": lambda: PageTableShadowArchitecture(
            ShadowConfig(n_pt_processors=2)
        ),
        "scrambled": lambda: PageTableShadowArchitecture(
            ShadowConfig(clustered=False)
        ),
        "overwriting": lambda: OverwritingArchitecture(),
        "differential": lambda: DifferentialFileArchitecture(DifferentialConfig()),
        "command_logging": lambda: CommandLoggingArchitecture(),
        "redo_wal": lambda: RedoOnlyWalArchitecture(),
    }
    rows = []
    for name in CONFIG_NAMES:
        config = CONFIGURATIONS[name]
        row: Dict = {"configuration": name}
        for arch_name, factory in architectures.items():
            result = run_configuration(config, factory, settings)
            row[arch_name] = round(result.execution_time_per_page, 2)
        rows.append(row)
    return {
        "title": "Table 12. Average Execution Time per Page (in ms)",
        "rows": rows,
        "paper": PAPER["table12"],
    }


# ----------------------------------------------------------------- ablations
def ablation_interconnect(
    settings: Optional[ExperimentSettings] = None,
    bandwidths=(1.0, 0.1, 0.01),
) -> Dict:
    """Section 4.1.3: logging is insensitive to the QP<->LP medium."""
    settings = _settings(settings)
    rows = []
    for name in ("conventional-random", "parallel-sequential"):
        config = CONFIGURATIONS[name]
        row: Dict = {"configuration": name}
        for bandwidth in bandwidths:
            result = run_configuration(
                config,
                lambda: ParallelLoggingArchitecture(
                    LoggingConfig(
                        routing=FragmentRouting.LINK,
                        link_bandwidth_mb_s=bandwidth,
                    )
                ),
                settings,
            )
            row[f"link_{bandwidth}MBs"] = round(result.execution_time_per_page, 2)
        through_cache = run_configuration(
            config,
            lambda: ParallelLoggingArchitecture(
                LoggingConfig(routing=FragmentRouting.CACHE)
            ),
            settings,
        )
        row["through_cache"] = round(through_cache.execution_time_per_page, 2)
        rows.append(row)
    return {
        "title": "Ablation (Sec 4.1.3): QP-LP interconnect bandwidth and routing",
        "rows": rows,
        "paper": None,
    }


def ablation_version_selection(settings: Optional[ExperimentSettings] = None) -> Dict:
    """Section 4.2.5: version selection vs thru page-table.

    Version selection doubles disk space, so the database is halved to fit
    the same drives — the comparison keeps both architectures on the
    shrunken database.
    """
    settings = _settings(settings)
    overrides = {"db_pages": 60_000}
    rows = []
    for name in CONFIG_NAMES:
        config = CONFIGURATIONS[name]
        bare = run_configuration(config, None, settings, machine_overrides=overrides)
        thru_pt = run_configuration(
            config,
            lambda: PageTableShadowArchitecture(ShadowConfig()),
            settings,
            machine_overrides=overrides,
        )
        version = run_configuration(
            config,
            lambda: VersionSelectionArchitecture(),
            settings,
            machine_overrides=overrides,
        )
        rows.append(
            {
                "configuration": name,
                "bare": round(bare.execution_time_per_page, 2),
                "thru_pt": round(thru_pt.execution_time_per_page, 2),
                "version_selection": round(version.execution_time_per_page, 2),
            }
        )
    return {
        "title": "Ablation (Sec 4.2.5): version selection vs thru page-table",
        "rows": rows,
        "paper": None,
    }


def ablation_overwriting_variants(settings: Optional[ExperimentSettings] = None) -> Dict:
    """Section 3.2.2.2: the no-undo vs the no-redo overwriting variant."""
    settings = _settings(settings)
    rows = []
    for name in CONFIG_NAMES:
        config = CONFIGURATIONS[name]
        no_undo = run_configuration(
            config,
            lambda: OverwritingArchitecture(OverwritingMode.NO_UNDO),
            settings,
        )
        no_redo = run_configuration(
            config,
            lambda: OverwritingArchitecture(OverwritingMode.NO_REDO),
            settings,
        )
        rows.append(
            {
                "configuration": name,
                "no_undo": round(no_undo.execution_time_per_page, 2),
                "no_redo": round(no_redo.execution_time_per_page, 2),
            }
        )
    return {
        "title": "Ablation (Sec 3.2.2.2): overwriting no-undo vs no-redo",
        "rows": rows,
        "paper": None,
    }


def ablation_disk_scheduling(settings: Optional[ExperimentSettings] = None) -> Dict:
    """Extension: FCFS vs SSTF data-disk scheduling on the bare machine.

    The paper's controllers serve requests in arrival order; this ablation
    quantifies what a shortest-seek-time-first queue would have bought the
    conventional configurations (parallel-access drives already coalesce
    whole cylinders, so they are omitted).
    """
    settings = _settings(settings)
    rows = []
    for name in ("conventional-random", "conventional-sequential"):
        config = CONFIGURATIONS[name]
        row: Dict = {"configuration": name}
        for policy in ("fcfs", "sstf"):
            result = run_configuration(
                config,
                None,
                settings,
                machine_overrides={"disk_scheduling": policy},
            )
            row[policy] = round(result.execution_time_per_page, 2)
        rows.append(row)
    return {
        "title": "Ablation (extension): FCFS vs SSTF disk scheduling",
        "rows": rows,
        "paper": None,
    }


def ablation_checkpointing(
    settings: Optional[ExperimentSettings] = None,
    intervals=(None, 2000.0, 500.0),
) -> Dict:
    """Section 3.1's claim: parallel checkpointing costs ~nothing.

    Background checkpoints force every log processor's partial page and
    write one checkpoint page per log disk, fully overlapped with data
    processing — throughput should not move even at aggressive intervals.
    """
    settings = _settings(settings)
    rows = []
    for name in ("conventional-random", "parallel-sequential"):
        config = CONFIGURATIONS[name]
        row: Dict = {"configuration": name}
        for interval in intervals:
            label = "no_checkpoints" if interval is None else f"every_{int(interval)}ms"
            result = run_configuration(
                config,
                lambda: ParallelLoggingArchitecture(
                    LoggingConfig(checkpoint_interval_ms=interval)
                ),
                settings,
            )
            row[label] = round(result.execution_time_per_page, 2)
        rows.append(row)
    return {
        "title": "Ablation (Sec 3.1): checkpointing in parallel with processing",
        "rows": rows,
        "paper": None,
    }


def ablation_hotspot(
    settings: Optional[ExperimentSettings] = None,
    hotspots=(None, 0.1, 0.005),
) -> Dict:
    """Extension: skewed (hotspot) reference strings under logging.

    The paper's workload is uniform; this ablation adds b/c-rule skew to
    show the architecture's performance is driven by I/O patterns, not by
    lock contention, until the hot set becomes pathologically small.
    """
    settings = _settings(settings)
    rows = []
    config = CONFIGURATIONS["conventional-random"]
    for hotspot in hotspots:
        label = "uniform" if hotspot is None else f"hot_{hotspot:g}"
        result = run_configuration(
            config,
            lambda: ParallelLoggingArchitecture(LoggingConfig()),
            settings,
            workload_overrides={
                "hotspot_fraction": hotspot,
                "hotspot_probability": 0.8,
            },
        )
        rows.append(
            {
                "workload": label,
                "exec_ms_per_page": round(result.execution_time_per_page, 2),
                "lock_blocks": result.counter("lock_blocks"),
                "restarts": result.n_restarts,
            }
        )
    return {
        "title": "Ablation (extension): hotspot skew under parallel logging",
        "rows": rows,
        "paper": None,
    }
