"""Shared machinery for running the paper's experiment configurations."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from repro.core.base import RecoveryArchitecture
from repro.jobs import map_jobs
from repro.machine.config import MachineConfig
from repro.machine.machine import DatabaseMachine
from repro.metrics.collectors import RunResult
from repro.sim.rng import RandomStreams
from repro.workload.generator import WorkloadConfig, generate_transactions

__all__ = [
    "CONFIGURATIONS",
    "Configuration",
    "ExperimentSettings",
    "map_jobs",
    "run_configuration",
]


@dataclass(frozen=True)
class Configuration:
    """One of the paper's four named machine/workload configurations."""

    name: str
    parallel_disks: bool
    sequential: bool


#: The four configurations of Section 4.
CONFIGURATIONS: Dict[str, Configuration] = {
    "conventional-random": Configuration("conventional-random", False, False),
    "parallel-random": Configuration("parallel-random", True, False),
    "conventional-sequential": Configuration("conventional-sequential", False, True),
    "parallel-sequential": Configuration("parallel-sequential", True, True),
}


@dataclass(frozen=True)
class ExperimentSettings:
    """Run-size and seed shared by the table experiments.

    ``n_transactions=30`` keeps a full table under a minute while leaving
    the paper's shapes intact; raise it for tighter confidence intervals.
    """

    n_transactions: int = 30
    seed: int = 1985
    workload_seed: int = 7
    machine: MachineConfig = MachineConfig()

    def with_overrides(self, **kwargs) -> "ExperimentSettings":
        return replace(self, **kwargs)


def run_configuration(
    configuration: Configuration,
    architecture: Optional[Callable[[], RecoveryArchitecture]] = None,
    settings: Optional[ExperimentSettings] = None,
    machine_overrides: Optional[dict] = None,
    workload_overrides: Optional[dict] = None,
    tracer=None,
) -> RunResult:
    """Run one (configuration, architecture) cell and return its metrics.

    ``architecture`` is a zero-argument factory (architectures are stateful
    and bind to one machine); ``None`` runs the bare machine.  The workload
    is generated from a stream independent of the machine's, so every
    architecture sees the *same* transactions — the common-random-numbers
    discipline that makes cells comparable.

    ``tracer`` is an optional :class:`repro.trace.Tracer`; tracing records
    synchronously and perturbs nothing, so the returned metrics are
    identical with or without it.
    """
    settings = settings or ExperimentSettings()
    machine_config = settings.machine.with_overrides(
        parallel_data_disks=configuration.parallel_disks,
        seed=settings.seed,
        **(machine_overrides or {}),
    )
    workload_config = WorkloadConfig(
        n_transactions=settings.n_transactions,
        sequential=configuration.sequential,
        **(workload_overrides or {}),
    )
    transactions = generate_transactions(
        workload_config,
        machine_config.db_pages,
        RandomStreams(settings.workload_seed).stream("workload"),
    )
    machine = DatabaseMachine(
        machine_config,
        architecture() if architecture is not None else None,
        tracer=tracer,
    )
    return machine.run(transactions)
