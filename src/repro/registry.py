"""One registry for every recovery architecture, both layers of it.

Before this module existed the architecture tables were scattered: the
crashtest kept a name -> functional-manager dict, the trace CLI kept a
name -> simulated-architecture dict, and the survive/load harnesses each
kept a third copy with their own multi-log-processor configurations.
Adding an architecture meant finding every copy.  Here each architecture
is **one** :class:`ArchitectureEntry` naming both of its layers:

* ``manager`` — the functional recovery manager from
  :mod:`repro.storage`, judged by the crashtest's committed-prefix
  oracle (``None`` for the bare baseline, which has no recovery story);
* ``sim`` — the timed :class:`~repro.core.RecoveryArchitecture` priced
  on the simulated multiprocessor, keyed separately by ``sim_name``
  because the trace CLI predates the crashtest names;
* ``survive_sim`` — the degraded-mode variant the survive/load harnesses
  run (the logging designs get three log processors so one can die and
  leave quorum).

The legacy dicts — :data:`ARCHITECTURES` (crashtest names) and
:data:`SIM_ARCHITECTURES` (trace names) — are *derived* from the
registry and re-exported from their historical homes
(:mod:`repro.faults.harness`, :mod:`repro.experiments.tracing`), so
existing callers and tests keep working; they stay plain mutable dicts
because the fault tests monkeypatch throw-away entries into them.

:func:`add_arch_argument` and :func:`resolve_archs` are the CLI's one
implementation of the ``--arch <name>|all`` convention that used to be
copy-pasted per subcommand.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core import (
    BareArchitecture,
    CommandLoggingArchitecture,
    DifferentialFileArchitecture,
    LoggingConfig,
    OverwritingArchitecture,
    PageTableShadowArchitecture,
    ParallelLoggingArchitecture,
    RecoveryArchitecture,
    RedoOnlyWalArchitecture,
    VersionSelectionArchitecture,
)
from repro.core.modern.command import COMMAND_FRAGMENT_BYTES
from repro.storage.differential import DifferentialFileManager
from repro.storage.interface import RecoveryManager
from repro.storage.modern import CommandLoggingManager, RedoOnlyWalManager
from repro.storage.overwrite import OverwriteVariant, OverwritingManager
from repro.storage.shadow import ShadowPageTableManager
from repro.storage.versions import VersionSelectionManager
from repro.storage.wal import DistributedWalManager

__all__ = [
    "ARCHITECTURES",
    "REGISTRY",
    "SIM_ARCHITECTURES",
    "ArchitectureEntry",
    "add_arch_argument",
    "entry_for",
    "entry_for_sim",
    "machine_overrides",
    "resolve_archs",
    "survive_factory",
]


@dataclass(frozen=True)
class ArchitectureEntry:
    """Both layers of one recovery architecture, under one name."""

    #: Crashtest / CLI name (``wal``, ``shadow``, ..., ``command``, ``redo``).
    name: str
    #: Trace-CLI name of the simulated architecture (``logging``, ...).
    sim_name: str
    #: Functional manager factory; ``None`` for sim-only baselines.
    manager: Optional[Callable[[], RecoveryManager]]
    #: Timed architecture factory (default configuration).
    sim: Callable[[], RecoveryArchitecture]
    #: Timed factory for the survive/load harnesses (quorum configs).
    survive_sim: Optional[Callable[[], RecoveryArchitecture]] = None
    #: Machine-config overrides every harness applies for this entry.
    overrides: Optional[Mapping[str, Any]] = None
    #: Whether the architecture runs enough log processors that one can
    #: die and leave quorum (gates the LP-failover and dead-lp scenarios).
    lp_failover: bool = False


#: Version pairs double disk space, so every harness halves the database
#: to fit the same drives (Section 4.2.5 convention).
_VERSIONS_OVERRIDES = {"db_pages": 60_000}

_ENTRIES = (
    ArchitectureEntry(
        name="bare",
        sim_name="bare",
        manager=None,
        sim=BareArchitecture,
    ),
    ArchitectureEntry(
        name="wal",
        sim_name="logging",
        manager=lambda: DistributedWalManager(n_logs=3),
        sim=ParallelLoggingArchitecture,
        survive_sim=lambda: ParallelLoggingArchitecture(
            LoggingConfig(n_log_processors=3)
        ),
        lp_failover=True,
    ),
    ArchitectureEntry(
        name="shadow",
        sim_name="shadow-pt",
        manager=ShadowPageTableManager,
        sim=PageTableShadowArchitecture,
        survive_sim=PageTableShadowArchitecture,
    ),
    ArchitectureEntry(
        name="versions",
        sim_name="version-selection",
        manager=VersionSelectionManager,
        sim=VersionSelectionArchitecture,
        survive_sim=VersionSelectionArchitecture,
        overrides=_VERSIONS_OVERRIDES,
    ),
    ArchitectureEntry(
        name="overwrite",
        sim_name="overwriting",
        manager=lambda: OverwritingManager(OverwriteVariant.NO_UNDO),
        sim=OverwritingArchitecture,
        survive_sim=OverwritingArchitecture,
    ),
    ArchitectureEntry(
        name="differential",
        sim_name="differential",
        manager=DifferentialFileManager,
        sim=DifferentialFileArchitecture,
        survive_sim=DifferentialFileArchitecture,
    ),
    ArchitectureEntry(
        name="command",
        sim_name="command-logging",
        manager=CommandLoggingManager,
        sim=CommandLoggingArchitecture,
        survive_sim=lambda: CommandLoggingArchitecture(
            LoggingConfig(
                fragment_bytes=COMMAND_FRAGMENT_BYTES, n_log_processors=3
            )
        ),
        lp_failover=True,
    ),
    ArchitectureEntry(
        name="redo",
        sim_name="redo-wal",
        manager=RedoOnlyWalManager,
        sim=RedoOnlyWalArchitecture,
        # One sequential log stream is the design (Sauer & Harder), so an
        # LP death is not survivable and the failover scenarios skip it.
        survive_sim=RedoOnlyWalArchitecture,
    ),
)

#: name -> entry, in canonical order (bare first, paper five, modern two).
REGISTRY: Dict[str, ArchitectureEntry] = {e.name: e for e in _ENTRIES}

#: Crashtest name -> functional manager factory (the historical dict of
#: :mod:`repro.faults.harness`, now derived; mutable for the fault tests).
ARCHITECTURES: Dict[str, Callable[[], RecoveryManager]] = {
    e.name: e.manager for e in _ENTRIES if e.manager is not None
}

#: Trace name -> simulated architecture factory (the historical dict of
#: :mod:`repro.experiments.tracing`, now derived).
SIM_ARCHITECTURES: Dict[str, Callable[[], RecoveryArchitecture]] = {
    e.sim_name: e.sim for e in _ENTRIES
}


def entry_for(name: str) -> ArchitectureEntry:
    """The registry entry for a crashtest/CLI architecture name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown architecture {name!r}; pick one of {sorted(REGISTRY)}"
        ) from None


def entry_for_sim(sim_name: str) -> ArchitectureEntry:
    """The registry entry for a trace-CLI (simulated) architecture name."""
    for entry in _ENTRIES:
        if entry.sim_name == sim_name:
            return entry
    raise ValueError(
        f"unknown architecture {sim_name!r}; "
        f"pick one of {sorted(SIM_ARCHITECTURES)}"
    )


def survive_factory(name: str) -> Callable[[], RecoveryArchitecture]:
    """The survive/load-harness sim factory for a crashtest name."""
    entry = entry_for(name)
    if entry.survive_sim is None:
        raise ValueError(f"architecture {name!r} has no survivable variant")
    return entry.survive_sim


def machine_overrides(name: str) -> Dict[str, Any]:
    """Machine-config overrides for ``name`` (crashtest or trace name)."""
    entry = REGISTRY.get(name)
    if entry is None:
        entry = entry_for_sim(name)
    return dict(entry.overrides or {})


def add_arch_argument(
    parser: argparse.ArgumentParser,
    names: Optional[Mapping[str, Any]] = None,
    default: str = "all",
    help_text: str = "recovery architecture (default: %(default)s)",
) -> None:
    """Add the standard ``--arch <name>|all`` option to a CLI subparser."""
    if names is None:
        names = ARCHITECTURES
    parser.add_argument(
        "--arch",
        default=default,
        choices=sorted(names) + ["all"],
        help=help_text,
    )


def resolve_archs(
    arch: str, names: Optional[Mapping[str, Any]] = None
) -> List[str]:
    """Expand an ``--arch`` value: ``all`` -> every registered name."""
    if names is None:
        names = ARCHITECTURES
    return sorted(names) if arch == "all" else [arch]
