"""Checkpoint-interval analysis: restart cost vs checkpoint cadence.

The paper's Section 6 argument is a trade-off: checkpoints spend normal-
case work (flushing, compacting, garbage collection) to bound the
recovery data a restart must reprocess.  This module measures both sides
on the functional engines — drive a seeded workload with a
:class:`~repro.checkpoint.CheckpointScheduler` at a given cadence, crash
at the end, and count exactly what recovery reads and writes
(:class:`~repro.storage.stable.StableStorage` counters) — then prices
the measured volumes on the simulated hardware via
:func:`~repro.analysis.restart.estimate_functional_restart`, next to an
analytic bound derived only from the cadence.  The crashtest proves
recovery *correct* at every crash point; this answers how *long* it
takes, and how the answer moves with the checkpoint interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.restart import RestartEstimate, estimate_functional_restart
from repro.checkpoint import CheckpointScheduler
from repro.faults.harness import (
    ARCHITECTURES,
    DEFAULT_PAGES,
    _apply_op,
    generate_ops,
    make_manager,
)
from repro.machine.config import MachineConfig

__all__ = [
    "CheckpointRunStats",
    "analytic_restart_bound",
    "checkpoint_interval_sweep",
    "run_with_checkpoints",
]


@dataclass(frozen=True)
class CheckpointRunStats:
    """One workload run at one checkpoint cadence, crashed and recovered."""

    architecture: str
    #: Operations between scheduler triggers (None: never checkpoint).
    checkpoint_every: Optional[int]
    checkpoints_taken: int
    checkpoints_skipped: int
    #: Normal-case cost: recovery-data records appended during the run.
    overhead_records: int
    #: Normal-case cost: stable-page writes during the run.
    overhead_page_writes: int
    #: Restart work: records read by ``recover()`` + a full committed sweep.
    restart_records: int
    restart_page_reads: int
    restart_page_writes: int
    #: The measured restart volumes priced on the simulated hardware.
    measured: RestartEstimate
    #: Cadence-only analytic bound on the same restart.
    analytic: RestartEstimate

    @property
    def restart_pages_touched(self) -> int:
        return self.restart_page_reads + self.restart_page_writes


def analytic_restart_bound(
    architecture: str,
    checkpoint_every: Optional[int],
    total_ops: int,
    total_records: int,
    n_pages: int,
    config: Optional[MachineConfig] = None,
) -> RestartEstimate:
    """Restart bound from the cadence alone (no post-crash measurement).

    A checkpoint bounds the un-reprocessed recovery data to what the
    workload produced since the last one: at most ``checkpoint_every``
    operations' worth of records (the whole run when never
    checkpointing) at the run's own mean record rate.  Restart scans
    that residue once and a read-side architecture (version selection's
    commit-order scan, notably) may rescan it once more per database
    page, hence the ``n_pages + 1`` factor; every database page may also
    need a read plus a write.  The envelope is deliberately loose —
    sticky-due deferral and per-architecture compaction only ever
    shrink the residue — so measured restarts sit at or below it.
    """
    if total_ops < 1:
        raise ValueError("need at least one operation to derive a record rate")
    residual_ops = (
        total_ops if checkpoint_every is None
        else min(checkpoint_every, total_ops)
    )
    records_per_op = total_records / total_ops
    residual_records = math.ceil(records_per_op * residual_ops) * (n_pages + 1)
    pages_touched = 2 * n_pages
    if architecture == "command":
        # Logical replay re-executes every residual committed command —
        # one random page write each — so the residue, not the database
        # size, bounds the redo pass (Section 6's trade, amplified: the
        # cheapest normal-case log pays the most re-execution at restart).
        pages_touched += math.ceil(records_per_op * residual_ops)
    return estimate_functional_restart(
        architecture,
        records_scanned=residual_records,
        pages_touched=pages_touched,
        config=config,
    )


def run_with_checkpoints(
    arch: str,
    seed: int,
    checkpoint_every: Optional[int],
    n_transactions: int = 40,
    n_pages: int = DEFAULT_PAGES,
    config: Optional[MachineConfig] = None,
) -> CheckpointRunStats:
    """Run a seeded workload with scheduled checkpoints, crash, recover.

    The scheduler polls at every operation boundary; no checkpoint is
    forced at the end, so the residual recovery data at the crash
    reflects the cadence — a shorter interval leaves less to reprocess.
    Measured restart work is the storage-counter delta across
    ``recover()`` plus a read of every database page (the read path is
    where version selection and shadow paging pay their restart cost).
    """
    manager = make_manager(arch)
    ops = generate_ops(seed, n_transactions, n_pages)
    scheduler = (
        CheckpointScheduler(every_ops=checkpoint_every)
        if checkpoint_every is not None
        else None
    )
    tids: Dict[int, int] = {}
    committed: Dict[int, bytes] = {}
    pending: Dict[int, Dict[int, bytes]] = {}
    for op in ops:
        _apply_op(manager, op, tids, committed, pending)
        if scheduler is not None:
            scheduler.note_op()
            scheduler.maybe_checkpoint(manager)
    stable = manager.stable
    overhead_records = stable.records_appended
    overhead_page_writes = stable.page_writes
    manager.crash()
    records_before = stable.records_read
    reads_before = stable.page_reads
    writes_before = stable.page_writes
    manager.recover()
    for page in range(n_pages):
        manager.read_committed(page)
    restart_records = stable.records_read - records_before
    restart_page_reads = stable.page_reads - reads_before
    restart_page_writes = stable.page_writes - writes_before
    measured = estimate_functional_restart(
        arch,
        records_scanned=restart_records,
        pages_touched=restart_page_reads + restart_page_writes,
        config=config,
    )
    analytic = analytic_restart_bound(
        arch,
        checkpoint_every,
        total_ops=len(ops),
        total_records=overhead_records,
        n_pages=n_pages,
        config=config,
    )
    return CheckpointRunStats(
        architecture=arch,
        checkpoint_every=checkpoint_every,
        checkpoints_taken=scheduler.taken if scheduler is not None else 0,
        checkpoints_skipped=scheduler.skipped if scheduler is not None else 0,
        overhead_records=overhead_records,
        overhead_page_writes=overhead_page_writes,
        restart_records=restart_records,
        restart_page_reads=restart_page_reads,
        restart_page_writes=restart_page_writes,
        measured=measured,
        analytic=analytic,
    )


def _sweep_cell(item) -> CheckpointRunStats:
    """Top-level (picklable) worker: one (architecture, interval) cell."""
    arch, seed, interval, n_transactions, n_pages, config = item
    return run_with_checkpoints(arch, seed, interval, n_transactions, n_pages, config)


def checkpoint_interval_sweep(
    seed: int,
    intervals: Sequence[Optional[int]],
    archs: Optional[Sequence[str]] = None,
    n_transactions: int = 40,
    n_pages: int = DEFAULT_PAGES,
    config: Optional[MachineConfig] = None,
    jobs: int = 1,
) -> Dict[str, List[CheckpointRunStats]]:
    """Sweep checkpoint cadences across architectures.

    Returns one row per ``(architecture, interval)`` in the given
    interval order.  Include ``None`` among the intervals to get the
    never-checkpoint baseline each architecture's rows can be read
    against.  ``jobs`` fans the independent cells out over worker
    processes; every cell is seeded on its own, so the result is
    identical to the serial ``jobs=1`` sweep.
    """
    if archs is None:
        archs = sorted(ARCHITECTURES)
    cells = [
        (arch, seed, interval, n_transactions, n_pages, config)
        for arch in archs
        for interval in intervals
    ]
    if jobs <= 1 or len(cells) <= 1:
        stats = [_sweep_cell(cell) for cell in cells]
    else:
        import multiprocessing

        with multiprocessing.Pool(processes=min(jobs, len(cells))) as pool:
            stats = pool.map(_sweep_cell, cells)
    out: Dict[str, List[CheckpointRunStats]] = {arch: [] for arch in archs}
    for (arch, *_), stat in zip(cells, stats):
        out[arch].append(stat)
    return out
