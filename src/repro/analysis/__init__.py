"""Back-of-envelope analytic models cross-validating the simulator.

The paper's qualitative arguments are bottleneck arguments ("the I/O
bandwidth between the data disks and the cache severely limits...", "the
rate at which query processors update pages is just not fast enough to
keep a single log disk busy").  This package writes those arguments down
as formulas, so the simulator can be cross-checked against first
principles — and so users can predict where a configuration's bottleneck
will sit before running it.
"""

from repro.analysis.checkpoints import (
    CheckpointRunStats,
    analytic_restart_bound,
    checkpoint_interval_sweep,
    run_with_checkpoints,
)
from repro.analysis.restart import (
    RestartEstimate,
    estimate_functional_restart,
    estimate_restart,
)
from repro.analysis.model import (
    cpu_bound_ms_per_page,
    disk_bound_ms_per_page,
    expected_random_access_ms,
    expected_seek_ms,
    io_bound_ms_per_page,
    log_disk_utilization,
    predict_bare_ms_per_page,
    predict_bottleneck,
    pt_disk_demand_ms_per_page,
    sequential_access_ms,
)

__all__ = [
    "CheckpointRunStats",
    "RestartEstimate",
    "analytic_restart_bound",
    "checkpoint_interval_sweep",
    "cpu_bound_ms_per_page",
    "disk_bound_ms_per_page",
    "estimate_functional_restart",
    "estimate_restart",
    "expected_random_access_ms",
    "expected_seek_ms",
    "io_bound_ms_per_page",
    "log_disk_utilization",
    "predict_bare_ms_per_page",
    "predict_bottleneck",
    "pt_disk_demand_ms_per_page",
    "run_with_checkpoints",
    "sequential_access_ms",
]
