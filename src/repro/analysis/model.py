"""Analytic bottleneck models for the database machine.

All formulas work from the same parameter objects the simulator uses
(:class:`~repro.hardware.params.DiskParams`,
:class:`~repro.machine.config.MachineConfig`), so a change to the hardware
constants moves both the prediction and the simulation.

Conventions: times in milliseconds; "page operations" count pages read
plus pages written, matching the paper's execution-time-per-page
denominator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.params import DiskParams
from repro.machine.config import MachineConfig

__all__ = [
    "BottleneckReport",
    "cpu_bound_ms_per_page",
    "disk_bound_ms_per_page",
    "expected_random_access_ms",
    "expected_seek_ms",
    "io_bound_ms_per_page",
    "log_disk_utilization",
    "predict_bare_ms_per_page",
    "predict_bottleneck",
    "pt_disk_demand_ms_per_page",
    "sequential_access_ms",
]


def expected_seek_ms(disk: DiskParams, span_cylinders: int) -> float:
    """Mean seek time between two uniform positions within a span.

    For independent uniform positions on ``span`` cylinders the mean
    distance is span/3; the seek profile is linear in distance, so the
    expectation passes through (ignoring the zero-distance atom, which is
    negligible for realistic spans).
    """
    if span_cylinders <= 1:
        return 0.0
    mean_distance = span_cylinders / 3.0
    return disk.seek_ms(int(round(mean_distance)))


def expected_random_access_ms(disk: DiskParams, span_cylinders: int) -> float:
    """Mean time for one random page access within a span of cylinders."""
    return expected_seek_ms(disk, span_cylinders) + disk.avg_latency_ms + disk.transfer_ms


def sequential_access_ms(disk: DiskParams, run_length: int) -> float:
    """Mean per-page time for a ``run_length``-page one-request chain.

    The first page pays rotational latency; subsequent adjacent pages
    stream at transfer rate (the 1985 controller model: no streaming
    *across* requests).
    """
    if run_length < 1:
        raise ValueError("run length must be >= 1")
    return (disk.avg_latency_ms + run_length * disk.transfer_ms) / run_length


def disk_bound_ms_per_page(config: MachineConfig) -> float:
    """Execution time per page if the data disks are the bottleneck.

    Random loads: every page operation costs a random access over the
    database span, spread across the data disks.
    """
    span = min(
        config.disk.cylinders,
        -(-config.db_pages // (config.n_data_disks * config.disk.pages_per_cylinder)),
    )
    access = expected_random_access_ms(config.disk, span)
    return access / config.n_data_disks


def cpu_bound_ms_per_page(
    config: MachineConfig, write_fraction: float = 0.2
) -> float:
    """Execution time per page if the query processors are the bottleneck.

    Each *read* page costs a scan; updated pages add update work.  The
    denominator counts reads + writes, hence the (1 + w) normalization.
    """
    scan = config.cpu.ms(config.cost.scan_page)
    update = config.cpu.ms(config.cost.update_page)
    per_read = scan + write_fraction * update
    per_operation = per_read / (1.0 + write_fraction)
    return per_operation / config.n_query_processors


def predict_bare_ms_per_page(
    config: MachineConfig, sequential: bool = False, write_fraction: float = 0.2
) -> float:
    """First-order prediction of bare-machine execution time per page.

    The machine runs at the slower of its disk-bound and CPU-bound rates.
    Sequential loads on parallel-access disks approach one cylinder per
    access; sequential loads on conventional disks stream within the
    read-ahead window.  This is deliberately a *first-order* model — it
    ignores queueing interference between concurrent transactions, so it
    lower-bounds the simulator by design.
    """
    cpu = cpu_bound_ms_per_page(config, write_fraction)
    io = io_bound_ms_per_page(config, sequential, write_fraction)
    return max(io, cpu)


def io_bound_ms_per_page(
    config: MachineConfig, sequential: bool = False, write_fraction: float = 0.2
) -> float:
    """Execution time per page if the data disks are the bottleneck."""
    disk = config.disk
    if not sequential:
        # Write-backs cost the same as reads under random placement.
        return disk_bound_ms_per_page(config)
    if config.parallel_data_disks:
        # A cylinder (or the read-ahead window, if smaller) per access.
        batch = min(
            disk.pages_per_cylinder,
            max(1, config.prefetch_window // config.n_data_disks),
        )
        access = expected_seek_ms(disk, 3) + disk.avg_latency_ms + disk.rotation_ms
        reads = access / batch / config.n_data_disks
        # Write-backs of a sequential transaction share cylinders and
        # coalesce into few accesses as well.
        writes = access / max(1, batch // 2) / config.n_data_disks
    else:
        reads = sequential_access_ms(disk, 1) / config.n_data_disks
        # Sequential write-backs land near the read cursor: short seeks.
        writes = (
            disk.min_seek_ms + disk.avg_latency_ms + disk.transfer_ms
        ) / config.n_data_disks
    w = write_fraction
    return (reads + w * writes) / (1.0 + w)


@dataclass(frozen=True)
class BottleneckReport:
    """Which resource limits a configuration, and the predicted rate."""

    bottleneck: str
    ms_per_page: float
    disk_bound: float
    cpu_bound: float


def predict_bottleneck(
    config: MachineConfig, sequential: bool = False
) -> BottleneckReport:
    """Identify the binding resource for a bare-machine configuration."""
    io = io_bound_ms_per_page(config, sequential)
    cpu = cpu_bound_ms_per_page(config)
    if cpu >= io:
        return BottleneckReport("query-processors", cpu, io, cpu)
    return BottleneckReport("data-disks", io, io, cpu)


def log_disk_utilization(
    config: MachineConfig,
    exec_ms_per_page: float,
    fragments_per_log_page: int = 6,
    write_fraction: float = 0.2,
    physical: bool = False,
) -> float:
    """Predicted utilization of one log disk (the paper's Table 2 logic).

    Page operations complete at 1/exec_ms each; a ``write_fraction / (1 +
    write_fraction)`` share are updates; logical logging emits one log-page
    write per ``fragments_per_log_page`` updates, physical logging two log
    pages per update.  Each log write costs latency + transfer (sequential
    ring, no cross-request streaming).
    """
    update_rate = (write_fraction / (1.0 + write_fraction)) / exec_ms_per_page
    disk = config.disk
    if physical:
        service = 2 * (disk.avg_latency_ms + disk.transfer_ms)
        demand = update_rate * service
    else:
        service = disk.avg_latency_ms + disk.transfer_ms
        demand = (update_rate / fragments_per_log_page) * service
    return min(1.0, demand)


def pt_disk_demand_ms_per_page(
    config: MachineConfig,
    pt_access_ms: float = 21.0,
    miss_rate: float = 0.9,
    write_fraction: float = 0.2,
) -> float:
    """Page-table disk demand per page operation (the Table 4 bottleneck).

    Each read misses the PT buffer with ``miss_rate``; each update adds a
    commit-time reread + write of its PT page (amortized).  If this demand
    exceeds the data-disk rate, the PT disk is the bottleneck — the paper's
    one-PT-processor degradation.
    """
    w = write_fraction
    reads_per_op = miss_rate / (1.0 + w)
    commit_ops_per_op = 2.0 * (w / (1.0 + w)) * miss_rate
    return (reads_per_op + commit_ops_per_op) * pt_access_ms
