"""Differential-file merge policy: the cost the paper declined to model.

The paper (Section 4.3.3): "In order to minimize the size of the
differential relations, the differential relations will have to be
frequently merged with the base relation.  In our simulation, we have not
modeled the effect of merging...".  This module closes that loop
analytically:

* :func:`merge_cost_ms` prices one merge — a sequential sweep reading the
  base and both differential files and writing the new base;
* per-transaction overhead grows as the differential files grow (the
  nonlinearity of Table 11); given its local slope,
  :func:`optimal_merge_interval` solves the classic renewal trade-off
  ``min_T (merge_cost + slope * T^2 / 2) / T`` = merge every
  ``sqrt(2 * merge_cost / slope)`` transactions;
* :func:`overhead_slope_ms_per_txn` extracts that slope from two measured
  runs at different differential sizes (e.g. Table 11 neighbours).
"""

from __future__ import annotations

import math

from repro.machine.config import MachineConfig
from repro.metrics.collectors import RunResult

__all__ = [
    "merge_cost_ms",
    "optimal_merge_interval",
    "overhead_slope_ms_per_txn",
]


def merge_cost_ms(
    config: MachineConfig,
    base_pages: int = None,
    size_fraction: float = 0.10,
) -> float:
    """Time to merge the A/D files into the base (a sequential sweep).

    Reads base + A + D, writes a new base of (approximately) the old size:
    ``(2 + 2 * size_fraction) * base_pages`` sequential page transfers,
    striped over the data disks, plus a cylinder-crossing seek per
    cylinder swept.
    """
    if base_pages is None:
        base_pages = config.db_pages
    if base_pages < 1:
        raise ValueError("base must have at least one page")
    if size_fraction <= 0:
        raise ValueError("size_fraction must be positive")
    disk = config.disk
    total_pages = (2.0 + 2.0 * size_fraction) * base_pages
    per_disk = total_pages / config.n_data_disks
    crossings = per_disk / disk.pages_per_cylinder
    return (
        per_disk * disk.transfer_ms
        + crossings * (disk.seek_ms(1) + disk.avg_latency_ms)
    )


def overhead_slope_ms_per_txn(
    smaller: RunResult,
    larger: RunResult,
    appended_pages_per_txn: float,
    base_pages: int,
) -> float:
    """Per-transaction growth of per-transaction overhead.

    ``smaller``/``larger`` are runs at two differential sizes (their
    architecture descriptions carry the fractions; we only need the
    makespans).  The slope converts the measured d(overhead)/d(fraction)
    into d(overhead)/d(transaction) via the append rate.
    """
    if smaller.n_transactions != larger.n_transactions:
        raise ValueError("compare runs of the same transaction count")
    per_txn_small = smaller.makespan_ms / smaller.n_transactions
    per_txn_large = larger.makespan_ms / larger.n_transactions
    d_overhead = per_txn_large - per_txn_small
    d_fraction = _fraction_of(larger) - _fraction_of(smaller)
    if d_fraction <= 0:
        raise ValueError("runs must differ in differential size")
    fraction_per_txn = appended_pages_per_txn / base_pages
    return max(0.0, d_overhead / d_fraction * fraction_per_txn)


def _fraction_of(result: RunResult) -> float:
    """Parse 'size=NN%' out of a differential architecture description."""
    text = result.architecture
    marker = "size="
    start = text.find(marker)
    if start < 0:
        raise ValueError(f"not a differential run: {text!r}")
    end = text.find("%", start)
    return float(text[start + len(marker) : end]) / 100.0


def optimal_merge_interval(merge_ms: float, slope_ms_per_txn: float) -> float:
    """Transactions between merges minimizing total cost per transaction.

    With per-transaction overhead growing linearly (slope s) since the
    last merge, T transactions cost ``merge_ms + s*T^2/2``; the average is
    minimized at ``T* = sqrt(2 * merge_ms / s)`` — merge more often when
    queries are hurting, less often when merging is expensive.
    """
    if merge_ms <= 0:
        raise ValueError("merge cost must be positive")
    if slope_ms_per_txn <= 0:
        return math.inf
    return math.sqrt(2.0 * merge_ms / slope_ms_per_txn)
