"""Restart-time estimation: what a crash costs each architecture, in time.

The functional engine (:mod:`repro.storage`) shows *what work* each
restart algorithm does; this module prices that work on the simulated
hardware, using the recovery-data volumes an actual timed run produced
(its :class:`~repro.metrics.RunResult` counters).  Together they quantify
the paper's Section 3 premise — optimizing the normal case can make
recovery from failures more expensive — in milliseconds:

* **logging** — restart scans every log page written since the last
  checkpoint on each log disk (in parallel across log disks), then redoes
  the updated pages that were still blocked in the cache;
* **shadow / version selection** — restart is (nearly) free: the root
  page or the timestamps already select the committed state;
* **overwriting (no-undo)** — restart scans the scratch ring since the
  last checkpoint and re-applies the in-doubt transactions' pages;
* **differential files** — restart truncates at most one unterminated
  append run: a handful of I/Os.
* **command logging** — restart scans the command logs like the logging
  restart, but replays in dependency waves spread across the log disks,
  and the no-steal write gate leaves nothing to undo;
* **redo-only WAL** — one sequential scan of the single log stream and
  one redo pass over the committed-but-unreflected pages; by
  construction there is never undo work (``undo_ms == 0``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import MachineConfig
from repro.metrics.collectors import RunResult

__all__ = ["RestartEstimate", "estimate_functional_restart", "estimate_restart"]


@dataclass(frozen=True)
class RestartEstimate:
    """Predicted restart cost after a crash at the end of a run."""

    architecture: str
    #: Sequential scanning of recovery data (logs, scratch ring, PT).
    scan_ms: float
    #: Re-applying updates (redo) to the database.
    redo_ms: float
    #: Rolling back stolen/half-applied updates (undo).
    undo_ms: float

    @property
    def total_ms(self) -> float:
        return self.scan_ms + self.redo_ms + self.undo_ms


def _sequential_scan_ms(config: MachineConfig, n_pages: int, n_disks: int = 1) -> float:
    """Chained sequential read of ``n_pages`` spread over ``n_disks``."""
    if n_pages <= 0:
        return 0.0
    disk = config.disk
    per_disk = -(-n_pages // max(1, n_disks))
    # One long chained request per disk: one latency, then streaming, plus
    # a cylinder-crossing seek every pages_per_cylinder pages.
    crossings = per_disk // disk.pages_per_cylinder
    return (
        disk.avg_latency_ms
        + per_disk * disk.transfer_ms
        + crossings * disk.seek_ms(1)
    )


def _random_io_ms(config: MachineConfig, n_pages: int) -> float:
    """Random reads/writes against the database, spread over data disks."""
    if n_pages <= 0:
        return 0.0
    disk = config.disk
    span = disk.cylinders
    access = disk.seek_ms(span // 3) + disk.avg_latency_ms + disk.transfer_ms
    return n_pages * access / config.n_data_disks


def estimate_functional_restart(
    architecture: str,
    records_scanned: int,
    pages_touched: int,
    config: MachineConfig = None,
    n_log_disks: int = 1,
    records_per_page: int = 16,
) -> RestartEstimate:
    """Price a *functional-engine* restart on the simulated hardware.

    The crash-recovery harness and the checkpoint sweep count the work a
    restart actually did — recovery-file records scanned and stable pages
    touched (:class:`~repro.storage.stable.StableStorage` counters).  This
    maps those volumes onto disk time: records pack ``records_per_page``
    to a recovery-data page read sequentially (over ``n_log_disks`` for
    distributed logs), and every touched page is a random database I/O.
    Undo work is indistinguishable from redo at this granularity (both
    are random page writes), so it is folded into ``redo_ms``.
    """
    if config is None:
        config = MachineConfig()
    scan_pages = -(-max(0, records_scanned) // records_per_page)
    scan = _sequential_scan_ms(config, scan_pages, n_disks=n_log_disks)
    redo = _random_io_ms(config, pages_touched)
    return RestartEstimate(architecture, scan, redo, 0.0)


def estimate_restart(
    result: RunResult,
    config: MachineConfig,
    n_log_disks: int = 1,
    in_doubt_transactions: int = None,
    mean_writes_per_txn: float = 25.0,
) -> RestartEstimate:
    """Price a crash-at-end restart for the architecture that produced
    ``result``.

    ``in_doubt_transactions`` defaults to the multiprogramming level — the
    transactions active at the crash.  Volumes come from the run's own
    counters, so a run that wrote more recovery data pays a longer restart.
    """
    if in_doubt_transactions is None:
        in_doubt_transactions = config.mpl
    name = result.architecture
    in_doubt_pages = int(in_doubt_transactions * mean_writes_per_txn)

    if name.startswith("command-logging"):
        log_pages = result.counter("log_pages_written")
        scan = _sequential_scan_ms(config, log_pages, n_disks=n_log_disks)
        # Dependency-aware replay waves run across the log disks in
        # parallel; the functional twin's no-steal flush gate means no
        # uncommitted page ever reached a home disk, so nothing to undo.
        blocked = result.averages.get("blocked_pages", 0.0)
        replay_pages = int(round(blocked)) + in_doubt_pages
        redo = _random_io_ms(config, replay_pages) / max(1, n_log_disks)
        return RestartEstimate(name, scan, redo, 0.0)

    if name.startswith("redo-wal"):
        log_pages = result.counter("log_pages_written")
        # Single sequential log stream: one combined analysis+redo pass
        # in log order, then the committed-but-unreflected pages go home.
        scan = _sequential_scan_ms(config, log_pages)
        redo = _random_io_ms(config, in_doubt_pages)
        return RestartEstimate(name, scan, redo, 0.0)

    if name.startswith("logging"):
        log_pages = result.counter("log_pages_written")
        scan = _sequential_scan_ms(config, log_pages, n_disks=n_log_disks)
        # Redo the pages that were blocked awaiting their log records, plus
        # undo the stolen pages of in-doubt transactions.
        blocked = result.averages.get("blocked_pages", 0.0)
        redo = _random_io_ms(config, int(round(blocked)))
        undo = _random_io_ms(config, in_doubt_pages)
        return RestartEstimate(name, scan, redo, undo)

    if name.startswith("shadow") or name.startswith("version"):
        # Read the page-table root (shadow) or nothing at all (versions);
        # garbage collection is deferred, not part of restart.
        pt_pages = -(-config.db_pages // 1024) if name.startswith("shadow") else 0
        scan = _sequential_scan_ms(config, min(pt_pages, 2))
        return RestartEstimate(name, scan, 0.0, 0.0)

    if name.startswith("overwriting"):
        scratch_pages = result.counter("scratch_writes")
        scan = _sequential_scan_ms(config, scratch_pages)
        if "no-undo" in name:
            # Re-apply committed-but-unapplied transactions from scratch.
            redo = _random_io_ms(config, in_doubt_pages)
            return RestartEstimate(name, scan, redo, 0.0)
        # No-redo: restore shadows of in-doubt transactions.
        undo = _random_io_ms(config, in_doubt_pages)
        return RestartEstimate(name, scan, 0.0, undo)

    if name.startswith("differential"):
        # Truncate at most one unterminated run per file: a few I/Os.
        scan = _sequential_scan_ms(config, 2 * config.n_data_disks)
        return RestartEstimate(name, scan, 0.0, 0.0)

    # Bare machine: there is nothing to restart from (and nothing saved).
    return RestartEstimate(name, 0.0, 0.0, 0.0)
