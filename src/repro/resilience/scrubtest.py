"""The integrity harness: silent corruption everywhere, verify the scrub.

Third sibling of the crashtest and the survivetest: where those kill the
machine (or one component), the scrubtest *lies* to it — it rots stored
bits in place and checks the integrity layer's three oracles:

* **detection before committed reads** — every injected corruption is
  caught by a checksum verdict (a typed :class:`IntegrityError` on the
  functional read path, a scrub detection in the simulation) before any
  committed read returns wrong bytes silently;
* **zero false positives** — a corruption-free run scrubs completely
  clean: no checksum failure, no repair mutation;
* **no committed loss after repair** — after automated detect-and-repair
  (``repair_corruption()``: targeted restore from the archive, or
  escalation to the architecture's archive+log media recovery), every
  committed page reads back exactly, and a crash/recover round still
  converges (the repaired log replays).

The functional sweep drives every architecture × every corruption target
(data page, log record, checkpoint record, archive); the simulation
scenario runs a mirrored machine under probabilistic ``BIT_ROT`` faults
with the background :class:`~repro.resilience.scrubber.Scrubber` patrol
and checks detection/repair accounting.  Reports are deterministic:
the same ``(seed, plan)`` produces byte-identical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.faults.harness import ARCHITECTURES, _apply_op, generate_ops, make_manager
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.hardware.params import IBM_3350
from repro.integrity import IntegrityError
from repro.machine.config import MachineConfig
from repro.machine.machine import DatabaseMachine
from repro.registry import machine_overrides, survive_factory
from repro.resilience.scrubber import Scrubber
from repro.sim.rng import RandomStreams
from repro.workload.generator import WorkloadConfig, generate_transactions
from repro.workload.transaction import TransactionStatus

__all__ = [
    "CORRUPTION_TARGETS",
    "ScrubOutcome",
    "ScrubReport",
    "run_clean_scenario",
    "run_corruption_scenario",
    "run_scrub_sim_scenario",
    "run_scrubtest",
]

#: Where the functional sweep injects rot.
CORRUPTION_TARGETS = ("data-page", "log-record", "checkpoint", "archive")

#: Files on the archive medium for every manager layout.
_ARCHIVE_NAMES = ("archive_pages", "archive_files", "archive_log")

_CHECKPOINT_FILE = "checkpoints"

#: Functional-workload shape (crashtest conventions).
SCRUB_TRANSACTIONS = 8
SCRUB_PAGES = 6
_CHECKPOINT_EVERY = 9

#: Sim-scenario shape: enough traffic that rot lands on hot sectors.
SIM_TRANSACTIONS = 10
_SIM_MAX_PAGES = 60
_SIM_WORKLOAD_SEED = 7
_SIM_ROT_PROBABILITY = 0.05
#: A small drive so a full scrub patrol fits inside the workload's
#: makespan (a production pass over a 555-cylinder 3350 takes hours of
#: simulated time; the patrol mechanics are identical).
_SIM_DISK = IBM_3350.with_overrides(cylinders=12)
_SIM_RESERVED_CYLINDERS = 3
_SIM_DB_PAGES = 1_000
#: Idle time simulated after the workload so the patrol catches up —
#: during the run the scrubber yields to foreground queues, so the
#: repair guarantee is "by the end of the next quiet patrol window".
_SIM_DRAIN_MS = 10_000.0


@dataclass
class ScrubOutcome:
    """One corruption scenario against one architecture."""

    architecture: str
    target: str  # one of CORRUPTION_TARGETS, "clean", or "sim-scrubber"
    ok: bool
    violations: List[str] = field(default_factory=list)
    #: Injection site, detection/repair accounting, latency figures.
    details: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ScrubReport:
    """Integrity verdict of one architecture across every scenario."""

    architecture: str
    seed: int
    outcomes: List[ScrubOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def to_json(self) -> str:
        return json.dumps(
            {
                "architecture": self.architecture,
                "seed": self.seed,
                "ok": self.ok,
                "scenarios": [
                    {
                        "target": o.target,
                        "ok": o.ok,
                        "violations": o.violations,
                        "details": o.details,
                    }
                    for o in self.outcomes
                ],
            },
            sort_keys=True,
            indent=2,
        )


# -- functional sweep ---------------------------------------------------------
def _run_workload(arch: str, seed: int):
    """Drive one manager through the seeded script; returns committed map."""
    ops = generate_ops(
        seed, SCRUB_TRANSACTIONS, SCRUB_PAGES, checkpoint_every=_CHECKPOINT_EVERY
    )
    manager = make_manager(arch)
    tids: Dict[int, int] = {}
    committed: Dict[int, bytes] = {}
    pending: Dict[int, Dict[int, bytes]] = {}
    for op in ops:
        _apply_op(manager, op, tids, committed, pending)
    return manager, committed


def _verify_committed_reads(
    manager, committed: Dict[int, bytes], outcome: ScrubOutcome, when: str
) -> int:
    """The before-committed-read oracle: typed failure or right bytes.

    Returns how many reads raised a typed integrity error (detections);
    a read silently returning *wrong* bytes is the violation.
    """
    detected = 0
    for page in range(SCRUB_PAGES):
        expected = committed.get(page, b"")
        try:
            value = manager.read_committed(page)
        except IntegrityError:
            detected += 1
            continue
        if value != expected:
            outcome.violations.append(
                f"silent corruption reached a committed read {when}: "
                f"page {page} expected {expected!r}, got {value!r}"
            )
    return detected


def _inject(manager, target: str, rng) -> Dict[str, Any]:
    """Rot one stored value of ``target``'s kind; returns the site, or
    ``{"skipped": reason}`` when the architecture stores none."""
    stable = manager.stable
    if target == "data-page":
        pages = sorted(stable.pages)
        if not pages:
            return {"skipped": "no stable data pages (differential layout)"}
        page = pages[rng.randrange(len(pages))]
        data = stable.pages[page]
        position = rng.randrange(len(data)) if data else 0
        stable.corrupt_page(page, position)
        return {"page": page, "position": position}
    if target == "checkpoint":
        length = stable.file_length(_CHECKPOINT_FILE)
        if not length:
            return {"skipped": "no durable checkpoint records"}
        index = rng.randrange(length)
        stable.corrupt_record(_CHECKPOINT_FILE, index)
        return {"file": _CHECKPOINT_FILE, "index": index}
    if target == "log-record":
        candidates = [
            name
            for name in stable.files()
            if name not in _ARCHIVE_NAMES
            and name != _CHECKPOINT_FILE
            and stable.file_length(name)
        ]
        if not candidates:
            return {"skipped": "no online records to corrupt"}
        name = candidates[rng.randrange(len(candidates))]
        index = rng.randrange(stable.file_length(name))
        stable.corrupt_record(name, index)
        return {"file": name, "index": index}
    if target == "archive":
        candidates = [
            name for name in _ARCHIVE_NAMES if stable.file_length(name)
        ]
        if not candidates:
            return {"skipped": "empty archive"}
        name = candidates[rng.randrange(len(candidates))]
        index = rng.randrange(stable.file_length(name))
        stable.corrupt_record(name, index)
        return {"file": name, "index": index}
    raise ValueError(f"unknown corruption target {target!r}")


def run_corruption_scenario(arch: str, target: str, seed: int) -> ScrubOutcome:
    """Inject one corruption, then detect / repair / verify."""
    outcome = ScrubOutcome(arch, target, ok=False)
    manager, committed = _run_workload(arch, seed)
    stable = manager.stable
    # The archive is current as of the injection point: dump after the
    # workload (plus, for WAL, the continuously-appended archive log),
    # so targeted repair restores the exact committed state — the
    # "no committed loss" oracle holds with no rollback caveat.
    manager.dump()
    archive_append = getattr(manager, "archive_append", None)
    if archive_append is not None:
        archive_append()
    rng = RandomStreams(seed).stream(f"scrubtest.{arch}.{target}")
    site = _inject(manager, target, rng)
    outcome.details["injected"] = site
    if "skipped" in site:
        outcome.ok = True
        return outcome
    # Oracle: the scrub detects the rot...
    report = stable.scrub()
    detected = len(report["pages"]) + sum(
        len(indexes) for indexes in report["files"].values()
    )
    outcome.details["detected"] = detected
    if detected == 0:
        outcome.violations.append(
            f"injected corruption at {site} was not detected by the scrub"
        )
    # ...and nothing reaches a committed read silently in the meantime.
    _verify_committed_reads(manager, committed, outcome, "before repair")
    stats = manager.repair_corruption()
    outcome.details.update(stats)
    after = stable.scrub()
    if after["pages"] or after["files"]:
        outcome.violations.append(
            f"stable image still corrupt after repair: {after}"
        )
    repaired = (
        stats["pages_repaired"]
        + stats["records_repaired"]
        + stats["archives_rebuilt"]
        + stats["escalations"]
    )
    if repaired == 0:
        outcome.violations.append("repair reported no action taken")
    # No committed loss: every page reads back exactly, with no raise.
    for page in range(SCRUB_PAGES):
        expected = committed.get(page, b"")
        try:
            value = manager.read_committed(page)
        except IntegrityError as exc:
            outcome.violations.append(
                f"committed read of page {page} still fails after repair: {exc}"
            )
            continue
        if value != expected:
            outcome.violations.append(
                f"committed loss after repair: page {page} expected "
                f"{expected!r}, got {value!r}"
            )
    # The repaired recovery data must still replay: a crash/recover
    # round converges to the same committed state.
    manager.crash()
    manager.recover()
    _verify_committed_reads(manager, committed, outcome, "after restart")
    outcome.details["corruptions_injected"] = stable.corruptions_injected
    outcome.ok = not outcome.violations
    return outcome


def run_clean_scenario(arch: str, seed: int) -> ScrubOutcome:
    """The false-positive oracle: a clean run must scrub clean."""
    outcome = ScrubOutcome(arch, "clean", ok=False)
    manager, committed = _run_workload(arch, seed)
    manager.dump()
    report = manager.stable.scrub()
    if report["pages"] or report["files"]:
        outcome.violations.append(f"false positive on a clean run: {report}")
    if manager.stable.checksum_failures:
        outcome.violations.append(
            f"{manager.stable.checksum_failures} checksum failures on a "
            "clean run"
        )
    stats = manager.repair_corruption()
    if any(stats.values()):
        outcome.violations.append(
            f"repair mutated a clean store: {stats}"
        )
    _verify_committed_reads(manager, committed, outcome, "on a clean run")
    outcome.details["checksum_failures"] = manager.stable.checksum_failures
    outcome.ok = not outcome.violations
    return outcome


# -- simulation scenario ------------------------------------------------------
def run_scrub_sim_scenario(
    arch: str, seed: int, n_transactions: int = SIM_TRANSACTIONS
) -> ScrubOutcome:
    """Mirrored machine under probabilistic bit rot, scrubber patrolling.

    Oracle: the workload completes, the mirror masks every foreground
    read that hit a rotted side, and every scrub detection was repaired
    (detection latency recorded per sector).
    """
    outcome = ScrubOutcome(arch, "sim-scrubber", ok=False)
    overrides: Dict[str, Any] = {
        "seed": seed,
        "parallel_data_disks": True,
        "mirrored_data_disks": True,
        "scrub_enabled": True,
        "scrub_io_share": 1.0,
        "scrub_interval_ms": 5.0,
    }
    overrides.update(machine_overrides(arch))
    # The small-drive testbed wins over any per-architecture db sizing.
    overrides.update(
        {
            "disk": _SIM_DISK,
            "reserved_cylinders": _SIM_RESERVED_CYLINDERS,
            "db_pages": _SIM_DB_PAGES,
        }
    )
    config = MachineConfig().with_overrides(**overrides)
    transactions = generate_transactions(
        WorkloadConfig(n_transactions=n_transactions, max_pages=_SIM_MAX_PAGES),
        config.db_pages,
        RandomStreams(_SIM_WORKLOAD_SEED).stream("workload"),
    )
    injector = FaultInjector(
        FaultPlan.of(
            FaultSpec(FaultKind.BIT_ROT, probability=_SIM_ROT_PROBABILITY),
            seed=seed,
        )
    )
    machine = DatabaseMachine(config, survive_factory(arch)(), faults=injector)
    injector.arm(machine)
    scrubber = Scrubber(machine)
    result = machine.run(transactions)
    # Let the patrol catch up over the now-idle machine: during the run
    # the scrubber yields to foreground queues, so the repair guarantee
    # is "by the end of the next quiet patrol window".
    machine.env.run(until=machine.env.now + _SIM_DRAIN_MS)
    lost = [
        t.tid for t in transactions if t.status is not TransactionStatus.COMMITTED
    ]
    if lost:
        outcome.violations.append(
            f"{len(lost)} transactions failed to commit under rot: {lost[:5]}"
        )
    if machine.crashed:
        outcome.violations.append(
            f"machine crashed ({machine.crash_reason}) under rot"
        )
    counters = scrubber.extra_counters()
    rotted = sum(
        side.rotted_sectors.count
        for disk in machine.data_disks
        for side in disk.sides
    )
    remaining = sum(
        len(side.corrupt_sectors)
        for disk in machine.data_disks
        for side in disk.sides
        if not side.failed
    )
    outcome.details["rotted_sectors"] = rotted
    outcome.details["rotted_remaining"] = remaining
    outcome.details["corrupt_masked"] = result.counters.get(
        "mirror_corrupt_masked", 0
    )
    outcome.details.update(counters)
    if counters["scrub_passes"] < 1:
        outcome.violations.append("scrubber never completed a patrol pass")
    if rotted and not counters["scrub_detections"]:
        outcome.violations.append(
            f"{rotted} sectors rotted but the scrubber detected none"
        )
    if counters["scrub_detections"] != counters["scrub_repairs"]:
        outcome.violations.append(
            f"{counters['scrub_detections']} detections but "
            f"{counters['scrub_repairs']} repairs"
        )
    if remaining:
        outcome.violations.append(
            f"{remaining} rotted sectors survived the post-workload patrol"
        )
    latencies = scrubber.detection_latencies()
    if latencies:
        outcome.details["max_detection_latency_ms"] = round(max(latencies), 3)
        if min(latencies) < 0:
            outcome.violations.append("negative detection latency recorded")
    outcome.details["makespan_ms"] = result.makespan_ms
    outcome.ok = not outcome.violations
    return outcome


# -- the full sweep -----------------------------------------------------------
def run_scrubtest(arch: str, seed: int = 1985) -> ScrubReport:
    """Every corruption scenario against one architecture."""
    if arch not in ARCHITECTURES:
        raise ValueError(
            f"unknown architecture {arch!r}; pick one of {sorted(ARCHITECTURES)}"
        )
    report = ScrubReport(architecture=arch, seed=seed)
    report.outcomes.append(run_clean_scenario(arch, seed))
    for target in CORRUPTION_TARGETS:
        report.outcomes.append(run_corruption_scenario(arch, target, seed))
    report.outcomes.append(run_scrub_sim_scenario(arch, seed))
    return report
