"""The online integrity scrubber: a throttled background patrol.

Silent corruption (``FaultKind.BIT_ROT``) rots sectors in place; nothing
fails until something *reads* them.  Left to foreground traffic alone,
a rotted sector in a cold region can lurk until long after the mirror
twin — the only clean copy — has itself died or rotted.  The scrubber
closes that window the way production storage systems do: a background
process patrols every data-disk cylinder on a bounded I/O share (the
same throttle discipline as the mirrored-disk rebuild), *detects* rot
via the read path's checksum verdict (``DiskRequest.corrupt``), and
*repairs* it immediately:

* on a mirrored disk, the clean twin is read and the rotted side is
  rewritten (a rewrite sheds the rot — see ``Disk._settle_rot``);
* when no clean copy survives (both sides rotted, or the disk is
  unmirrored), the scrubber **escalates**: the sector is restored from
  the archive medium, modeled as a rewrite charged to the same disk and
  counted separately (``scrub_escalations``) — the simulation twin of
  the functional layer's per-architecture archive+log media recovery.

Detection latency — rot time to scrub detection — is recorded per
sector (:attr:`Scrubber.detections`), giving the scrubtest harness its
bounded-window oracle, exactly as :class:`HealthMonitor` does for
component failures.

Determinism: the scrubber draws no random numbers at all; with
``scrub_enabled`` off (the default) it is never constructed, so
fault-free runs stay byte-identical to pre-integrity traces.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.hardware.disk import DiskAddress
from repro.sim.monitor import CounterStat

__all__ = ["Scrubber"]


class Scrubber:
    """Background detect-and-repair patrol over one machine's data disks.

    Constructing the scrubber registers it as ``machine.scrubber`` (the
    machine folds :meth:`extra_counters` into its run result) and starts
    the patrol process; knobs come from the machine's config
    (``scrub_io_share``, ``scrub_interval_ms``).
    """

    def __init__(self, machine):
        self.machine = machine
        self.io_share = machine.config.scrub_io_share
        self.interval_ms = machine.config.scrub_interval_ms
        self.passes = CounterStat("scrub.passes")
        self.sectors_read = CounterStat("scrub.sectors_read")
        self.sectors_detected = CounterStat("scrub.detections")
        self.sectors_repaired = CounterStat("scrub.repairs")
        self.escalations = CounterStat("scrub.escalations")
        #: One record per detected sector: time, disk, sector, latency_ms.
        self.detections: List[Dict[str, Any]] = []
        machine.scrubber = self
        machine.env.process(self._patrol(), name="scrub")

    # -- the patrol -----------------------------------------------------------
    def _patrol(self):
        env = self.machine.env
        while not self.machine.crashed:
            for disk in self.machine.data_disks:
                yield from self._scrub_disk(disk)
            self.passes.increment()
            if self.interval_ms > 0:
                yield env.timeout(self.interval_ms)

    def _scrub_disk(self, disk):
        """One patrol over every cylinder of one logical disk."""
        env = self.machine.env
        params = getattr(disk, "params", None)
        if params is None:  # pragma: no cover - every modeled disk has params
            return
        tracer = getattr(env, "tracer", None)
        span = None
        if tracer is not None:
            span = tracer.begin(
                "scrub.pass", track=disk.name, cylinders=params.cylinders
            )
        read = 0
        detected = 0
        repaired = 0
        for cylinder in range(params.cylinders):
            addresses = [
                DiskAddress(cylinder, track, sector)
                for track in range(params.tracks_per_cylinder)
                for sector in range(params.pages_per_track)
            ]
            started = env.now
            for side in self._sides(disk):
                if side.failed:
                    continue
                request = side.submit("read", addresses, tag="scrub")
                yield request.done
                read += len(addresses)
                if request.error is not None or not request.corrupt:
                    continue
                rotted = [
                    addr
                    for addr in addresses
                    if addr.linear(side.params) in side.corrupt_sectors
                ]
                detected += len(rotted)
                yield from self._repair(disk, side, rotted, tracer)
                repaired += len(rotted)
            busy = env.now - started
            if self.io_share < 1.0 and busy > 0.0:
                yield env.timeout(busy * (1.0 - self.io_share) / self.io_share)
        self.sectors_read.increment(read)
        if tracer is not None:
            tracer.end(span, sectors=read, detected=detected, repaired=repaired)

    def _sides(self, disk) -> List[Any]:
        """The physical drives behind one logical disk, patrol order."""
        sides = getattr(disk, "sides", None)
        if sides is None:
            return [disk]
        stale = getattr(disk, "_stale", [False] * len(sides))
        return [side for index, side in enumerate(sides) if not stale[index]]

    def _repair(self, disk, side, rotted, tracer):
        """Heal rotted sectors on ``side``, recording detection latency."""
        env = self.machine.env
        now = env.now
        for addr in rotted:
            linear = addr.linear(side.params)
            rot_time = side.corrupt_sectors.get(linear, now)
            latency = now - rot_time
            self.sectors_detected.increment()
            self.detections.append(
                {
                    "time_ms": now,
                    "disk": side.name,
                    "sector": linear,
                    "latency_ms": latency,
                }
            )
            if tracer is not None:
                tracer.instant(
                    "scrub.detect",
                    track=side.name,
                    sector=linear,
                    latency_ms=latency,
                )
        twin = self._clean_twin(disk, side, rotted)
        if twin is not None:
            # Read the clean copy off the twin, rewrite the rotted side.
            request = twin.submit("read", rotted, tag="scrub")
            yield request.done
            mode = "mirror"
        else:
            # No surviving clean copy: restore from the archive medium
            # (the simulation twin of archive+log media recovery).
            self.escalations.increment(len(rotted))
            mode = "archive"
        write = side.submit("write", rotted, tag="scrub")
        yield write.done
        for addr in rotted:
            linear = addr.linear(side.params)
            self.sectors_repaired.increment()
            if tracer is not None:
                tracer.instant(
                    "scrub.repair", track=side.name, sector=linear, mode=mode
                )

    def _clean_twin(self, disk, side, rotted):
        """A live twin of ``side`` holding clean copies of every rotted
        sector, or ``None`` (escalate to the archive)."""
        for other in self._sides(disk):
            if other is side or other.failed:
                continue
            if all(
                addr.linear(other.params) not in other.corrupt_sectors
                for addr in rotted
            ):
                return other
        return None

    # -- accounting -----------------------------------------------------------
    def detection_latencies(self) -> List[float]:
        return [record["latency_ms"] for record in self.detections]

    def extra_counters(self) -> Dict[str, int]:
        """Scrubber counters the machine folds into its RunResult."""
        return {
            "scrub_passes": self.passes.count,
            "scrub_sectors_read": self.sectors_read.count,
            "scrub_detections": self.sectors_detected.count,
            "scrub_repairs": self.sectors_repaired.count,
            "scrub_escalations": self.escalations.count,
        }
