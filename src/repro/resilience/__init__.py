"""Online degraded-mode survival: health monitoring and failover.

The paper's architectures (Sections 3.1-3.3) are evaluated against
whole-machine crashes; a multiprocessor database machine also loses
*individual* components — a query processor, a log processor, one data
drive — and the recovery architecture determines whether the machine
keeps serving.  This package adds that layer:

* :class:`HealthMonitor` — the back-end controller's deterministic
  heartbeat/suspicion protocol over its own interconnect; detects a dead
  component within a bounded window and dispatches the failover;
* :func:`run_survivetest` — the survival harness (sibling of the
  crashtest): injects every permanent-failure kind at sampled points of
  a seeded workload and checks that no committed transaction is lost,
  the workload completes without a whole-machine restart, and reports
  the availability (degraded-throughput) figure per architecture.

See docs/RESILIENCE.md for the failover protocols and their oracles.
"""

from repro.resilience.health import HealthConfig, HealthMonitor
from repro.resilience.survivetest import (
    SCENARIO_KINDS,
    ScenarioOutcome,
    SurviveReport,
    run_media_scenario,
    run_survivetest,
)

__all__ = [
    "HealthConfig",
    "HealthMonitor",
    "SCENARIO_KINDS",
    "ScenarioOutcome",
    "SurviveReport",
    "run_media_scenario",
    "run_survivetest",
]
