"""Online degraded-mode survival: health monitoring and failover.

The paper's architectures (Sections 3.1-3.3) are evaluated against
whole-machine crashes; a multiprocessor database machine also loses
*individual* components — a query processor, a log processor, one data
drive — and the recovery architecture determines whether the machine
keeps serving.  This package adds that layer:

* :class:`HealthMonitor` — the back-end controller's deterministic
  heartbeat/suspicion protocol over its own interconnect; detects a dead
  component within a bounded window and dispatches the failover;
* :class:`Scrubber` — the online integrity scrubber: a throttled
  background patrol that detects silently rotted sectors (BIT_ROT
  faults) and repairs them from the mirror twin or escalates to archive
  media recovery, with per-sector detection-latency accounting;
* :func:`run_survivetest` — the survival harness (sibling of the
  crashtest): injects every permanent-failure kind at sampled points of
  a seeded workload and checks that no committed transaction is lost,
  the workload completes without a whole-machine restart, and reports
  the availability (degraded-throughput) figure per architecture;
* :func:`run_scrubtest` — the integrity harness: injects silent
  corruption into every stable-storage domain (data pages, log records,
  checkpoints, archives) across all architectures and checks that every
  corruption is detected before it reaches a committed read, clean runs
  raise no false alarms, and no committed work is lost after repair.

See docs/RESILIENCE.md for the failover protocols and their oracles,
and docs/INTEGRITY.md for the checksum layer and the scrub oracles.
"""

from repro.resilience.health import HealthConfig, HealthMonitor
from repro.resilience.scrubber import Scrubber
from repro.resilience.scrubtest import (
    CORRUPTION_TARGETS,
    ScrubOutcome,
    ScrubReport,
    run_clean_scenario,
    run_corruption_scenario,
    run_scrub_sim_scenario,
    run_scrubtest,
)
from repro.resilience.survivetest import (
    SCENARIO_KINDS,
    ScenarioOutcome,
    SurviveReport,
    run_media_scenario,
    run_survivetest,
)

__all__ = [
    "CORRUPTION_TARGETS",
    "HealthConfig",
    "HealthMonitor",
    "SCENARIO_KINDS",
    "ScenarioOutcome",
    "Scrubber",
    "ScrubOutcome",
    "ScrubReport",
    "SurviveReport",
    "run_clean_scenario",
    "run_corruption_scenario",
    "run_media_scenario",
    "run_scrub_sim_scenario",
    "run_scrubtest",
    "run_survivetest",
]
