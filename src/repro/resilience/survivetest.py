"""The survival harness: permanent single-component failures, online.

Sibling of the crashtest (:mod:`repro.faults.harness`): where the
crashtest kills the *whole machine* and verifies the restart algorithm,
the survivetest kills *one component* of a running machine at a sampled
point of a seeded workload and verifies degraded-mode survival:

* **query processor** — the victim transaction aborts via normal undo and
  restarts on the survivors; every transaction still commits;
* **log processor** (logging architecture) — surviving log processors
  take over the dead one's stream; no committed transaction is lost and
  the no-merge restart property is preserved;
* **mirrored data disk** — one physical side dies; the mirror serves off
  its twin (zero lost requests) and a replacement rebuilds in the
  background at a bounded I/O share;
* **unmirrored data disk** — the sim machine cannot mask it, so survival
  is the *functional* layer's archive story: :func:`run_media_scenario`
  drives each recovery manager through dump / media-failure / restore
  and checks the database rolls back exactly to the archive point
  (for WAL: loses nothing, thanks to the archive log), in-flight work
  re-runs, and the workload completes.

Every sim scenario also reports an **availability figure**: the fault-free
makespan over the degraded makespan for the same seed and workload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.harness import ARCHITECTURES, generate_ops, make_manager
from repro.faults.injector import FaultInjector, InjectedCrash
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.machine.config import MachineConfig
from repro.machine.machine import DatabaseMachine
from repro.registry import entry_for, machine_overrides, survive_factory
from repro.resilience.health import HealthConfig, HealthMonitor
from repro.sim.rng import RandomStreams
from repro.storage.wal import DistributedWalManager
from repro.workload.generator import WorkloadConfig, generate_transactions
from repro.workload.transaction import TransactionStatus

__all__ = [
    "SCENARIO_KINDS",
    "ScenarioOutcome",
    "SurviveReport",
    "run_media_scenario",
    "run_survivetest",
]

#: The failure kinds the harness injects per architecture.
SCENARIO_KINDS = ("qp-fail", "lp-fail", "disk-fail-mirrored", "media-restore")

#: Workload small enough for CI yet long enough that a mid-run failure
#: leaves real work on both sides of it.
DEFAULT_TRANSACTIONS = 12
_MAX_PAGES = 60
_WORKLOAD_SEED = 7

#: Ops/pages of the functional media workload (crashtest conventions).
MEDIA_TRANSACTIONS = 8
MEDIA_PAGES = 6
#: Archive-dump cadence of the media scenario, in ops.
MEDIA_DUMP_EVERY = 6


@dataclass
class ScenarioOutcome:
    """One injected failure against one architecture."""

    architecture: str
    scenario: str  # one of SCENARIO_KINDS
    ok: bool
    violations: List[str] = field(default_factory=list)
    #: Availability / detection latency / degraded-mode counters.
    details: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SurviveReport:
    """Survival of one architecture across every failure kind."""

    architecture: str
    seed: int
    n_transactions: int
    baseline_makespan_ms: float
    scenarios: List[ScenarioOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)

    @property
    def availability(self) -> Dict[str, float]:
        """Scenario -> fault-free makespan over degraded makespan."""
        out = {}
        for s in self.scenarios:
            if "availability" in s.details:
                out[s.scenario] = s.details["availability"]
        return out

    def to_json(self) -> str:
        return json.dumps(
            {
                "architecture": self.architecture,
                "seed": self.seed,
                "n_transactions": self.n_transactions,
                "baseline_makespan_ms": self.baseline_makespan_ms,
                "ok": self.ok,
                "scenarios": [
                    {
                        "scenario": s.scenario,
                        "ok": s.ok,
                        "violations": s.violations,
                        "details": s.details,
                    }
                    for s in self.scenarios
                ],
            },
            sort_keys=True,
            indent=2,
        )


# -- simulated machine scenarios ----------------------------------------------
def _build_and_run(
    arch: str,
    seed: int,
    n_transactions: int,
    specs: Tuple[FaultSpec, ...] = (),
    mirrored: bool = False,
    monitor: bool = True,
):
    """One sim run; returns ``(machine, health, result, transactions)``."""
    overrides: Dict[str, Any] = {"seed": seed, "parallel_data_disks": True}
    overrides.update(machine_overrides(arch))
    if mirrored:
        overrides["mirrored_data_disks"] = True
    config = MachineConfig().with_overrides(**overrides)
    transactions = generate_transactions(
        WorkloadConfig(n_transactions=n_transactions, max_pages=_MAX_PAGES),
        config.db_pages,
        RandomStreams(_WORKLOAD_SEED).stream("workload"),
    )
    injector = FaultInjector(FaultPlan.of(*specs, seed=seed)) if specs else None
    machine = DatabaseMachine(config, survive_factory(arch)(), faults=injector)
    if injector is not None:
        injector.arm(machine)
    health = HealthMonitor(machine, HealthConfig()) if monitor else None
    result = machine.run(transactions)
    return machine, health, result, transactions


def _survival_checks(
    outcome: ScenarioOutcome,
    machine,
    health: Optional[HealthMonitor],
    result,
    transactions,
    baseline_makespan: float,
    detect_kind: Optional[str],
) -> None:
    """The shared oracle: everything commits, nothing restarted wholesale."""
    lost = [
        t.tid for t in transactions if t.status is not TransactionStatus.COMMITTED
    ]
    if lost:
        outcome.violations.append(
            f"{len(lost)} transactions failed to commit: {lost[:5]}"
        )
    if machine.crashed:
        outcome.violations.append(
            f"machine crashed ({machine.crash_reason}) instead of degrading"
        )
    if detect_kind is not None and health is not None:
        hits = [d for d in health.detections if d["kind"] == detect_kind]
        if not hits:
            outcome.violations.append(
                f"health monitor never detected the {detect_kind} failure"
            )
        else:
            bound = health.detection_bound_ms
            worst = max(d["latency_ms"] for d in hits)
            outcome.details["detection_latency_ms"] = worst
            outcome.details["detection_bound_ms"] = bound
            if worst > bound:
                outcome.violations.append(
                    f"detection took {worst:.2f} ms, over the "
                    f"{bound:.2f} ms bound"
                )
    outcome.details["makespan_ms"] = result.makespan_ms
    if result.makespan_ms > 0:
        outcome.details["availability"] = baseline_makespan / result.makespan_ms
    outcome.details["restarts"] = result.n_restarts
    outcome.ok = not outcome.violations


def _qp_scenario(
    arch: str, seed: int, n: int, baseline_makespan: float, rng
) -> ScenarioOutcome:
    outcome = ScenarioOutcome(arch, "qp-fail", ok=False)
    at = (0.2 + 0.4 * rng.random()) * baseline_makespan
    target = rng.randrange(MachineConfig().n_query_processors)
    spec = FaultSpec(FaultKind.QP_FAIL, at_time=at, target=target)
    machine, health, result, txns = _build_and_run(arch, seed, n, specs=(spec,))
    if machine.qps.alive_count != machine.qps.capacity - 1:
        outcome.violations.append(
            f"expected exactly one dead processor, pool reports "
            f"{machine.qps.alive_count}/{machine.qps.capacity} alive"
        )
    outcome.details["failed_at_ms"] = at
    outcome.details["target"] = target
    _survival_checks(
        outcome, machine, health, result, txns, baseline_makespan, "qp"
    )
    return outcome


def _lp_scenario(
    arch: str, seed: int, n: int, baseline_makespan: float, rng
) -> ScenarioOutcome:
    outcome = ScenarioOutcome(arch, "lp-fail", ok=False)
    at = (0.2 + 0.4 * rng.random()) * baseline_makespan
    target = rng.randrange(3)
    spec = FaultSpec(FaultKind.LP_FAIL, at_time=at, target=target)
    machine, health, result, txns = _build_and_run(arch, seed, n, specs=(spec,))
    alive = machine.arch.alive_mask()
    if alive.count(True) != len(alive) - 1:
        outcome.violations.append(f"expected one dead log processor, got {alive}")
    outcome.details["failed_at_ms"] = at
    outcome.details["target"] = target
    outcome.details["fragments_reshipped"] = machine.arch.fragments_reshipped.count
    _survival_checks(
        outcome, machine, health, result, txns, baseline_makespan, "lp"
    )
    return outcome


def _mirrored_disk_scenario(
    arch: str, seed: int, n: int, rng
) -> ScenarioOutcome:
    outcome = ScenarioOutcome(arch, "disk-fail-mirrored", ok=False)
    # Mirrored baseline: mirroring changes service-time draws, so the
    # availability figure compares against the fault-free *mirrored* run.
    _m, _h, base, _t = _build_and_run(
        arch, seed, n, mirrored=True, monitor=False
    )
    at = (0.2 + 0.4 * rng.random()) * base.makespan_ms
    target = rng.randrange(MachineConfig().n_data_disks)
    spec = FaultSpec(
        FaultKind.DISK_FAIL, at_time=at, target=target, repair_after=100.0
    )
    machine, health, result, txns = _build_and_run(
        arch, seed, n, specs=(spec,), mirrored=True
    )
    lost = result.counters.get("mirror_lost_requests", 0)
    if lost:
        outcome.violations.append(f"{lost} requests lost behind the mirror")
    disk = machine.data_disks[target]
    outcome.details["failed_at_ms"] = at
    outcome.details["target"] = target
    outcome.details["fallback_reads"] = result.counters.get(
        "mirror_fallback_reads", 0
    )
    outcome.details["rebuilt_pages"] = result.counters.get(
        "mirror_rebuilt_pages", 0
    )
    outcome.details["rebuild_completed"] = bool(disk.rebuilds_completed.count)
    _survival_checks(
        outcome, machine, health, result, txns, base.makespan_ms, "disk"
    )
    return outcome


# -- functional media scenarios -----------------------------------------------
def run_media_scenario(
    arch: str,
    seed: int,
    fail_index: Optional[int] = None,
    n_transactions: int = MEDIA_TRANSACTIONS,
    n_pages: int = MEDIA_PAGES,
    dump_every: int = MEDIA_DUMP_EVERY,
    crash_during_restore: bool = False,
) -> ScenarioOutcome:
    """Dump / media-failure / restore against one recovery manager.

    Drives the crashtest's seeded op script with archive dumps woven in
    every ``dump_every`` ops, loses the data disks before op
    ``fail_index`` (sampled from the seed when None), restores from the
    archive, re-begins the in-flight transactions, and completes the
    workload.  Oracle: the final database equals the committed state the
    architecture *can* guarantee — everything, for WAL (dump + archive
    log roll forward); the archived prefix plus post-restore commits for
    the no-log managers — and a final dump/restore round-trip is exact.

    With ``crash_during_restore`` the restore is additionally crashed at
    its first ``media.*`` fault point and re-run; convergence to the
    same state is part of the oracle.
    """
    ops = generate_ops(seed, n_transactions, n_pages, checkpoint_every=None)
    rng = RandomStreams(seed).stream("survivetest.media")
    if fail_index is None:
        fail_index = rng.randrange(dump_every + 1, len(ops))
    if not dump_every < fail_index <= len(ops):
        raise ValueError(
            f"fail_index {fail_index} outside ({dump_every}, {len(ops)}]"
        )
    outcome = ScenarioOutcome(arch, "media-restore", ok=False)
    outcome.details["fail_index"] = fail_index
    outcome.details["crash_during_restore"] = crash_during_restore
    manager = make_manager(arch)
    is_wal = isinstance(manager, DistributedWalManager)
    tids: Dict[int, int] = {}
    pending: Dict[int, Dict[int, bytes]] = {}
    committed: Dict[int, bytes] = {}
    archived: Optional[Dict[int, bytes]] = None
    dumps = 0

    def apply(op: Tuple) -> None:
        kind = op[0]
        if kind == "begin":
            tids[op[1]] = manager.begin()
            pending[op[1]] = {}
        elif kind == "write":
            _k, slot, page, data = op
            manager.write(tids[slot], page, data)
            pending[slot][page] = data
        elif kind == "flush":
            flush = getattr(manager, "flush_page", None)
            if flush is not None:
                flush(op[1])
        elif kind == "commit":
            slot = op[1]
            manager.commit(tids[slot])
            committed.update(pending.pop(slot))
            del tids[slot]
        elif kind == "abort":
            slot = op[1]
            manager.abort(tids[slot])
            pending.pop(slot)
            del tids[slot]
        else:  # pragma: no cover - generate_ops emits nothing else here
            raise ValueError(f"unknown op {op!r}")

    def restore() -> None:
        if crash_during_restore:
            injector = FaultInjector(
                FaultPlan.of(FaultSpec(FaultKind.CRASH, hook="media.*"), seed=seed)
            )
            manager.set_fault_callback(injector.reached)
            try:
                manager.recover_from_media_failure()
                outcome.violations.append(
                    "restore crossed no media.* fault point to crash at"
                )
            except InjectedCrash:
                manager.set_fault_callback(None)
                manager.crash()
                manager.recover_from_media_failure()
            manager.set_fault_callback(None)
        else:
            manager.recover_from_media_failure()

    for index, op in enumerate(ops):
        if index and index % dump_every == 0:
            manager.dump()
            dumps += 1
            archived = dict(committed)
        if is_wal and dumps:
            # Continuous archiving: the archive log keeps up with the
            # online logs, so restore loses nothing (the WAL advantage).
            manager.archive_append()
        if index == fail_index:
            restore()
            # The no-log managers roll back to the archive point; WAL
            # rolls forward through the archive log.
            if not is_wal:
                committed = dict(archived or {})
            # In-flight transactions were erased by the restart
            # discipline; the BEC re-submits them (fresh tids, same
            # writes) and the workload continues.
            for slot in sorted(tids):
                tids[slot] = manager.begin()
                for page in sorted(pending[slot]):
                    manager.write(tids[slot], page, pending[slot][page])
        apply(op)
    if tids:
        outcome.violations.append(
            f"workload did not complete: slots {sorted(tids)} left active"
        )
    expected = {page: committed.get(page, b"") for page in range(n_pages)}
    actual = {page: manager.read_committed(page) for page in range(n_pages)}
    if actual != expected:
        for page in range(n_pages):
            if actual[page] != expected[page]:
                outcome.violations.append(
                    f"page {page}: expected {expected[page]!r}, "
                    f"found {actual[page]!r}"
                )
    # Round-trip: a fresh dump followed by a restore must be exact for
    # every manager (nothing is in flight now).
    manager.dump()
    manager.recover_from_media_failure()
    after = {page: manager.read_committed(page) for page in range(n_pages)}
    if after != expected:
        outcome.violations.append("final dump/restore round-trip diverged")
    outcome.details["dumps"] = dumps
    outcome.details["rolled_back_to_archive"] = not is_wal
    outcome.ok = not outcome.violations
    return outcome


# -- the full sweep -----------------------------------------------------------
def run_survivetest(
    arch: str,
    seed: int = 1985,
    n_transactions: int = DEFAULT_TRANSACTIONS,
) -> SurviveReport:
    """Inject every permanent-failure kind against one architecture.

    ``arch`` is a registered crashtest architecture name (``wal``,
    ``shadow``, ..., ``command``, ``redo``); the sim scenarios run
    its simulated counterpart, the media scenarios its functional
    recovery manager.
    """
    if arch not in ARCHITECTURES:
        raise ValueError(
            f"unknown architecture {arch!r}; pick one of {sorted(ARCHITECTURES)}"
        )
    rng = RandomStreams(seed).stream("survivetest.points")
    _m, _h, baseline, base_txns = _build_and_run(
        arch, seed, n_transactions, monitor=False
    )
    report = SurviveReport(
        architecture=arch,
        seed=seed,
        n_transactions=n_transactions,
        baseline_makespan_ms=baseline.makespan_ms,
    )
    not_committed = [
        t.tid for t in base_txns if t.status is not TransactionStatus.COMMITTED
    ]
    if not_committed:
        report.scenarios.append(
            ScenarioOutcome(
                arch,
                "baseline",
                ok=False,
                violations=[f"fault-free baseline left {not_committed} uncommitted"],
            )
        )
        return report
    report.scenarios.append(
        _qp_scenario(arch, seed, n_transactions, baseline.makespan_ms, rng)
    )
    if entry_for(arch).lp_failover:
        report.scenarios.append(
            _lp_scenario(arch, seed, n_transactions, baseline.makespan_ms, rng)
        )
    report.scenarios.append(
        _mirrored_disk_scenario(arch, seed, n_transactions, rng)
    )
    report.scenarios.append(run_media_scenario(arch, seed))
    report.scenarios.append(
        run_media_scenario(arch, seed, crash_during_restore=True)
    )
    return report
