"""The back-end controller's health monitor: heartbeats over a link.

The BEC probes every component (query processors, log processors, data
disks) on a fixed heartbeat over its own low-bandwidth interconnect.  A
component that misses ``suspicion_probes`` consecutive probes is declared
dead and the matching failover is dispatched:

* a dead **query processor**'s in-flight transaction aborts through the
  machine's normal undo path and restarts on the survivors;
* a dead **log processor**'s stream is taken over by the surviving log
  processors (its buffered fragments were already re-shipped; the
  takeover forces the survivors so the re-homed fragments become durable
  promptly);
* a dead **data-disk side** needs no dispatch — a mirrored disk already
  serves off its twin — but the detection instant is what operations
  (and the survivetest harness) key the repair on.

Detection is *deterministic and bounded*: probe jitter draws from the
machine's own ``RandomStreams`` under the independent ``health.jitter``
name (so attaching a monitor never perturbs any pre-existing stream),
and a failure at any instant is declared within
:attr:`HealthMonitor.detection_bound_ms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from repro.hardware.interconnect import Interconnect
from repro.sim.monitor import CounterStat

__all__ = ["HealthConfig", "HealthMonitor"]


@dataclass(frozen=True)
class HealthConfig:
    """Parameters of the heartbeat/suspicion protocol."""

    #: Probe period, in ms.
    heartbeat_ms: float = 5.0
    #: Consecutive missed probes before a component is declared dead.
    suspicion_probes: int = 2
    #: Size of one probe message on the monitor's interconnect.
    probe_bytes: int = 64
    #: Upper bound of the per-round start jitter, in ms (drawn from the
    #: ``health.jitter`` stream; keeps probe rounds from phase-locking
    #: with periodic workload events).
    jitter_ms: float = 0.5
    #: Bandwidth of the monitor's dedicated probe link.
    link_bandwidth_mb_s: float = 1.0

    def __post_init__(self) -> None:
        if self.heartbeat_ms <= 0:
            raise ValueError("heartbeat period must be positive")
        if self.suspicion_probes < 1:
            raise ValueError("need at least one suspicion probe")
        if self.probe_bytes < 1:
            raise ValueError("probe must have positive size")
        if self.jitter_ms < 0:
            raise ValueError("jitter must be >= 0")


class HealthMonitor:
    """Deterministic failure detector attached to one ``DatabaseMachine``.

    Constructing the monitor registers it as ``machine.health``; from
    then on component failures are *detected* (within the bounded
    window) rather than reacted to instantaneously, and the monitor
    dispatches the architecture-appropriate failover at the detection
    instant.
    """

    def __init__(self, machine, config: HealthConfig = HealthConfig()):
        self.machine = machine
        self.config = config
        #: The BEC's own probe link: probes never contend with the
        #: QP-LP fragment traffic or the data disks.
        self.link = Interconnect(
            machine.env,
            bandwidth_mb_per_s=config.link_bandwidth_mb_s,
            channels=1,
            name="health",
        )
        self._rng = machine.streams.stream("health.jitter")
        #: (kind, index) -> consecutive missed probes.
        self._suspicion: Dict[Tuple[str, int], int] = {}
        #: (kind, index) -> time of the first missed probe of the
        #: current suspicion run (detection latency is measured from it).
        self._suspect_since: Dict[Tuple[str, int], float] = {}
        self._declared: Set[Tuple[str, int]] = set()
        self.probes_sent = CounterStat("health.probes")
        #: One record per declaration: time, component, measured latency.
        self.detections: List[Dict[str, Any]] = []
        machine.health = self
        machine.env.process(self._probe_loop(), name="health")

    # -- membership ----------------------------------------------------------
    def components(self) -> List[Tuple[str, int]]:
        """Every component the monitor probes, in probe order."""
        machine = self.machine
        comps: List[Tuple[str, int]] = [
            ("qp", i) for i in range(machine.qps.capacity)
        ]
        if getattr(machine.arch, "alive_mask", None) is not None:
            comps.extend(
                ("lp", i) for i in range(len(machine.arch.log_processors))
            )
        comps.extend(("disk", i) for i in range(len(machine.data_disks)))
        return comps

    def _healthy(self, kind: str, index: int) -> bool:
        machine = self.machine
        if kind == "qp":
            return machine.qps.is_alive(index)
        if kind == "lp":
            return machine.arch.alive_mask()[index]
        disk = machine.data_disks[index]
        # A degraded mirror (one side lost) reports unhealthy: the
        # machine keeps serving, but the monitor must notice and raise
        # the repair signal.
        return not disk.failed and not getattr(disk, "degraded", False)

    @property
    def detection_bound_ms(self) -> float:
        """Worst-case failure-to-declaration window.

        A failure lands just after its probe in the worst case, so
        declaration takes ``suspicion_probes`` further full rounds plus
        the round in flight; each round costs the heartbeat, the maximum
        jitter, and the serialized probe transfers.
        """
        cfg = self.config
        per_round = (
            cfg.heartbeat_ms
            + cfg.jitter_ms
            + len(self.components()) * self.link.transfer_ms(cfg.probe_bytes)
        )
        return (cfg.suspicion_probes + 1) * per_round

    # -- the probe process ----------------------------------------------------
    def _probe_loop(self):
        env = self.machine.env
        cfg = self.config
        while not self.machine.crashed:
            jitter = cfg.jitter_ms * self._rng.random() if cfg.jitter_ms else 0.0
            yield env.timeout(cfg.heartbeat_ms + jitter)
            for key in self.components():
                yield self.link.transfer(cfg.probe_bytes)
                self.probes_sent.increment()
                if self._healthy(*key):
                    # A repaired (or replaced) component rejoins cleanly:
                    # a later failure of the same slot re-detects.
                    self._suspicion.pop(key, None)
                    self._suspect_since.pop(key, None)
                    self._declared.discard(key)
                    continue
                if key in self._declared:
                    continue
                missed = self._suspicion.get(key, 0) + 1
                self._suspicion[key] = missed
                if missed == 1:
                    self._suspect_since[key] = env.now
                if missed >= cfg.suspicion_probes:
                    self._declared.add(key)
                    self._declare(*key)

    def _declare(self, kind: str, index: int) -> None:
        machine = self.machine
        now = machine.env.now
        latency = now - self._suspect_since.get((kind, index), now)
        self.detections.append(
            {"time_ms": now, "kind": kind, "index": index, "latency_ms": latency}
        )
        machine._tinstant("health.detect", kind=kind, index=index)
        if kind == "qp":
            machine.failover_query_processor(index)
        elif kind == "lp":
            machine.arch.failover_log_processor(index)
        # kind == "disk": the mirror masks the loss by itself; the
        # detection record is the repair-dispatch signal.
