"""Stable storage: what survives a crash.

A :class:`StableStorage` instance models the disk: a page store with
atomic single-page writes, plus named append-only *files* (logs, scratch
rings, transaction lists, differential files).  Everything here survives
:py:meth:`~repro.storage.interface.RecoveryManager.crash`; volatile state
lives in the managers and is wiped.

Page contents are opaque ``bytes``; managers that need structure encode it
themselves (keeping the volatile/stable boundary honest).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["StableStorage"]


class StableStorage:
    """Crash-surviving page store and append-only files."""

    def __init__(self) -> None:
        self._pages: Dict[int, Tuple[bytes, int]] = {}
        self._files: Dict[str, List[Any]] = {}
        #: Cumulative I/O counters (for recovery-cost instrumentation).
        self.page_writes = 0
        self.page_reads = 0
        self.records_appended = 0
        self.records_read = 0

    # -- page store ----------------------------------------------------------
    def write_page(self, page: int, data: bytes, seq: int = 0) -> None:
        """Atomically overwrite ``page`` (a single-page disk write).

        ``seq`` is the page's update sequence number; write-ahead-logging
        managers use it to decide whether a log record is already reflected.
        """
        if not isinstance(data, bytes):
            raise TypeError(f"page data must be bytes, got {type(data).__name__}")
        self._pages[page] = (data, seq)
        self.page_writes += 1

    def read_page(self, page: int) -> bytes:
        data, _seq = self._pages.get(page, (b"", 0))
        self.page_reads += 1
        return data

    def page_seq(self, page: int) -> int:
        _data, seq = self._pages.get(page, (b"", 0))
        return seq

    def has_page(self, page: int) -> bool:
        return page in self._pages

    def delete_page(self, page: int) -> None:
        """Drop ``page`` from the page store (space reclamation; free-map
        bookkeeping is not charged as a data-page write)."""
        self._pages.pop(page, None)

    @property
    def pages(self) -> Dict[int, bytes]:
        """A snapshot of all page contents (for assertions in tests)."""
        return {page: data for page, (data, _seq) in self._pages.items()}

    # -- append-only files ------------------------------------------------------
    def append(self, file: str, record: Any) -> None:
        """Append one record to a named file (forced; survives crash)."""
        self._files.setdefault(file, []).append(record)
        self.records_appended += 1

    def extend(self, file: str, records) -> None:
        records = list(records)
        self._files.setdefault(file, []).extend(records)
        self.records_appended += len(records)

    def read_file(self, file: str) -> List[Any]:
        """The full contents of a file (empty if never written)."""
        records = list(self._files.get(file, ()))
        self.records_read += len(records)
        return records

    def truncate(self, file: str, keep: Optional[List[Any]] = None) -> None:
        """Replace a file's contents with ``keep`` (default: empty)."""
        self._files[file] = list(keep or ())

    def file_length(self, file: str) -> int:
        return len(self._files.get(file, ()))

    def files(self) -> List[str]:
        return sorted(self._files)
