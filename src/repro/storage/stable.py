"""Stable storage: what survives a crash.

A :class:`StableStorage` instance models the disk: a page store with
atomic single-page writes, plus named append-only *files* (logs, scratch
rings, transaction lists, differential files).  Everything here survives
:py:meth:`~repro.storage.interface.RecoveryManager.crash`; volatile state
lives in the managers and is wiped.

Page contents are opaque ``bytes``; managers that need structure encode it
themselves (keeping the volatile/stable boundary honest).

Every stored value carries a **checksum envelope** (``repro.integrity``):
the sum is computed at write time and verified on every read, so silent
corruption — injected by :meth:`StableStorage.corrupt_page` /
:meth:`StableStorage.corrupt_record`, modeling latent sector errors — is
*detected* at the first read instead of silently trusted.  Log replay
reads go through :meth:`read_log`, which additionally applies the
torn-tail stop rule (see :func:`repro.integrity.split_torn_tail` and
docs/INTEGRITY.md).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.integrity import (
    PageIntegrityError,
    RecordIntegrityError,
    page_checksum,
    record_checksum,
    split_torn_tail,
    tamper_bytes,
    tamper_record,
)

__all__ = ["StableStorage"]


class StableStorage:
    """Crash-surviving page store and append-only files."""

    def __init__(self) -> None:
        self._pages: Dict[int, Tuple[bytes, int]] = {}
        self._files: Dict[str, List[Any]] = {}
        #: Checksum envelopes, stored beside (not inside) the values so
        #: page images and file contents render exactly as before.
        self._page_sums: Dict[int, int] = {}
        self._file_sums: Dict[str, List[int]] = {}
        #: Cumulative I/O counters (for recovery-cost instrumentation).
        self.page_writes = 0
        self.page_reads = 0
        self.records_appended = 0
        self.records_read = 0
        #: Integrity counters (for the scrubtest detection accounting).
        self.checksum_failures = 0
        self.torn_tail_drops = 0
        self.corruptions_injected = 0

    # -- page store ----------------------------------------------------------
    def write_page(self, page: int, data: bytes, seq: int = 0) -> None:
        """Atomically overwrite ``page`` (a single-page disk write).

        ``seq`` is the page's update sequence number; write-ahead-logging
        managers use it to decide whether a log record is already reflected.
        """
        if not isinstance(data, bytes):
            raise TypeError(f"page data must be bytes, got {type(data).__name__}")
        self._pages[page] = (data, seq)
        self._page_sums[page] = page_checksum(data)
        self.page_writes += 1

    def read_page(self, page: int) -> bytes:
        data, _seq = self._pages.get(page, (b"", 0))
        self.page_reads += 1
        if page in self._pages and self._page_sums[page] != page_checksum(data):
            self.checksum_failures += 1
            raise PageIntegrityError(page)
        return data

    def page_seq(self, page: int) -> int:
        _data, seq = self._pages.get(page, (b"", 0))
        return seq

    def has_page(self, page: int) -> bool:
        return page in self._pages

    def delete_page(self, page: int) -> None:
        """Drop ``page`` from the page store (space reclamation; free-map
        bookkeeping is not charged as a data-page write)."""
        self._pages.pop(page, None)
        self._page_sums.pop(page, None)

    @property
    def pages(self) -> Dict[int, bytes]:
        """A snapshot of all page contents (for assertions in tests)."""
        return {page: data for page, (data, _seq) in self._pages.items()}

    # -- append-only files ------------------------------------------------------
    def append(self, file: str, record: Any) -> None:
        """Append one record to a named file (forced; survives crash)."""
        self._files.setdefault(file, []).append(record)
        self._file_sums.setdefault(file, []).append(record_checksum(record))
        self.records_appended += 1

    def extend(self, file: str, records) -> None:
        records = list(records)
        self._files.setdefault(file, []).extend(records)
        self._file_sums.setdefault(file, []).extend(
            record_checksum(record) for record in records
        )
        self.records_appended += len(records)

    def read_file(self, file: str) -> List[Any]:
        """The full contents of a file (empty if never written).

        Every record is verified against its checksum envelope; a
        mismatch anywhere raises :class:`RecordIntegrityError` — plain
        files (page tables, transaction lists, archives) have no
        torn-tail excuse, unlike logs (:meth:`read_log`).
        """
        records = list(self._files.get(file, ()))
        sums = self._file_sums.get(file, ())
        self.records_read += len(records)
        for index, record in enumerate(records):
            if record_checksum(record) != sums[index]:
                self.checksum_failures += 1
                raise RecordIntegrityError(file, index)
        return records

    def read_log(self, file: str) -> List[Any]:
        """A log's replayable prefix, under the torn-tail stop rule.

        A contiguous corrupt *suffix* is indistinguishable from the final
        flush tearing at the crash: it is dropped (counted in
        ``torn_tail_drops``) and replay proceeds on the clean prefix.
        A corrupt record *followed by clean ones* cannot be a tear — it
        is rot inside committed history — and raises
        :class:`RecordIntegrityError` so restart escalates to media
        recovery instead of replaying poisoned state.
        """
        records = list(self._files.get(file, ()))
        sums = self._file_sums.get(file, ())
        ok = [
            record_checksum(record) == sums[index]
            for index, record in enumerate(records)
        ]
        keep, interior = split_torn_tail(ok)
        if interior is not None:
            self.records_read += interior
            self.checksum_failures += 1
            raise RecordIntegrityError(file, interior)
        if keep < len(records):
            self.torn_tail_drops += len(records) - keep
        self.records_read += keep
        return records[:keep]

    def truncate(self, file: str, keep: Optional[List[Any]] = None) -> None:
        """Replace a file's contents with ``keep`` (default: empty)."""
        kept = list(keep or ())
        self._files[file] = kept
        self._file_sums[file] = [record_checksum(record) for record in kept]

    def file_length(self, file: str) -> int:
        return len(self._files.get(file, ()))

    def files(self) -> List[str]:
        return sorted(self._files)

    # -- integrity: scrub probes and corruption injection -----------------------
    def verify_page(self, page: int) -> bool:
        """Non-raising scrub probe: does ``page`` match its envelope?"""
        if page not in self._pages:
            return True
        data, _seq = self._pages[page]
        return self._page_sums[page] == page_checksum(data)

    def verify_file(self, file: str) -> List[int]:
        """Non-raising scrub probe: indexes of corrupt records in ``file``."""
        sums = self._file_sums.get(file, ())
        return [
            index
            for index, record in enumerate(self._files.get(file, ()))
            if record_checksum(record) != sums[index]
        ]

    def scrub(self) -> Dict[str, Any]:
        """One full integrity scan: every page, every file, no raises.

        Returns ``{"pages": [page, ...], "files": {name: [index, ...]}}``
        listing only corrupt entries, deterministically ordered.
        """
        bad_pages = [
            page for page in sorted(self._pages) if not self.verify_page(page)
        ]
        bad_files = {}
        for name in self.files():
            bad = self.verify_file(name)
            if bad:
                bad_files[name] = bad
        return {"pages": bad_pages, "files": bad_files}

    def page_matches(self, page: int, data: bytes) -> bool:
        """Is ``data`` exactly the bits ``page``'s envelope was computed
        over?  True means an archive copy is a sound repair candidate —
        the page has not been legitimately rewritten since."""
        return page in self._pages and self._page_sums[page] == page_checksum(data)

    def record_matches(self, file: str, index: int, record: Any) -> bool:
        """Is ``record`` exactly what ``file``'s envelope at ``index``
        was computed over?  (Repair-candidate probe, like
        :meth:`page_matches`.)"""
        sums = self._file_sums.get(file, ())
        return 0 <= index < len(sums) and record_checksum(record) == sums[index]

    def restore_page(self, page: int, data: bytes) -> None:
        """Targeted repair: rewrite a rotted page with a verified copy.

        Unlike :meth:`write_page` the envelope is *not* recomputed — the
        candidate must match the stored envelope (:meth:`page_matches`),
        proving it is the original bits; a stale or wrong candidate
        raises :class:`PageIntegrityError` instead of masking the rot.
        """
        if page not in self._pages:
            raise KeyError(f"cannot restore absent page {page}")
        if self._page_sums[page] != page_checksum(data):
            raise PageIntegrityError(
                page, "repair candidate does not match the stored envelope"
            )
        _old, seq = self._pages[page]
        self._pages[page] = (data, seq)
        self.page_writes += 1

    def replace_record(self, file: str, index: int, record: Any) -> None:
        """Targeted repair: rewrite one rotted record with a verified copy
        (the record-store counterpart of :meth:`restore_page`)."""
        sums = self._file_sums.get(file, ())
        if not 0 <= index < len(sums):
            raise KeyError(f"cannot restore absent record {file}[{index}]")
        if record_checksum(record) != sums[index]:
            raise RecordIntegrityError(
                file, index, "repair candidate does not match the stored envelope"
            )
        self._files[file][index] = record
        self.records_appended += 1

    def corrupt_page(self, page: int, position: int = 0) -> None:
        """Inject silent corruption: flip a byte of ``page`` in place.

        The checksum envelope is *not* updated — that is the point — so
        the next verified read detects the rot.
        """
        if page not in self._pages:
            raise KeyError(f"cannot corrupt absent page {page}")
        data, seq = self._pages[page]
        self._pages[page] = (tamper_bytes(data, position), seq)
        self.corruptions_injected += 1

    def corrupt_record(self, file: str, index: int) -> None:
        """Inject silent corruption: mutate one stored record in place."""
        records = self._files.get(file, [])
        if not 0 <= index < len(records):
            raise KeyError(f"cannot corrupt absent record {file}[{index}]")
        records[index] = tamper_record(records[index])
        self.corruptions_injected += 1
