"""Redo-only WAL with early lock release at the commit-record append.

The second modern design judged against the 1985 field (Sauer & Härder,
"A novel recovery mechanism enabling fine-granained locking and fast,
REDO-only recovery"; Lomet et al. showed logical redo-only recovery
performance-competitive with ARIES): drop the undo half of write-ahead
logging entirely.

Two invariants make that sound:

* **No-steal write gate.**  An uncommitted page never reaches its home
  disk: :meth:`RedoOnlyWalManager.flush_page` silently refuses while the
  latest update is uncommitted (counted in ``writes_gated``).  With no
  uncommitted data on disk there is nothing to undo — losers vanish
  with the buffer pool at the crash.

* **Early lock release (ELR).**  A committing transaction's page locks
  are released the moment its commit record is *appended* to the
  sequential log, before the force completes.  Safe because the log is
  sequential: any dependent transaction's commit record lands later in
  the same log, so forcing it also forces this one — a crash can never
  durably commit the dependent without its predecessor.  The release is
  marked with a ``lock.release`` trace instant and counted in
  ``early_lock_releases``; the committed-prefix crashtest oracle covers
  the window via the ``redo.commit.elr`` fault point.

Restart is a **single pass**: one scan of the log classifies commit
records and surviving updates (the analysis phase), then redo installs
the newest committed image of each page the stable database is missing.
There is no undo phase — the manager records ``log.analysis`` and
``recovery.redo`` trace spans and never a ``recovery.undo`` span, which
the harnesses assert.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.checkpoint import FuzzyCheckpoint
from repro.storage.archive import ArchiveDumpMixin
from repro.storage.interface import RecoveryManager
from repro.storage.modern.clock import StepClock
from repro.storage.modern.logbuf import BufferedLog
from repro.storage.stable import StableStorage

__all__ = ["RedoOnlyWalManager", "RedoRecord"]


class RedoRecord(NamedTuple):
    """One page update: after-image only (there is no undo phase)."""

    tid: int
    page: int
    seq: int
    after: bytes


class RedoOnlyWalManager(ArchiveDumpMixin, RecoveryManager):
    """Sequential redo-only WAL with ELR; see module docstring."""

    name = "redo-only-wal"
    checkpoint_policy = FuzzyCheckpoint

    LOG_NAME = "redolog"

    def __init__(
        self,
        stable: Optional[StableStorage] = None,
        enforce_locks: bool = True,
        tracer=None,
    ):
        super().__init__(stable, enforce_locks)
        self._log = BufferedLog(self.stable, self.LOG_NAME)
        #: Optional :class:`repro.trace.Tracer` (duck-typed).  Restart
        #: records ``log.analysis`` + ``recovery.redo`` spans and commit
        #: records ``lock.release`` instants.
        self.tracer = tracer
        self._clock = None
        if tracer is not None and getattr(tracer, "env", None) is None:
            self._clock = StepClock()
            tracer.env = self._clock
        # -- volatile state --
        #: page -> (data, seq, writer-tid or None once committed).
        self._pool: Dict[int, Tuple[bytes, int, Optional[int]]] = {}
        self._page_seq: Dict[int, int] = {}
        #: tid -> page -> the committed image the transaction overwrote.
        self._txn_first_before: Dict[int, Dict[int, bytes]] = {}
        self._txn_pages: Dict[int, Set[int]] = {}
        # -- statistics --
        self.writes_gated = 0
        self.early_lock_releases = 0
        #: Pages redone by the most recent restart.
        self.last_redo_pages = 0

    # -- internals -----------------------------------------------------------
    def _tick(self) -> None:
        if self._clock is not None:
            self._clock.tick()

    def _current(self, page: int) -> bytes:
        entry = self._pool.get(page)
        if entry is not None:
            return entry[0]
        return self.stable.read_page(page)

    def _next_seq(self, page: int) -> int:
        seq = self._page_seq.get(page)
        if seq is None:
            seq = self.stable.page_seq(page)
        seq += 1
        self._page_seq[page] = seq
        return seq

    # -- reads / writes ----------------------------------------------------------
    def _do_read(self, tid: int, page: int) -> bytes:
        return self._current(page)

    def _do_write(self, tid: int, page: int, data: bytes) -> None:
        if not isinstance(data, bytes):
            raise TypeError("page data must be bytes")
        before = self._current(page)
        seq = self._next_seq(page)
        self._log.append(("upd", RedoRecord(tid, page, seq, data)))
        self._pool[page] = (data, seq, tid)
        self._txn_first_before.setdefault(tid, {}).setdefault(page, before)
        self._txn_pages.setdefault(tid, set()).add(page)

    # -- buffer management (no-steal / no-force) ----------------------------------
    def flush_page(self, page: int) -> None:
        """Flush a page to its home disk — refused while uncommitted.

        The no-steal write gate: with no undo log, an uncommitted page on
        the home disk would be unrecoverable, so the flush is a silent
        no-op (counted in ``writes_gated``) until the writer commits.
        """
        entry = self._pool.get(page)
        if entry is None:
            return
        data, seq, writer = entry
        if writer is not None:
            self.writes_gated += 1
            return
        self._log.force()
        self._fault_point("redo.flush.between-force-and-write")
        self.stable.write_page(page, data, seq)
        self._fault_point("redo.flush.post-write")

    def flush_all(self) -> None:
        for page in list(self._pool):
            self.flush_page(page)

    @property
    def dirty_pages(self) -> List[int]:
        return [
            page
            for page, (_data, seq, _writer) in self._pool.items()
            if seq > self.stable.page_seq(page)
        ]

    # -- commit / abort ------------------------------------------------------------
    def _do_commit(self, tid: int) -> None:
        self._fault_point("redo.commit.pre-append")
        self._log.append(("commit", tid))
        self._fault_point("redo.commit.append")
        # Early lock release: the commit record has its place in the
        # sequential log, so any dependent committer's force also forces
        # this record — locks can go now, before the force.
        self._release_locks_early(tid)
        self._fault_point("redo.commit.elr")
        self._log.force()
        self._fault_point("redo.commit.post")
        for page in self._txn_pages.pop(tid, set()):
            entry = self._pool.get(page)
            if entry is not None and entry[2] == tid:
                self._pool[page] = (entry[0], entry[1], None)
        self._txn_first_before.pop(tid, None)

    def _release_locks_early(self, tid: int) -> None:
        released = [page for page, holder in self._locks.items() if holder == tid]
        for page in released:
            del self._locks[page]
        self.early_lock_releases += len(released)
        if self.tracer is not None:
            self.tracer.instant("lock.release", tid=tid, pages=len(released))

    def _do_abort(self, tid: int) -> None:
        # In-memory undo: restore the committed image (a transaction with
        # no commit record is ignored by restart anyway).  The restored
        # entry is committed data, so it is flushable again.
        for page, before in self._txn_first_before.pop(tid, {}).items():
            seq = self._next_seq(page)
            self._pool[page] = (before, seq, None)
        self._txn_pages.pop(tid, None)

    # -- crash / restart ------------------------------------------------------------
    def _on_crash(self) -> None:
        self._pool.clear()
        self._page_seq.clear()
        self._txn_first_before.clear()
        self._txn_pages.clear()
        self._log.lose_volatile()

    def _on_recover(self) -> None:
        # Single pass: scan the log once, classifying commit records and
        # remembering each page's newest update per transaction; redo
        # then installs the newest *committed* image the stable page is
        # missing.  No undo phase exists.
        span = None
        if self.tracer is not None:
            span = self.tracer.begin("log.analysis")
        committed, by_page = self._scan_log()
        self._tick()
        if span is not None:
            self.tracer.end(span, committed=len(committed))
        self._fault_point("redo.recover.analysis")
        redo_span = None
        if self.tracer is not None:
            redo_span = self.tracer.begin("recovery.redo")
        redone = 0
        for page in sorted(by_page):
            chain = [r for r in by_page[page] if r.tid in committed]
            if not chain:
                continue
            newest = max(chain, key=lambda r: r.seq)
            if newest.seq > self.stable.page_seq(page):
                self.stable.write_page(page, newest.after, newest.seq)
                redone += 1
                self._tick()
            self._fault_point("redo.recover.page")
        self.last_redo_pages = redone
        if redo_span is not None:
            self.tracer.end(redo_span, pages=redone)
        # Restart leaves stable storage at the committed state: every
        # surviving committed record is reflected and every uncommitted
        # record is permanently dead (no-steal means losers never touched
        # disk).  The single sequential log empties in one atomic
        # truncation — no two-phase dance is needed.
        self.stable.truncate(self._log.name)
        self._fault_point("redo.recover.truncate")

    def _scan_log(self):
        committed: Set[int] = set()
        by_page: Dict[int, List[RedoRecord]] = {}
        for record in self._log.stable_records():
            kind = record[0]
            if kind == "commit":
                committed.add(record[1])
            elif kind == "upd":
                entry: RedoRecord = record[1]
                by_page.setdefault(entry.page, []).append(entry)
        return committed, by_page

    # -- checkpointing ---------------------------------------------------------------
    def checkpoint(self, flush: bool = False) -> Dict[str, int]:
        """Fuzzy checkpoint: truncate the log without quiescing.

        Keeps (a) every record of a still-active transaction (it may yet
        commit) and (b) every committed record not yet reflected by its
        stable page, plus the commit records of transactions whose
        records survive.  Records of aborted transactions are dropped —
        with no undo phase they can never matter again.  ``flush=True``
        flushes committed dirty pages first (the gate holds back
        uncommitted ones), maximizing truncation.
        """
        self._log.force()
        if flush:
            self.flush_all()
        committed, _by_page = self._scan_log()
        records = self._log.stable_records()
        retained_tids: Set[int] = set()
        keep: Set[int] = set()
        for index, record in enumerate(records):
            if record[0] != "upd":
                continue
            entry = record[1]
            unreflected = entry.seq > self.stable.page_seq(entry.page)
            if (entry.tid in committed and unreflected) or (
                entry.tid not in committed and entry.tid in self._active
            ):
                keep.add(index)
                retained_tids.add(entry.tid)
        final: List[Tuple] = []
        for index, record in enumerate(records):
            if index in keep or (
                record[0] == "commit" and record[1] in retained_tids
            ):
                final.append(record)
        # One sequential log, one atomic truncation: a commit record and
        # its surviving updates move (or vanish) together.
        self.stable.truncate(self._log.name, final)
        self._fault_point("redo.checkpoint.truncate")
        return {self._log.name: len(final)}

    # -- inspection -------------------------------------------------------------------
    def read_committed(self, page: int) -> bytes:
        for tid in self._active:
            before = self._txn_first_before.get(tid, {}).get(page)
            if before is not None:
                return before
        return self._current(page)

    def log_lengths(self) -> Dict[str, int]:
        """Stable record count (the buffered tail excluded)."""
        return {self._log.name: len(self._log.stable_records())}
