"""Modern recovery managers (``repro.storage.modern``).

The 1985 paper crowned parallel physical logging under 1985 hardware
assumptions; this subpackage fields two post-2010 designs against the
same functional harness (crashtest, checkpoint sweep, survivetest) so
the verdict can be re-judged on level ground:

* :class:`CommandLoggingManager` — adaptive command/logical logging with
  dependency-aware parallel wave replay and an ARIES-style physical
  fallback for high-fan-in transactions (Yao et al.).
* :class:`RedoOnlyWalManager` — redo-only WAL with early lock release at
  the commit-record append and single-pass analysis+redo restart
  (Sauer & Härder).

Both speak the full :class:`repro.storage.RecoveryManager` contract and
take checkpoints through the fuzzy policy; ``docs/MODERN.md`` maps the
papers' vocabulary onto this repo's.
"""

from repro.storage.modern.clock import StepClock
from repro.storage.modern.command import (
    CommandLoggingManager,
    CommandRecord,
    PhysicalRecord,
)
from repro.storage.modern.logbuf import BufferedLog
from repro.storage.modern.redo import RedoOnlyWalManager, RedoRecord
from repro.storage.modern.replay import build_waves, wave_stats

__all__ = [
    "BufferedLog",
    "CommandLoggingManager",
    "CommandRecord",
    "PhysicalRecord",
    "RedoOnlyWalManager",
    "RedoRecord",
    "StepClock",
    "build_waves",
    "wave_stats",
]
