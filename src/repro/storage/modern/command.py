"""Adaptive command logging with dependency-aware parallel replay.

The modern counterpoint to the paper's parallel physical logging
(Section 3.1): instead of shipping full before/after page images, a
transaction ships compact *command* records — the operation and its
effect — over N independent logs, and restart re-executes committed
commands in dependency order (Yao et al., "Adaptive logging: optimizing
logging and recovery costs in distributed in-memory databases").

Two modern ideas are modeled faithfully:

* **Dependency-graph replay.**  Per-page update sequence numbers
  (assigned under strict 2PL) order each page's committed records; the
  per-page chains induce a transaction-level precedence DAG, and restart
  replays it as topological *waves* — every transaction in a wave is
  independent of the others, so a wave replays in parallel across log
  processors (:mod:`repro.storage.modern.replay`).  The schedule of the
  last restart is published in :attr:`CommandLoggingManager.last_replay`.

* **Adaptive fallback to physical records.**  Command records are cheap
  to collect but chain restart behind every dependency; a high-fan-in
  transaction (many distinct pages) would serialize wide stretches of
  the replay graph.  Once a transaction's write fan-in reaches
  ``physical_threshold`` it switches to ARIES-style physical records
  (before + after image) for the rest of its life — exactly Yao et
  al.'s hybrid — and the counters record the split.

Buffering is **no-steal / no-force**: an uncommitted page never reaches
its home disk (the write gate silently refuses, counted in
``writes_gated``), so command records never need an undo scan — restart
is analysis + redo only.  Commit forces the transaction's logs before
the commit record (the WAL rule), exactly like the distributed-WAL
manager.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.checkpoint import FuzzyCheckpoint
from repro.storage.archive import ArchiveDumpMixin
from repro.storage.interface import RecoveryManager
from repro.storage.modern.clock import StepClock
from repro.storage.modern.logbuf import BufferedLog
from repro.storage.modern.replay import build_waves, wave_stats
from repro.storage.stable import StableStorage

__all__ = ["CommandLoggingManager", "CommandRecord", "PhysicalRecord"]


class CommandRecord(NamedTuple):
    """One logical operation: the page it touched and its effect."""

    tid: int
    page: int
    seq: int
    after: bytes


class PhysicalRecord(NamedTuple):
    """ARIES-style fallback record: full before/after images."""

    tid: int
    page: int
    seq: int
    before: bytes
    after: bytes


class CommandLoggingManager(ArchiveDumpMixin, RecoveryManager):
    """N-log adaptive command logging; see module docstring."""

    name = "command-logging"
    checkpoint_policy = FuzzyCheckpoint

    def __init__(
        self,
        n_logs: int = 3,
        physical_threshold: int = 4,
        stable: Optional[StableStorage] = None,
        enforce_locks: bool = True,
        tracer=None,
    ):
        super().__init__(stable, enforce_locks)
        if n_logs < 1:
            raise ValueError("need at least one log")
        if physical_threshold < 1:
            raise ValueError("physical_threshold must be positive")
        self.n_logs = n_logs
        self.physical_threshold = physical_threshold
        self._logs = [BufferedLog(self.stable, f"cmdlog{i}") for i in range(n_logs)]
        self._round_robin = 0
        #: Optional :class:`repro.trace.Tracer` (duck-typed; never imported
        #: here to respect the layer map).  Restart phases record
        #: ``log.analysis`` / ``replay.wave`` / ``recovery.redo`` spans.
        self.tracer = tracer
        self._clock = None
        if tracer is not None and getattr(tracer, "env", None) is None:
            self._clock = StepClock()
            tracer.env = self._clock
        # -- volatile state --
        #: page -> (data, seq, writer-tid or None once committed).
        self._pool: Dict[int, Tuple[bytes, int, Optional[int]]] = {}
        self._page_seq: Dict[int, int] = {}
        #: tid -> page -> the committed image the transaction overwrote.
        self._txn_first_before: Dict[int, Dict[int, bytes]] = {}
        self._txn_pages: Dict[int, Set[int]] = {}
        self._txn_logs: Dict[int, Set[int]] = {}
        #: page -> logs holding unforced records of that page (WAL rule).
        self._page_logs: Dict[int, Set[int]] = {}
        #: tids that crossed the fan-in threshold (record mode is sticky).
        self._physical_tids: Set[int] = set()
        # -- statistics --
        self.command_records = 0
        self.physical_records = 0
        self.writes_gated = 0
        #: Schedule of the most recent restart (see :func:`wave_stats`).
        self.last_replay: Dict[str, int] = {}

    # -- internals -----------------------------------------------------------
    def _tick(self) -> None:
        if self._clock is not None:
            self._clock.tick()

    def _force_log(self, index: int) -> None:
        self._logs[index].force()

    def _select_log(self) -> int:
        index = self._round_robin
        self._round_robin = (self._round_robin + 1) % self.n_logs
        return index

    def _current(self, page: int) -> bytes:
        entry = self._pool.get(page)
        if entry is not None:
            return entry[0]
        return self.stable.read_page(page)

    def _next_seq(self, page: int) -> int:
        seq = self._page_seq.get(page)
        if seq is None:
            seq = self.stable.page_seq(page)
        seq += 1
        self._page_seq[page] = seq
        return seq

    # -- reads / writes ----------------------------------------------------------
    def _do_read(self, tid: int, page: int) -> bytes:
        return self._current(page)

    def _do_write(self, tid: int, page: int, data: bytes) -> None:
        if not isinstance(data, bytes):
            raise TypeError("page data must be bytes")
        before = self._current(page)
        seq = self._next_seq(page)
        pages = self._txn_pages.setdefault(tid, set())
        pages.add(page)
        # Adaptive knob: past the fan-in threshold the transaction ships
        # physical records for the rest of its life (sticky, per Yao et al.).
        if len(pages) >= self.physical_threshold:
            self._physical_tids.add(tid)
        log_index = self._select_log()
        if tid in self._physical_tids:
            self._logs[log_index].append(
                ("phys", PhysicalRecord(tid, page, seq, before, data))
            )
            self.physical_records += 1
        else:
            self._logs[log_index].append(
                ("cmd", CommandRecord(tid, page, seq, data))
            )
            self.command_records += 1
        self._pool[page] = (data, seq, tid)
        self._txn_first_before.setdefault(tid, {}).setdefault(page, before)
        self._txn_logs.setdefault(tid, set()).add(log_index)
        self._page_logs.setdefault(page, set()).add(log_index)

    # -- buffer management (no-steal / no-force) ----------------------------------
    def flush_page(self, page: int) -> None:
        """Flush a page to its home disk — refused while uncommitted.

        The no-steal gate: command records carry no before image, so an
        uncommitted page on the home disk would be unrecoverable.  The
        gate makes the flush a silent no-op (counted in ``writes_gated``)
        until the writer commits.
        """
        entry = self._pool.get(page)
        if entry is None:
            return
        data, seq, writer = entry
        if writer is not None:
            self.writes_gated += 1
            return
        for log_index in sorted(self._page_logs.get(page, ())):
            self._force_log(log_index)
        self._fault_point("cmd.flush.between-force-and-write")
        self.stable.write_page(page, data, seq)
        self._fault_point("cmd.flush.post-write")

    def flush_all(self) -> None:
        for page in list(self._pool):
            self.flush_page(page)

    @property
    def dirty_pages(self) -> List[int]:
        return [
            page
            for page, (_data, seq, _writer) in self._pool.items()
            if seq > self.stable.page_seq(page)
        ]

    # -- commit / abort ------------------------------------------------------------
    def _do_commit(self, tid: int) -> None:
        self._fault_point("cmd.commit.pre-force")
        for log_index in sorted(self._txn_logs.get(tid, ())):
            self._force_log(log_index)
            self._fault_point("cmd.commit.mid-force")
        self._fault_point("cmd.commit.pre-record")
        home_index = tid % self.n_logs
        self._logs[home_index].append(("commit", tid))
        self._fault_point("cmd.commit.pre-commit-force")
        self._force_log(home_index)
        self._fault_point("cmd.commit.post")
        for page in self._txn_pages.pop(tid, set()):
            entry = self._pool.get(page)
            if entry is not None and entry[2] == tid:
                self._pool[page] = (entry[0], entry[1], None)
        self._txn_first_before.pop(tid, None)
        self._txn_logs.pop(tid, None)
        self._physical_tids.discard(tid)

    def _do_abort(self, tid: int) -> None:
        # In-memory undo: restore the committed image (a transaction with
        # no commit record is ignored by restart anyway).  The restored
        # entry is committed data, so it is flushable again.
        for page, before in self._txn_first_before.pop(tid, {}).items():
            seq = self._next_seq(page)
            self._pool[page] = (before, seq, None)
        self._txn_pages.pop(tid, None)
        self._txn_logs.pop(tid, None)
        self._physical_tids.discard(tid)

    # -- crash / restart ------------------------------------------------------------
    def _on_crash(self) -> None:
        self._pool.clear()
        self._page_seq.clear()
        self._txn_first_before.clear()
        self._txn_pages.clear()
        self._txn_logs.clear()
        self._page_logs.clear()
        self._physical_tids.clear()
        for log in self._logs:
            log.lose_volatile()

    def _on_recover(self) -> None:
        # Analysis: one scan of every log — committed set, each committed
        # transaction's records, and the per-page chains the replay DAG
        # is built from.
        span = None
        if self.tracer is not None:
            span = self.tracer.begin("log.analysis")
        committed, by_txn, page_chains = self._scan_logs()
        waves = build_waves(committed, page_chains)
        self.last_replay = wave_stats(waves)
        self._tick()
        if span is not None:
            self.tracer.end(span, **self.last_replay)
        self._fault_point("cmd.recover.analysis")
        # Replay: wave by wave; within a wave transactions are mutually
        # independent (would run on different log processors).  The
        # per-page seq guard makes re-replay after a mid-restart crash
        # idempotent.
        for wave_index, wave in enumerate(waves):
            wspan = None
            if self.tracer is not None:
                wspan = self.tracer.begin(
                    "replay.wave", wave=wave_index, width=len(wave)
                )
            for tid in wave:
                for record in sorted(by_txn.get(tid, [])):
                    _page_first, (page, seq, after) = record
                    if seq > self.stable.page_seq(page):
                        self.stable.write_page(page, after, seq)
                        self._tick()
                    self._fault_point("cmd.recover.page")
            if wspan is not None:
                self.tracer.end(wspan)
            self._fault_point("cmd.recover.wave")
        # Truncation is two-phase, exactly as in the distributed-WAL
        # manager: dropping a commit record from log A while the
        # transaction's records survive in log B would make a re-run of
        # restart skip its redo.  Phase 1 drops update records only.
        for log in self._logs:
            commits = [r for r in log.stable_records() if r[0] == "commit"]
            self.stable.truncate(log.name, commits)
            self._fault_point("cmd.recover.truncate-updates")
        for log in self._logs:
            self.stable.truncate(log.name)
            self._fault_point("cmd.recover.truncate-commits")

    def _scan_logs(self):
        """One pass over every log: commits, per-txn records, page chains."""
        committed: Set[int] = set()
        updates: List[Tuple] = []
        for log in self._logs:
            for record in log.stable_records():
                kind = record[0]
                if kind == "commit":
                    committed.add(record[1])
                elif kind in ("cmd", "phys"):
                    updates.append(record[1])
        by_txn: Dict[int, List[Tuple]] = {}
        page_chains: Dict[int, List[Tuple[int, int]]] = {}
        for entry in updates:
            if entry.tid not in committed:
                continue
            by_txn.setdefault(entry.tid, []).append(
                ((entry.page, entry.seq), (entry.page, entry.seq, entry.after))
            )
        for tid, records in by_txn.items():
            for _key, (page, seq, _after) in records:
                page_chains.setdefault(page, []).append((seq, tid))
        return committed, by_txn, page_chains

    # -- checkpointing ---------------------------------------------------------------
    def checkpoint(self, flush: bool = False) -> Dict[str, int]:
        """Fuzzy checkpoint: truncate logs without quiescing transactions.

        Keeps (a) every record of a still-active transaction (it may yet
        commit, and redo-only restart would need them) and (b) every
        committed record not yet reflected by its stable page.  Records
        of aborted transactions are dropped — with no undo phase they can
        never matter again.  ``flush=True`` flushes committed dirty pages
        first (the gate holds back uncommitted ones), maximizing
        truncation.  Returns per-log retained record counts.
        """
        for index in range(self.n_logs):
            self._force_log(index)
        if flush:
            self.flush_all()
        committed, _by_txn, _chains = self._scan_logs()
        retained_tids: Set[int] = set()
        kept_per_log: Dict[str, List[Tuple]] = {}
        for log in self._logs:
            kept = []
            for record in log.stable_records():
                if record[0] not in ("cmd", "phys"):
                    continue
                entry = record[1]
                unreflected = entry.seq > self.stable.page_seq(entry.page)
                if (entry.tid in committed and unreflected) or (
                    entry.tid not in committed and entry.tid in self._active
                ):
                    kept.append(record)
                    retained_tids.add(entry.tid)
            kept_per_log[log.name] = kept
        # Two-phase truncation (same discipline as restart).
        commits_per_log: Dict[str, List[Tuple]] = {}
        for log in self._logs:
            commits_per_log[log.name] = [
                r for r in log.stable_records() if r[0] == "commit"
            ]
            self.stable.truncate(
                log.name, kept_per_log[log.name] + commits_per_log[log.name]
            )
            self._fault_point("cmd.checkpoint.truncate-updates")
        stats = {}
        for log in self._logs:
            kept = list(kept_per_log[log.name])
            for record in commits_per_log[log.name]:
                if record[1] in retained_tids:
                    kept.append(record)
            self.stable.truncate(log.name, kept)
            self._fault_point("cmd.checkpoint.truncate-commits")
            stats[log.name] = len(kept)
        return stats

    # -- inspection -------------------------------------------------------------------
    def read_committed(self, page: int) -> bytes:
        for tid in self._active:
            before = self._txn_first_before.get(tid, {}).get(page)
            if before is not None:
                return before
        return self._current(page)

    def log_lengths(self) -> Dict[str, int]:
        """Stable record count per log (buffered tails excluded)."""
        return {log.name: len(log.stable_records()) for log in self._logs}
