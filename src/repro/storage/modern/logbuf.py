"""A buffered append-only log: the modern managers' shared log primitive.

Same shape as the distributed-WAL manager's private log (a stable
append-only file fronted by a volatile buffer that a crash discards),
factored out so the command-logging and redo-only managers share one
implementation instead of each redeclaring it.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.storage.stable import StableStorage

__all__ = ["BufferedLog"]


class BufferedLog:
    """One log: a stable append-only file plus a volatile buffer."""

    def __init__(self, stable: StableStorage, name: str):
        self.stable = stable
        self.name = name
        self.buffer: List[Tuple] = []

    def append(self, record: Tuple) -> None:
        self.buffer.append(record)

    def force(self) -> None:
        if self.buffer:
            self.stable.extend(self.name, self.buffer)
            self.buffer = []

    def lose_volatile(self) -> None:
        self.buffer = []

    def stable_records(self) -> List[Tuple]:
        # read_log: replay trusts only the checksum-clean prefix (the
        # torn-tail stop rule); interior rot raises RecordIntegrityError.
        return self.stable.read_log(self.name)
