"""Dependency-aware replay scheduling for command logging.

Command logging replays *operations*, not page images, so replay must
respect the order dependent transactions originally ran in: if t1 and t2
both updated page P, t2's command assumed t1's effect.  Per-page update
sequence numbers (assigned under strict 2PL) give that order for free —
each page's committed record chain is a total order of the transactions
that touched it.

:func:`build_waves` turns those chains into a transaction-level
precedence DAG (an edge for every consecutive distinct pair in a chain)
and schedules it as topological *waves*: every transaction in a wave has
all predecessors in earlier waves, so the whole wave can replay in
parallel across log processors — Yao et al.'s dependency-graph recovery.
Independent transactions land in the same wave; a fully serial history
degrades to one transaction per wave.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["build_waves", "wave_stats"]


def build_waves(
    tids: Iterable[int],
    page_chains: Dict[int, Sequence[Tuple[int, int]]],
) -> List[List[int]]:
    """Schedule ``tids`` into replay waves honouring per-page order.

    ``page_chains`` maps each page to its committed update chain as
    ``(seq, tid)`` pairs (any order; sorted here).  Returns waves of
    transaction ids; within a wave ids are sorted, so the schedule is a
    pure function of the chains.  Strict 2PL makes the precedence graph
    acyclic; a cycle (impossible unless the log is corrupt) is broken
    deterministically at the smallest remaining id rather than looping.
    """
    remaining: Set[int] = set(tids)
    succ: Dict[int, Set[int]] = {tid: set() for tid in sorted(remaining)}
    indeg: Dict[int, int] = {tid: 0 for tid in sorted(remaining)}
    for chain in page_chains.values():
        ordered = [tid for _seq, tid in sorted(chain) if tid in remaining]
        for prev, tid in zip(ordered, ordered[1:]):
            if prev != tid and tid not in succ[prev]:
                succ[prev].add(tid)
                indeg[tid] += 1
    waves: List[List[int]] = []
    while remaining:
        ready = [tid for tid in sorted(remaining) if indeg[tid] <= 0]
        if not ready:
            ready = [min(remaining)]
        waves.append(ready)
        for tid in ready:
            remaining.discard(tid)
            for nxt in succ[tid]:
                indeg[nxt] -= 1
    return waves


def wave_stats(waves: Sequence[Sequence[int]]) -> Dict[str, int]:
    """Summary of a replay schedule: depth, width, transaction count."""
    return {
        "waves": len(waves),
        "transactions": sum(len(wave) for wave in waves),
        "max_wave_width": max((len(wave) for wave in waves), default=0),
    }
