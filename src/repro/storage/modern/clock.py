"""A manual clock so functional managers can drive a ``Tracer``.

The timed simulator binds a tracer to its event-loop environment; the
functional managers in ``repro.storage`` have no event loop, so this
module provides the smallest possible clock source — an object with a
``now`` attribute (all :class:`repro.trace.Tracer` reads) advanced by
explicit ``tick()`` calls.  Recovery phases tick it once per unit of
restart work, which gives analysis/redo/replay spans deterministic,
integer extents: same history, same trace, byte for byte.
"""

from __future__ import annotations

__all__ = ["StepClock"]


class StepClock:
    """Deterministic ``.now`` source for tracers outside the simulator."""

    def __init__(self, start: float = 0.0, step: float = 1.0):
        self.now = float(start)
        self.step = float(step)

    def tick(self, ms: float = None) -> float:
        """Advance the clock by ``ms`` (default: the configured step)."""
        self.now += self.step if ms is None else ms
        return self.now
