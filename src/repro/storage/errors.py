"""Exceptions of the functional storage engine."""

from __future__ import annotations

__all__ = [
    "LockConflict",
    "RecoveryStateError",
    "StorageError",
    "TransactionAborted",
    "UnknownTransaction",
]


class StorageError(Exception):
    """Base class for storage-engine errors."""


class RecoveryStateError(StorageError):
    """``recover()`` was called on a manager that never crashed.

    Restart algorithms assume volatile state is gone; running one over a
    live manager would silently mix volatile and reconstructed state.
    """


class UnknownTransaction(StorageError):
    """An operation named a transaction id that is not active."""


class TransactionAborted(StorageError):
    """An operation touched a transaction that has already aborted."""


class LockConflict(StorageError):
    """A page-level lock request conflicts with another active transaction."""

    def __init__(self, tid: int, page: int, holder: int):
        super().__init__(
            f"transaction {tid} cannot lock page {page}: held by {holder}"
        )
        self.tid = tid
        self.page = page
        self.holder = holder
