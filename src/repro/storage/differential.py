"""Functional differential files: R = (B u A) - D over a read-only base.

Following the paper's Section 3.3 (and Stonebraker's hypothetical-database
formulation it cites), the differential file is decomposed into an A file
(additions) and a D file (deletions); the base B is never modified in
place.  This manager works at tuple level — page-oriented semantics do not
fit a mechanism whose whole point is that logical pages are views:

* ``insert/delete/read_relation`` manipulate relations as sets of tuples;
* transaction writes are buffered volatile and appended to the stable A/D
  files at commit, tagged with the writing tid; the single commit record
  then lands in a shared commit file — the atomic commit point.  (Earlier
  revisions bracketed each file's run with its own marker, so a crash
  between the two markers committed the deletions but not the additions.)
* readers ignore A/D records whose tid has no commit record, so a crash
  between appends is invisible (dead records are swept at restart);
* ``merge`` folds committed A/D tuples into a new base and truncates the
  files (the maintenance operation the paper deliberately left unmodeled).

The page-level :class:`RecoveryManager` interface is implemented on top by
treating a page as the single-tuple relation ``("page", page)`` — enough
for the shared atomicity/durability property tests to drive this manager
through the same crash schedules as the others.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.checkpoint import SnapshotCheckpoint
from repro.storage.archive import ArchiveDumpMixin
from repro.storage.interface import RecoveryManager
from repro.storage.stable import StableStorage

__all__ = ["DifferentialFileManager"]

Tuple_ = Tuple  # readability alias in signatures


class DifferentialFileManager(ArchiveDumpMixin, RecoveryManager):
    """A/D differential files over a read-only base; see module docstring."""

    name = "differential-files"
    checkpoint_policy = SnapshotCheckpoint

    _A_FILE = "a_file"
    _D_FILE = "d_file"
    _BASE = "base"
    _COMMITS = "diff_commits"

    def __init__(
        self, stable: Optional[StableStorage] = None, enforce_locks: bool = True
    ):
        super().__init__(stable, enforce_locks)
        # -- volatile: per-transaction buffered additions / deletions.
        self._txn_adds: Dict[int, List[tuple]] = {}
        self._txn_dels: Dict[int, List[tuple]] = {}
        #: Per-transaction row version counter for the page adapter.
        #: Transaction ids are never reused (real systems persist a tid
        #: high-water mark), so (tid, k) stamps are globally unique.
        self._txn_row_counter: Dict[int, int] = {}

    # -- tuple-level API -----------------------------------------------------------
    def insert(self, tid: int, relation: str, row: tuple) -> None:
        """Buffer an insertion of ``row`` into ``relation``."""
        self._check_active(tid)
        self._txn_adds[tid].append((relation, row))

    def delete(self, tid: int, relation: str, row: tuple) -> None:
        """Buffer a deletion of ``row`` from ``relation``."""
        self._check_active(tid)
        self._txn_dels[tid].append((relation, row))

    def read_relation(self, relation: str, tid: Optional[int] = None) -> FrozenSet[tuple]:
        """Evaluate (B u A) - D for ``relation``.

        With ``tid``, the transaction's own buffered changes are applied on
        top (read-your-writes).
        """
        base = {
            row for rel, row in self.stable.read_file(self._BASE) if rel == relation
        }
        adds, dels = self._committed_diffs()
        result = (base | {r for rel, r in adds if rel == relation}) - {
            r for rel, r in dels if rel == relation
        }
        if tid is not None:
            self._check_active(tid)
            result |= {r for rel, r in self._txn_adds[tid] if rel == relation}
            result -= {r for rel, r in self._txn_dels[tid] if rel == relation}
        return frozenset(result)

    def _committed_tids(self) -> Set[int]:
        return set(self.stable.read_file(self._COMMITS))

    def _committed_diffs(self) -> Tuple[Set[tuple], Set[tuple]]:
        """Committed (adds, dels): records whose tid has a commit record."""
        committed = self._committed_tids()
        adds: Set[tuple] = set()
        dels: Set[tuple] = set()
        for file, target in ((self._A_FILE, adds), (self._D_FILE, dels)):
            for record in self.stable.read_file(file):
                # Records of a transaction that never committed stay
                # invisible forever (tids are not reused).
                if record[1] in committed:
                    target.add(record[2])
        return adds, dels

    # -- page-level adapter (for the shared property tests) ---------------------------
    # A page is the single-tuple relation "__page_<n>"; rows carry a
    # (tid, k) version stamp so that re-inserting a previously deleted value
    # is a *new* tuple — without this, set semantics would cancel it against
    # the old deletion (the classic differential-file pitfall, solved with
    # timestamps in Severance & Lohman's original design).
    @staticmethod
    def _page_relation(page: int) -> str:
        return f"__page_{page}"

    def _on_begin(self, tid: int) -> None:
        self._txn_adds[tid] = []
        self._txn_dels[tid] = []
        self._txn_row_counter.setdefault(tid, 0)

    def _do_read(self, tid: int, page: int) -> bytes:
        rows = self.read_relation(self._page_relation(page), tid)
        if not rows:
            return b""
        # Rows are (tid, k, data): the latest writer wins.
        return max(rows)[2]

    def _do_write(self, tid: int, page: int, data: bytes) -> None:
        relation = self._page_relation(page)
        for row in self.read_relation(relation, tid):
            self.delete(tid, relation, row)
        k = self._txn_row_counter[tid]
        self._txn_row_counter[tid] = k + 1
        self.insert(tid, relation, (tid, k, data))

    def _do_commit(self, tid: int) -> None:
        adds = self._txn_adds.pop(tid)
        dels = self._txn_dels.pop(tid)
        if not adds and not dels:
            return
        # Append the tid-tagged runs, then the single commit record.  A
        # crash anywhere before that record leaves only dead (invisible)
        # records; the one append is the atomic commit point.
        for relation, row in adds:
            self.stable.append(self._A_FILE, ("add", tid, (relation, row)))
            self._fault_point("diff.commit.mid-adds")
        for relation, row in dels:
            self.stable.append(self._D_FILE, ("del", tid, (relation, row)))
            self._fault_point("diff.commit.mid-dels")
        self._fault_point("diff.commit.pre-record")
        self.stable.append(self._COMMITS, tid)
        self._fault_point("diff.commit.post")

    def _do_abort(self, tid: int) -> None:
        self._txn_adds.pop(tid, None)
        self._txn_dels.pop(tid, None)
        self._txn_row_counter.pop(tid, None)

    # -- crash / restart -----------------------------------------------------------------
    def _on_crash(self) -> None:
        self._txn_adds.clear()
        self._txn_dels.clear()
        self._txn_row_counter.clear()

    def _on_recover(self) -> None:
        """Sweep dead records left by a mid-commit crash.

        A record whose tid never committed can never become visible (no
        transaction is active at restart and tids are not reused), so this
        is pure garbage collection — correctness never depends on it.
        """
        committed = self._committed_tids()
        for file in (self._A_FILE, self._D_FILE):
            records = self.stable.read_file(file)
            kept = [r for r in records if r[1] in committed]
            if len(kept) != len(records):
                self.stable.truncate(file, kept)
            self._fault_point("diff.recover.file")

    def read_committed(self, page: int) -> bytes:
        relation = self._page_relation(page)
        base = {row for rel, row in self.stable.read_file(self._BASE) if rel == relation}
        adds, dels = self._committed_diffs()
        rows = (base | {r for rel, r in adds if rel == relation}) - {
            r for rel, r in dels if rel == relation
        }
        return max(rows)[2] if rows else b""

    # -- maintenance -----------------------------------------------------------------------
    def merge(self) -> int:
        """Fold committed A/D tuples into the base; returns new base size.

        The paper's simulation deliberately does not model merge cost; the
        functional engine still provides the operation so differential
        files are a complete, usable mechanism.  It doubles as the
        snapshot checkpoint (docs/CHECKPOINT.md): active transactions only
        buffer volatile state, so merging mid-flight is safe.

        Truncation order is crash-critical: the base is rewritten first
        (a committed add re-applied from a surviving A record, or a
        committed delete re-subtracted from a surviving D record, is a
        no-op against the merged base), and the commit file goes last so
        surviving A/D records stay interpretable.
        """
        adds, dels = self._committed_diffs()
        base = set(self.stable.read_file(self._BASE))
        new_base = (base | adds) - dels
        self.stable.truncate(self._BASE, sorted(new_base))
        self._fault_point("diff.merge.base")
        self.stable.truncate(self._A_FILE)
        self._fault_point("diff.merge.a-file")
        self.stable.truncate(self._D_FILE)
        self._fault_point("diff.merge.d-file")
        self.stable.truncate(self._COMMITS)
        self._fault_point("diff.merge.commits")
        return len(new_base)

    def differential_sizes(self) -> Tuple[int, int]:
        """(|A|, |D|) in records."""
        a = self.stable.file_length(self._A_FILE)
        d = self.stable.file_length(self._D_FILE)
        return a, d
