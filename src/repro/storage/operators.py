"""Relational operators over differential-file views (paper ref [21]).

The paper assumes "the database machine uses these algorithms" — the
parallel operators for hypothetical databases of Agrawal & DeWitt's
companion report [21].  This module provides the operator set over
:class:`~repro.storage.differential.DifferentialFileManager` relations:
every operator evaluates against the live view ``(B u A) - D``, so query
results always reflect exactly the committed differential state.

The "parallel" structure is the classic one: relations hash-partition into
independent buckets, each bucket is processed alone, and results union —
:func:`partition` is the building block, :func:`parallel_join` the
showcase.  (In the timed simulator the same decomposition is what lets the
query processors work independently; here it is executable and testable.)
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.storage.differential import DifferentialFileManager

__all__ = [
    "difference",
    "intersection",
    "join",
    "parallel_join",
    "partition",
    "project",
    "select",
    "union",
]

Rows = FrozenSet[tuple]


def select(
    manager: DifferentialFileManager,
    relation: str,
    predicate: Callable[[tuple], bool],
    tid: Optional[int] = None,
) -> Rows:
    """Rows of the (B u A) - D view satisfying ``predicate``."""
    return frozenset(
        row for row in manager.read_relation(relation, tid) if predicate(row)
    )


def project(
    manager: DifferentialFileManager,
    relation: str,
    columns: Tuple[int, ...],
    tid: Optional[int] = None,
) -> Rows:
    """Column projection (with duplicate elimination, set semantics)."""
    return frozenset(
        tuple(row[c] for c in columns)
        for row in manager.read_relation(relation, tid)
    )


def union(
    manager: DifferentialFileManager,
    left: str,
    right: str,
    tid: Optional[int] = None,
) -> Rows:
    return manager.read_relation(left, tid) | manager.read_relation(right, tid)


def difference(
    manager: DifferentialFileManager,
    left: str,
    right: str,
    tid: Optional[int] = None,
) -> Rows:
    return manager.read_relation(left, tid) - manager.read_relation(right, tid)


def intersection(
    manager: DifferentialFileManager,
    left: str,
    right: str,
    tid: Optional[int] = None,
) -> Rows:
    return manager.read_relation(left, tid) & manager.read_relation(right, tid)


def join(
    manager: DifferentialFileManager,
    left: str,
    right: str,
    left_col: int,
    right_col: int,
    tid: Optional[int] = None,
) -> Rows:
    """Equi-join; result rows are the concatenated field tuples."""
    build = {}
    for row in manager.read_relation(right, tid):
        build.setdefault(row[right_col], []).append(row)
    out = set()
    for row in manager.read_relation(left, tid):
        for match in build.get(row[left_col], ()):
            out.add(row + match)
    return frozenset(out)


def partition(
    manager: DifferentialFileManager,
    relation: str,
    column: int,
    n_partitions: int,
    tid: Optional[int] = None,
) -> List[Rows]:
    """Hash-partition a view on ``column`` into independent buckets.

    The parallel-processing building block: bucket i of the left relation
    can only join bucket i of the right, so buckets process independently.
    """
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    buckets: List[set] = [set() for _ in range(n_partitions)]
    for row in manager.read_relation(relation, tid):
        buckets[hash(row[column]) % n_partitions].add(row)
    return [frozenset(bucket) for bucket in buckets]


def parallel_join(
    manager: DifferentialFileManager,
    left: str,
    right: str,
    left_col: int,
    right_col: int,
    n_partitions: int = 4,
    tid: Optional[int] = None,
) -> Rows:
    """Partition-wise equi-join: identical result to :func:`join`, computed
    bucket by bucket (each bucket is an independent unit of work)."""
    left_parts = partition(manager, left, left_col, n_partitions, tid)
    right_parts = partition(manager, right, right_col, n_partitions, tid)
    out = set()
    for left_bucket, right_bucket in zip(left_parts, right_parts):
        build = {}
        for row in right_bucket:
            build.setdefault(row[right_col], []).append(row)
        for row in left_bucket:
            for match in build.get(row[left_col], ()):
                out.add(row + match)
    return frozenset(out)
