"""A functional crash-recovery engine: the paper's algorithms, executable.

The timed simulator (:mod:`repro.machine` + :mod:`repro.core`) measures the
*performance* of the recovery architectures; this package demonstrates their
*correctness*.  Every architecture has a recovery manager implementing the
actual commit / abort / crash-restart logic over a two-level store
(volatile buffer pool + stable storage) with crash injection:

* :class:`DistributedWalManager` — write-ahead logging over N independent
  logs with restart that never merges them (paper Section 3.1 / ref [13]),
  plus fuzzy checkpointing without quiescing;
* :class:`ShadowPageTableManager` — copy-on-write slots with an atomic
  page-table root swap (Section 3.2.1);
* :class:`OverwritingManager` — the no-undo and no-redo scratch-ring
  variants with transaction lists that survive crashes (Section 3.2.2.2);
* :class:`VersionSelectionManager` — two timestamped blocks per page,
  current chosen at read time (Section 3.2.2.1);
* :class:`DifferentialFileManager` — tuple-level A/D files over a read-only
  base, reads evaluating (B u A) - D (Section 3.3).

Two modern challengers (:mod:`repro.storage.modern`) join the 1985 field
under the identical contract and harnesses:

* :class:`CommandLoggingManager` — adaptive command logging with
  dependency-aware parallel wave replay (Yao et al.);
* :class:`RedoOnlyWalManager` — redo-only WAL with early lock release
  and single-pass analysis+redo restart (Sauer & Härder).

All managers implement the same :class:`RecoveryManager` interface and the
same contract, checked by shared property-based tests: after any sequence
of operations, crashes, and recoveries, every committed transaction's
effects are durable and no uncommitted effect is visible.
"""

from repro.storage.archive import ArchiveDumpMixin
from repro.storage.btree import BTree, KeyTooLargeError
from repro.storage.differential import DifferentialFileManager
from repro.storage.errors import (
    LockConflict,
    StorageError,
    TransactionAborted,
    UnknownTransaction,
)
from repro.storage.heap import Database, HeapFile, RecordId, Table
from repro.storage.indexed import IndexedDatabase, IndexedTable
from repro.storage.interface import RecoveryManager
from repro.storage.modern import CommandLoggingManager, RedoOnlyWalManager
from repro.storage.overwrite import OverwritingManager, OverwriteVariant
from repro.storage.pages import PageFullError, SlottedPage
from repro.storage.records import RecordCodecError, decode_record, encode_record
from repro.storage.shadow import ShadowPageTableManager
from repro.storage.stable import StableStorage
from repro.storage.versions import VersionSelectionManager
from repro.storage.wal import DistributedWalManager

__all__ = [
    "ArchiveDumpMixin",
    "BTree",
    "CommandLoggingManager",
    "Database",
    "DifferentialFileManager",
    "DistributedWalManager",
    "HeapFile",
    "IndexedDatabase",
    "IndexedTable",
    "KeyTooLargeError",
    "LockConflict",
    "OverwriteVariant",
    "OverwritingManager",
    "PageFullError",
    "RecordCodecError",
    "RecordId",
    "RecoveryManager",
    "RedoOnlyWalManager",
    "ShadowPageTableManager",
    "SlottedPage",
    "StableStorage",
    "StorageError",
    "Table",
    "TransactionAborted",
    "UnknownTransaction",
    "VersionSelectionManager",
    "decode_record",
    "encode_record",
]
