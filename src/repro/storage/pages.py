"""Slotted-page codec: variable-length records inside fixed-size pages.

The classic layout (used by System R and everything since): a header with
the slot count, a slot directory growing from the front (offset, length
per slot), and record data growing from the back.  Deleted slots keep
their directory entry (offset 0) so record ids stay stable; a vacuum
rewrites the page compactly.

Pages serialize to ``bytes`` — exactly what the
:class:`~repro.storage.interface.RecoveryManager` page interface stores —
so every operation here is automatically crash-safe under any recovery
manager.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

__all__ = ["PageFullError", "SlottedPage"]

#: Header: record-data cursor (grows down) and slot count.
_HEADER = struct.Struct("<HH")
#: Slot directory entry: data offset (0 = deleted) and length.
_SLOT = struct.Struct("<HH")


class PageFullError(Exception):
    """The record does not fit in the page's free space."""


class SlottedPage:
    """An in-memory slotted page, (de)serializable to ``bytes``."""

    def __init__(self, page_size: int = 4096):
        if page_size < _HEADER.size + _SLOT.size + 1:
            raise ValueError(f"page size {page_size} too small")
        if page_size > 0xFFFF:
            raise ValueError("page size must fit 16-bit offsets")
        self.page_size = page_size
        #: Slot directory: (offset, length); offset 0 marks a dead slot.
        self._slots: List[Tuple[int, int]] = []
        self._data: dict = {}  # slot -> record bytes (for live slots)

    # -- serialization ---------------------------------------------------------
    @classmethod
    def decode(cls, raw: bytes, page_size: int = 4096) -> "SlottedPage":
        """Rebuild a page from its serialized form (b'' = fresh page)."""
        page = cls(page_size)
        if not raw:
            return page
        if len(raw) != page_size:
            raise ValueError(
                f"serialized page is {len(raw)} bytes, expected {page_size}"
            )
        _cursor, n_slots = _HEADER.unpack_from(raw, 0)
        for index in range(n_slots):
            offset, length = _SLOT.unpack_from(
                raw, _HEADER.size + index * _SLOT.size
            )
            page._slots.append((offset, length))
            if offset:
                page._data[index] = raw[offset : offset + length]
        return page

    def encode(self) -> bytes:
        """Serialize; records are repacked compactly from the page end."""
        buffer = bytearray(self.page_size)
        cursor = self.page_size
        directory = []
        for index, (offset, _length) in enumerate(self._slots):
            if not offset:
                directory.append((0, 0))
                continue
            record = self._data[index]
            cursor -= len(record)
            buffer[cursor : cursor + len(record)] = record
            directory.append((cursor, len(record)))
        _HEADER.pack_into(buffer, 0, cursor, len(self._slots))
        for index, entry in enumerate(directory):
            _SLOT.pack_into(buffer, _HEADER.size + index * _SLOT.size, *entry)
        return bytes(buffer)

    # -- space accounting ----------------------------------------------------------
    @property
    def n_slots(self) -> int:
        return len(self._slots)

    @property
    def live_records(self) -> int:
        return len(self._data)

    def free_space(self) -> int:
        """Bytes available for one more record (including its slot entry)."""
        used = _HEADER.size + len(self._slots) * _SLOT.size
        used += sum(len(record) for record in self._data.values())
        return self.page_size - used - _SLOT.size

    def fits(self, record: bytes) -> bool:
        return len(record) <= self.free_space()

    # -- record operations -------------------------------------------------------------
    def insert(self, record: bytes) -> int:
        """Store a record; returns its slot number (stable until vacuum)."""
        if not isinstance(record, bytes):
            raise TypeError("records are bytes")
        if not self.fits(record):
            raise PageFullError(
                f"{len(record)}-byte record vs {self.free_space()} free"
            )
        # Reuse a dead slot when possible (keeps the directory small).
        for index, (offset, _length) in enumerate(self._slots):
            if not offset:
                self._slots[index] = (1, len(record))
                self._data[index] = record
                return index
        self._slots.append((1, len(record)))
        slot = len(self._slots) - 1
        self._data[slot] = record
        return slot

    def get(self, slot: int) -> Optional[bytes]:
        """The record in ``slot``, or None if deleted/never used."""
        if 0 <= slot < len(self._slots):
            return self._data.get(slot)
        return None

    def delete(self, slot: int) -> bool:
        """Remove the record in ``slot``; returns whether it existed."""
        if 0 <= slot < len(self._slots) and slot in self._data:
            self._slots[slot] = (0, 0)
            del self._data[slot]
            return True
        return False

    def update(self, slot: int, record: bytes) -> None:
        """Replace the record in ``slot`` (must exist; must fit)."""
        if self.get(slot) is None:
            raise KeyError(f"slot {slot} is empty")
        old = self._data[slot]
        growth = len(record) - len(old)
        if growth > self.free_space() + _SLOT.size:
            raise PageFullError("updated record does not fit")
        self._slots[slot] = (1, len(record))
        self._data[slot] = record

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """(slot, record) pairs for live records, in slot order."""
        for slot in sorted(self._data):
            yield slot, self._data[slot]

    def __len__(self) -> int:
        return self.live_records

    def __repr__(self) -> str:
        return (
            f"<SlottedPage {self.live_records}/{self.n_slots} slots, "
            f"{self.free_space()}B free>"
        )
