"""Indexed tables: heap storage + B+tree secondary indexes, kept in sync.

An :class:`IndexedTable` wraps a :class:`~repro.storage.heap.Table` and
maintains one B+tree per indexed column inside the *same* transaction as
the base-row change — so index and heap can never diverge, even across
crashes, under any recovery manager.  Lookups and ordered range scans go
through the index; everything else behaves like a plain table.

    from repro.storage import DistributedWalManager
    from repro.storage.indexed import IndexedDatabase

    db = IndexedDatabase(DistributedWalManager(n_logs=2))
    people = db.create_table("people", indexes={"name": 0})
    tid = db.begin()
    people.insert(tid, ("carol", 45))
    db.commit(tid)
    rid, row = people.lookup(None, "name", "carol")[0]
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.integrity import RecordIntegrityError
from repro.storage.btree import BTree
from repro.storage.heap import Database, HeapFile, RecordId, Table
from repro.storage.interface import RecoveryManager
from repro.storage.records import RecordCodecError, decode_record, encode_record

__all__ = ["IndexedDatabase", "IndexedTable"]


def _index_key(value) -> bytes:
    """Order-preserving byte encoding for indexable field values.

    Strings order lexicographically; non-negative ints order numerically
    (big-endian, fixed width); bytes pass through.  Mixed-type columns are
    the caller's responsibility, as in any schemaless store.
    """
    if isinstance(value, bytes):
        return b"b" + value
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, bool):
        raise TypeError("bool columns are not indexable")
    if isinstance(value, int):
        if value < 0:
            raise TypeError("negative ints are not indexable (no order-preserving code)")
        return b"i" + value.to_bytes(8, "big")
    raise TypeError(f"unindexable value type {type(value).__name__}")


def _encode_rid(rid: RecordId) -> bytes:
    return encode_record(tuple(rid))


def _decode_rid(raw: bytes) -> RecordId:
    try:
        return RecordId(*decode_record(raw))
    except RecordCodecError as exc:
        raise RecordIntegrityError("index:rid", 0, str(exc)) from exc


class IndexedTable:
    """A table whose named columns carry B+tree indexes."""

    def __init__(self, table: Table, indexes: Dict[str, Tuple[int, BTree]]):
        self._table = table
        #: index name -> (column position, btree)
        self._indexes = indexes
        self.name = table.name

    # -- writes (index-maintaining) ------------------------------------------------
    def insert(self, tid: int, row: Tuple) -> RecordId:
        rid = self._table.insert(tid, row)
        for _name, (column, tree) in self._indexes.items():
            tree.insert(tid, self._entry_key(row, column, rid), _encode_rid(rid))
        return rid

    def delete(self, tid: int, rid: RecordId) -> bool:
        row = self._table.fetch_row(tid, rid)
        if row is None:
            return False
        for _name, (column, tree) in self._indexes.items():
            tree.delete(tid, self._entry_key(row, column, rid))
        return self._table.delete(tid, rid)

    def update(self, tid: int, rid: RecordId, row: Tuple) -> RecordId:
        old_row = self._table.fetch_row(tid, rid)
        if old_row is None:
            raise KeyError(f"no record at {rid}")
        new_rid = self._table.update(tid, rid, row)
        for _name, (column, tree) in self._indexes.items():
            tree.delete(tid, self._entry_key(old_row, column, rid))
            tree.insert(tid, self._entry_key(row, column, new_rid), _encode_rid(new_rid))
        return new_rid

    # -- reads -----------------------------------------------------------------------
    def fetch_row(self, tid, rid: RecordId) -> Optional[Tuple]:
        return self._table.fetch_row(tid, rid)

    def rows(self, tid=None) -> Iterator[Tuple[RecordId, Tuple]]:
        return self._table.rows(tid)

    def lookup(self, tid, index: str, value) -> List[Tuple[RecordId, Tuple]]:
        """All rows whose indexed column equals ``value`` (via the index)."""
        column, tree = self._indexes[index]
        prefix = _index_key(value)
        out = []
        for key, raw_rid in tree.entries(tid, low=prefix, high=prefix + b"\xff\xff"):
            if not key.startswith(prefix + b"@"):
                continue
            rid = _decode_rid(raw_rid)
            row = self._table.fetch_row(tid, rid)
            if row is not None:
                out.append((rid, row))
        return out

    def scan_range(self, tid, index: str, low, high) -> Iterator[Tuple[RecordId, Tuple]]:
        """Rows with low <= column < high, in index order."""
        _column, tree = self._indexes[index]
        low_key = _index_key(low) if low is not None else None
        high_key = _index_key(high) if high is not None else None
        for _key, raw_rid in tree.entries(tid, low=low_key, high=high_key):
            rid = _decode_rid(raw_rid)
            row = self._table.fetch_row(tid, rid)
            if row is not None:
                yield rid, row

    def index_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._indexes))

    def __len__(self) -> int:
        return len(self._table)

    # -- internals ---------------------------------------------------------------------
    @staticmethod
    def _entry_key(row: Tuple, column: int, rid: RecordId) -> bytes:
        """Index keys carry the rid so duplicate column values coexist."""
        return _index_key(row[column]) + b"@" + _encode_rid(rid)


class IndexedDatabase(Database):
    """A :class:`~repro.storage.heap.Database` whose tables may be indexed.

    Index definitions live in the transactional catalog alongside table
    definitions (``__indexes__`` table), so they survive crashes and
    reopen like everything else.
    """

    def __init__(self, manager: RecoveryManager, page_size: int = 4096):
        super().__init__(manager, page_size)
        self._index_catalog = Table(
            HeapFile(manager, REGION_INDEX_CATALOG, page_size), "__indexes__"
        )

    def create_table(
        self,
        name: str,
        tid: Optional[int] = None,
        indexes: Optional[Dict[str, int]] = None,
    ) -> IndexedTable:
        """Create a table with ``indexes`` mapping index name -> column."""
        own_txn = tid is None
        if own_txn:
            tid = self.begin()
        base = super().create_table(name, tid=tid)
        index_map: Dict[str, Tuple[int, BTree]] = {}
        for index_name, column in (indexes or {}).items():
            file_id = self._next_index_file(tid)
            self._index_catalog.insert(tid, (name, index_name, column, file_id))
            index_map[index_name] = (
                column,
                BTree(self.manager, file_id, self.page_size),
            )
        if own_txn:
            self.commit(tid)
        table = IndexedTable(base, index_map)
        self._tables[name] = table  # shadow the plain Table handle
        return table

    def table(self, name: str) -> IndexedTable:
        cached = self._tables.get(name)
        if isinstance(cached, IndexedTable):
            return cached
        base = super().table(name)
        index_map: Dict[str, Tuple[int, BTree]] = {}
        for _rid, (table_name, index_name, column, file_id) in self._index_catalog.rows(None):
            if table_name == name:
                index_map[index_name] = (
                    column,
                    BTree(self.manager, file_id, self.page_size),
                )
        table = IndexedTable(base, index_map)
        self._tables[name] = table
        return table

    def _next_index_file(self, tid) -> int:
        used = [
            file_id
            for _rid, (_t, _i, _c, file_id) in self._index_catalog.rows(tid)
        ]
        return (max(used) + 1) if used else REGION_INDEX_FIRST


#: File id of the index catalog, far from user tables.
REGION_INDEX_CATALOG = 900_000 - 1
#: First file id handed to user indexes.
REGION_INDEX_FIRST = 500_000
