"""Archive dumps and media restore for the non-logging managers.

The paper's Section 5 observation: every architecture needs a *media*
recovery story (the data disks themselves can die), and for the
architectures that keep no log the only possible baseline is a periodic
archive dump — after a media failure the database rolls back to the most
recent dump, because there is no redo log to roll forward with.  (The
distributed-WAL manager has the richer dump-plus-archive-log scheme in
:meth:`repro.storage.wal.DistributedWalManager.recover_from_media_failure`;
this mixin gives the shadow, version, overwrite, and differential managers
the dump-only counterpart with the same method names, so harnesses can
drive all five uniformly.)

Semantics:

* :meth:`ArchiveDumpMixin.dump` snapshots the *entire* stable image —
  every page (with its sequence number) and every non-archive file —
  into the reserved ``archive_pages`` / ``archive_files`` files, which
  model the archive medium (tape, or reserved cylinders on separate
  spindles) and survive the media failure.
* :meth:`ArchiveDumpMixin.recover_from_media_failure` wipes the stable
  image (the data disks are gone), restores the archived snapshot, and
  runs the architecture's normal restart algorithm against it — so
  transactions active *at dump time* are erased by the same crash
  discipline that erases them at restart.

Both operations are restartable: a crash mid-dump leaves either the old
or a partially-rewritten archive, and re-running ``dump()`` rewrites it
whole; a crash mid-restore leaves the archive intact, and re-running
``recover_from_media_failure()`` converges (the survivetest harness
exercises exactly this via the ``media.*`` fault points).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.storage.errors import RecoveryStateError

__all__ = ["ARCHIVE_FILES", "ARCHIVE_PAGES", "ArchiveDumpMixin"]

#: Reserved archive file holding ``(page, data, seq)`` triples.
ARCHIVE_PAGES = "archive_pages"

#: Reserved archive file holding ``(file_name, records)`` pairs.
ARCHIVE_FILES = "archive_files"

#: Files that live on the archive medium, not the data disks.
_ARCHIVE_SET = (ARCHIVE_PAGES, ARCHIVE_FILES)


class ArchiveDumpMixin:
    """Dump-only media recovery (mix in before :class:`RecoveryManager`)."""

    def dump(self) -> Dict[str, int]:
        """Archive the full stable image; returns ``{"pages", "files"}``.

        The snapshot is sharp with respect to stable storage: it copies
        exactly what is on disk, including slots/versions written by
        transactions still active — restore erases those through the
        normal restart algorithm, just as a crash would.
        """
        snapshot: List[Tuple[int, bytes, int]] = [
            (page, data, self.stable.page_seq(page))
            for page, data in sorted(self.stable.pages.items())
        ]
        self.stable.truncate(ARCHIVE_PAGES, snapshot)
        self._fault_point("media.dump.pages")
        files: List[Tuple[str, List[Any]]] = [
            (name, self.stable.read_file(name))
            for name in self.stable.files()
            if name not in _ARCHIVE_SET
        ]
        self.stable.truncate(ARCHIVE_FILES, files)
        self._fault_point("media.dump.files")
        return {"pages": len(snapshot), "files": len(files)}

    def recover_from_media_failure(self) -> None:
        """Rebuild from the archive after losing the data disks.

        Wipes every stable page and non-archive file, restores the dump,
        and runs ``crash()`` + ``recover()`` so volatile state is rebuilt
        by the architecture's own restart algorithm.  The database rolls
        back to the dump point: with no log there is nothing to roll
        forward with (the paper's cost of the no-log architectures).
        """
        if ARCHIVE_PAGES not in self.stable.files():
            raise RecoveryStateError(
                f"media recovery on {self.name!r} manager with no archive dump; "
                "call dump() first"
            )
        # The data disks are gone: drop every page and non-archive file.
        for page in sorted(self.stable.pages):
            self.stable.delete_page(page)
        for name in self.stable.files():
            if name not in _ARCHIVE_SET:
                self.stable.truncate(name)
        self._fault_point("media.restore.wipe")
        for page, data, seq in self.stable.read_file(ARCHIVE_PAGES):
            self.stable.write_page(page, data, seq)
        self._fault_point("media.restore.pages")
        for name, records in self.stable.read_file(ARCHIVE_FILES):
            self.stable.truncate(name, records)
        self._fault_point("media.restore.files")
        self.crash()
        self.recover()
        self._fault_point("media.restore.restart")
