"""Archive dumps and media restore for the non-logging managers.

The paper's Section 5 observation: every architecture needs a *media*
recovery story (the data disks themselves can die), and for the
architectures that keep no log the only possible baseline is a periodic
archive dump — after a media failure the database rolls back to the most
recent dump, because there is no redo log to roll forward with.  (The
distributed-WAL manager has the richer dump-plus-archive-log scheme in
:meth:`repro.storage.wal.DistributedWalManager.recover_from_media_failure`;
this mixin gives the shadow, version, overwrite, and differential managers
the dump-only counterpart with the same method names, so harnesses can
drive all five uniformly.)

Semantics:

* :meth:`ArchiveDumpMixin.dump` snapshots the *entire* stable image —
  every page (with its sequence number) and every non-archive file —
  into the reserved ``archive_pages`` / ``archive_files`` files, which
  model the archive medium (tape, or reserved cylinders on separate
  spindles) and survive the media failure.
* :meth:`ArchiveDumpMixin.recover_from_media_failure` wipes the stable
  image (the data disks are gone), restores the archived snapshot, and
  runs the architecture's normal restart algorithm against it — so
  transactions active *at dump time* are erased by the same crash
  discipline that erases them at restart.

Both operations are restartable: a crash mid-dump leaves either the old
or a partially-rewritten archive, and re-running ``dump()`` rewrites it
whole; a crash mid-restore leaves the archive intact, and re-running
``recover_from_media_failure()`` converges (the survivetest harness
exercises exactly this via the ``media.*`` fault points).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.storage.errors import RecoveryStateError
from repro.storage.repair import repair_stats, split_corruption

__all__ = ["ARCHIVE_FILES", "ARCHIVE_PAGES", "ArchiveDumpMixin"]

#: Reserved archive file holding ``(page, data, seq)`` triples.
ARCHIVE_PAGES = "archive_pages"

#: Reserved archive file holding ``(file_name, records)`` pairs.
ARCHIVE_FILES = "archive_files"

#: Files that live on the archive medium, not the data disks.
_ARCHIVE_SET = (ARCHIVE_PAGES, ARCHIVE_FILES)


class ArchiveDumpMixin:
    """Dump-only media recovery (mix in before :class:`RecoveryManager`)."""

    def dump(self) -> Dict[str, int]:
        """Archive the full stable image; returns ``{"pages", "files"}``.

        The snapshot is sharp with respect to stable storage: it copies
        exactly what is on disk, including slots/versions written by
        transactions still active — restore erases those through the
        normal restart algorithm, just as a crash would.
        """
        snapshot: List[Tuple[int, bytes, int]] = [
            (page, data, self.stable.page_seq(page))
            for page, data in sorted(self.stable.pages.items())
        ]
        self.stable.truncate(ARCHIVE_PAGES, snapshot)
        self._fault_point("media.dump.pages")
        files: List[Tuple[str, List[Any]]] = [
            (name, self.stable.read_file(name))
            for name in self.stable.files()
            if name not in _ARCHIVE_SET
        ]
        self.stable.truncate(ARCHIVE_FILES, files)
        self._fault_point("media.dump.files")
        return {"pages": len(snapshot), "files": len(files)}

    def recover_from_media_failure(self) -> None:
        """Rebuild from the archive after losing the data disks.

        Wipes every stable page and non-archive file, restores the dump,
        and runs ``crash()`` + ``recover()`` so volatile state is rebuilt
        by the architecture's own restart algorithm.  The database rolls
        back to the dump point: with no log there is nothing to roll
        forward with (the paper's cost of the no-log architectures).
        """
        if ARCHIVE_PAGES not in self.stable.files():
            raise RecoveryStateError(
                f"media recovery on {self.name!r} manager with no archive dump; "
                "call dump() first"
            )
        # The data disks are gone: drop every page and non-archive file.
        for page in sorted(self.stable.pages):
            self.stable.delete_page(page)
        for name in self.stable.files():
            if name not in _ARCHIVE_SET:
                self.stable.truncate(name)
        self._fault_point("media.restore.wipe")
        for page, data, seq in self.stable.read_file(ARCHIVE_PAGES):
            self.stable.write_page(page, data, seq)
        self._fault_point("media.restore.pages")
        for name, records in self.stable.read_file(ARCHIVE_FILES):
            self.stable.truncate(name, records)
        self._fault_point("media.restore.files")
        self.crash()
        self.recover()
        self._fault_point("media.restore.restart")

    def repair_corruption(self) -> Dict[str, int]:
        """Detect-and-repair: scrub the stable image and heal what rotted.

        A corrupt archive is rebuilt from the intact online image
        (re-dump); a corrupt page or record is restored *in place* from
        its archive copy when that copy still matches the stored
        checksum envelope (proving it is the original bits); anything
        unprovable escalates to :meth:`recover_from_media_failure`.
        Corruption on both sides at once leaves nothing clean to repair
        from and raises :class:`RecoveryStateError`.

        Returns the accounting dict of :func:`repro.storage.repair.repair_stats`.
        """
        stats = repair_stats()
        report = self.stable.scrub()
        bad_pages, bad_archive, bad_online = split_corruption(
            report, _ARCHIVE_SET
        )
        if not bad_pages and not bad_archive and not bad_online:
            return stats
        if bad_archive:
            if bad_pages or bad_online:
                raise RecoveryStateError(
                    f"{self.name!r} manager: corruption in both the online "
                    "image and the archive; no clean copy to repair from"
                )
            # The online image is intact: rewrite the archive whole.
            self.dump()
            self._fault_point("scrub.repair.archive")
            stats["archives_rebuilt"] = 1
            return stats
        archived_pages: Dict[int, bytes] = {}
        archived_files: Dict[str, List[Any]] = {}
        if ARCHIVE_PAGES in self.stable.files():
            archived_pages = {
                page: data
                for page, data, _seq in self.stable.read_file(ARCHIVE_PAGES)
            }
            archived_files = dict(self.stable.read_file(ARCHIVE_FILES))
        escalate = False
        for page in bad_pages:
            candidate = archived_pages.get(page)
            if candidate is not None and self.stable.page_matches(page, candidate):
                self.stable.restore_page(page, candidate)
                self._fault_point("scrub.repair.page")
                stats["pages_repaired"] += 1
            else:
                escalate = True
        for name in bad_online:
            records = archived_files.get(name, [])
            for index in report["files"][name]:
                if index < len(records) and self.stable.record_matches(
                    name, index, records[index]
                ):
                    self.stable.replace_record(name, index, records[index])
                    self._fault_point("scrub.repair.record")
                    stats["records_repaired"] += 1
                else:
                    escalate = True
        if escalate:
            # The rot predates the last dump (or there is none to match):
            # targeted repair cannot prove a candidate, so fall back to
            # the full archive restore and accept its rollback semantics.
            self.recover_from_media_failure()
            self._fault_point("scrub.repair.media")
            stats["escalations"] = 1
        return stats
