"""Functional version selection: two timestamped blocks per page.

Every page owns two adjacent stable blocks (paper Section 3.2.2.1).  A
write goes to the block *not* holding the current version, stamped with the
writing transaction's id; commit appends the tid to a stable committed list
with a monotonically increasing commit number.  A read fetches both blocks
and runs version selection: the block whose writer committed latest wins —
uncommitted or aborted writers simply never win, so crash recovery needs no
data movement at all.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.checkpoint import QuiescentCheckpoint
from repro.storage.archive import ArchiveDumpMixin
from repro.storage.errors import RecoveryStateError
from repro.storage.interface import RecoveryManager
from repro.storage.stable import StableStorage

__all__ = ["VersionSelectionManager"]

#: Writer id used for bootstrap versions (always considered committed).
GENESIS = 0


class VersionSelectionManager(ArchiveDumpMixin, RecoveryManager):
    """Adjacent-block versions chosen by commit timestamp at read time."""

    name = "version-selection"
    checkpoint_policy = QuiescentCheckpoint

    _COMMITS = "commit_order"

    def __init__(
        self, stable: Optional[StableStorage] = None, enforce_locks: bool = True
    ):
        super().__init__(stable, enforce_locks)
        # -- volatile: uncommitted write sets, for same-transaction reads.
        self._txn_writes: Dict[int, Dict[int, bytes]] = {}

    # -- block layout -----------------------------------------------------------
    @staticmethod
    def _block(page: int, which: int) -> int:
        """Stable keys of the two blocks of ``page`` (disjoint by parity)."""
        return page * 2 + which

    def _read_block(self, page: int, which: int) -> Tuple[int, bytes]:
        """(writer tid, payload) of one block; empty block -> (GENESIS, b'')."""
        raw = self.stable.read_page(self._block(page, which))
        if not raw:
            return GENESIS, b""
        tid_text, _, payload = raw.partition(b":")
        return int(tid_text), payload

    def _write_block(self, page: int, which: int, tid: int, data: bytes) -> None:
        self.stable.write_page(self._block(page, which), str(tid).encode() + b":" + data)

    # -- version selection ----------------------------------------------------------
    def _commit_rank(self) -> Dict[int, int]:
        """tid -> commit order (GENESIS ranks before everything)."""
        ranks = {GENESIS: -1}
        for order, tid in enumerate(self.stable.read_file(self._COMMITS)):
            ranks[tid] = order
        return ranks

    def _select_current(self, page: int) -> Tuple[Optional[int], bytes]:
        """The committed version of ``page``: (winning block, payload)."""
        ranks = self._commit_rank()
        best_block, best_rank, best_data = None, None, b""
        for which in (0, 1):
            tid, data = self._read_block(page, which)
            rank = ranks.get(tid)
            if rank is None:
                continue  # uncommitted or aborted writer: never selectable
            if best_rank is None or rank > best_rank:
                best_block, best_rank, best_data = which, rank, data
        return best_block, best_data

    # -- transaction hooks --------------------------------------------------------------
    def _on_begin(self, tid: int) -> None:
        self._txn_writes[tid] = {}

    def _do_read(self, tid: int, page: int) -> bytes:
        mine = self._txn_writes[tid].get(page)
        if mine is not None:
            return mine
        _block, data = self._select_current(page)
        return data

    def _do_write(self, tid: int, page: int, data: bytes) -> None:
        current_block, _ = self._select_current(page)
        target = 1 if current_block == 0 else 0
        self._fault_point("versions.write.pre-block")
        self._write_block(page, target, tid, data)
        self._fault_point("versions.write.post-block")
        self._txn_writes[tid][page] = data

    def _do_commit(self, tid: int) -> None:
        if self._txn_writes.pop(tid):
            self._fault_point("versions.commit.pre-record")
            # The commit point: the tid enters the stable commit order, and
            # from now on version selection picks its blocks.
            self.stable.append(self._COMMITS, tid)
            self._fault_point("versions.commit.post")

    def _do_abort(self, tid: int) -> None:
        # The written blocks stay physically present but are never selected.
        self._txn_writes.pop(tid, None)

    # -- crash / restart -----------------------------------------------------------------
    def _on_crash(self) -> None:
        self._txn_writes.clear()

    def _on_recover(self) -> None:
        """Nothing to do: selection at read time already ignores losers."""

    def read_committed(self, page: int) -> bytes:
        _block, data = self._select_current(page)
        return data

    # -- checkpoint maintenance ----------------------------------------------------------
    def compact_commit_order(self) -> Dict[str, int]:
        """Truncate the commit-order file (the quiescent checkpoint's work).

        Every read scans the whole commit order, so it must not grow with
        history.  With no transaction active, each page's winner is final:
        both blocks are rewritten as GENESIS copies of the winner, after
        which the commit order carries no information and is truncated.

        The *loser* block is rewritten first — this ordering is what makes
        a mid-compaction crash safe.  While the commit file is intact, a
        GENESIS loser (rank -1) can never outrank the still-stamped winner;
        rewriting the winner first would let a stale committed loser win.
        Destroying the loser is only legal because nothing is active: an
        uncommitted block at quiescence belongs to an aborted or crashed
        transaction and can never be selected.
        """
        if self._active:
            raise RecoveryStateError(
                "commit-order compaction requires quiescence"
            )
        before = self.stable.file_length(self._COMMITS)
        pages = sorted({key // 2 for key in self.stable.pages if key >= 0})
        rewritten = 0
        for page in pages:
            winner, data = self._select_current(page)
            if winner is None:
                continue
            self._write_block(page, 1 - winner, GENESIS, data)
            self._fault_point("versions.checkpoint.loser-block")
            self._write_block(page, winner, GENESIS, data)
            self._fault_point("versions.checkpoint.winner-block")
            rewritten += 1
        self._fault_point("versions.checkpoint.pre-truncate")
        self.stable.truncate(self._COMMITS)
        self._fault_point("versions.checkpoint.post-truncate")
        return {"commit_records_dropped": before, "pages_rewritten": rewritten}
