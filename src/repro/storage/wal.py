"""Distributed write-ahead logging with restart that never merges logs.

This is the functional counterpart of the paper's parallel-logging
architecture (Section 3.1 and ref [13]): a transaction's log records are
scattered over N independent logs, and crash recovery works without ever
building one merged physical log.

The trick is a **per-page update sequence number**: page-level strict 2PL
serializes the update history of each page, so tagging every log record
(and every stable page) with that page's sequence number totally orders the
records *of one page* regardless of which log they landed in.  Restart then
needs only:

1. scan each log independently, collecting the union of commit records and
   grouping update records by page (no cross-log ordering is ever used);
2. per page: redo the last committed after-image if it is newer than the
   stable page, then undo — restore the before-image of the earliest
   uncommitted record the stable page reflects.

Steal/no-force buffering is modeled faithfully: dirty pages may be flushed
before commit (after forcing the logs holding their records — the WAL rule)
and need not be flushed at commit; unforced log-buffer tails are lost at a
crash.

``checkpoint()`` implements fuzzy checkpointing without quiescing (the
paper's Section 3.1 claim): logs are truncated to the records not yet
reflected by stable pages, while transactions stay active.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.checkpoint import FuzzyCheckpoint
from repro.sim.monitor import WALInvariantMonitor
from repro.sim.rng import RandomStreams
from repro.storage.errors import RecoveryStateError
from repro.storage.interface import RecoveryManager
from repro.storage.repair import repair_stats, split_corruption
from repro.storage.stable import StableStorage

#: Files on the archive medium, not the data disks (the WAL layout:
#: page snapshot + continuously-appended log + auxiliary-file snapshot).
_WAL_ARCHIVE_SET = ("archive_pages", "archive_log", "archive_files")

__all__ = ["DistributedWalManager", "LogRecord"]


class LogRecord(NamedTuple):
    """One page update: full before/after images (physical logging)."""

    tid: int
    page: int
    seq: int
    before: bytes
    after: bytes


class _Log:
    """One log: a stable append-only file plus a volatile buffer."""

    def __init__(self, stable: StableStorage, name: str):
        self.stable = stable
        self.name = name
        self.buffer: List[Tuple] = []

    def append(self, record: Tuple) -> None:
        self.buffer.append(record)

    def force(self) -> None:
        if self.buffer:
            self.stable.extend(self.name, self.buffer)
            self.buffer = []

    def lose_volatile(self) -> None:
        self.buffer = []

    def stable_records(self) -> List[Tuple]:
        # read_log: replay trusts only the checksum-clean prefix (the
        # torn-tail stop rule); interior rot raises RecordIntegrityError.
        return self.stable.read_log(self.name)


class DistributedWalManager(RecoveryManager):
    """N-log write-ahead logging; see module docstring."""

    name = "distributed-wal"
    checkpoint_policy = FuzzyCheckpoint

    def __init__(
        self,
        n_logs: int = 3,
        stable: Optional[StableStorage] = None,
        enforce_locks: bool = True,
        selection_seed: Optional[int] = None,
        monitor: Optional[WALInvariantMonitor] = None,
    ):
        super().__init__(stable, enforce_locks)
        if n_logs < 1:
            raise ValueError("need at least one log")
        self.n_logs = n_logs
        self._logs = [_Log(self.stable, f"log{i}") for i in range(n_logs)]
        self._rng: Optional[random.Random] = (
            RandomStreams(selection_seed).stream("wal.log-selection")
            if selection_seed is not None
            else None
        )
        self._round_robin = 0
        self._monitor = monitor
        #: log index -> tokens of still-buffered records (monitor bookkeeping).
        self._log_tokens: Dict[int, List[Tuple[int, int]]] = {}
        self._token_counter = 0
        # -- volatile state --
        self._pool: Dict[int, Tuple[bytes, int]] = {}
        self._page_seq: Dict[int, int] = {}
        #: tid -> page -> (first-before-image, logs used)
        self._txn_first_before: Dict[int, Dict[int, bytes]] = {}
        self._txn_logs: Dict[int, Set[int]] = {}
        #: page -> logs holding unflushed records of that page (WAL rule).
        self._page_logs: Dict[int, Set[int]] = {}

    # -- selection -----------------------------------------------------------
    def _force_log(self, index: int) -> None:
        """Force one log and retire its buffered records with the monitor."""
        self._logs[index].force()
        if self._monitor is not None:
            for token in self._log_tokens.pop(index, ()):
                self._monitor.note_force(token)

    def _select_log(self) -> int:
        if self._rng is not None:
            return self._rng.randrange(self.n_logs)
        index = self._round_robin
        self._round_robin = (self._round_robin + 1) % self.n_logs
        return index

    # -- reads / writes ----------------------------------------------------------
    def _do_read(self, tid: int, page: int) -> bytes:
        return self._current(page)

    def _current(self, page: int) -> bytes:
        entry = self._pool.get(page)
        if entry is not None:
            return entry[0]
        return self.stable.read_page(page)

    def _next_seq(self, page: int) -> int:
        seq = self._page_seq.get(page)
        if seq is None:
            seq = self.stable.page_seq(page)
        seq += 1
        self._page_seq[page] = seq
        return seq

    def _do_write(self, tid: int, page: int, data: bytes) -> None:
        if not isinstance(data, bytes):
            raise TypeError("page data must be bytes")
        before = self._current(page)
        seq = self._next_seq(page)
        log_index = self._select_log()
        self._logs[log_index].append(
            ("update", LogRecord(tid, page, seq, before, data))
        )
        self._pool[page] = (data, seq)
        self._txn_first_before.setdefault(tid, {}).setdefault(page, before)
        self._txn_logs.setdefault(tid, set()).add(log_index)
        self._page_logs.setdefault(page, set()).add(log_index)
        if self._monitor is not None:
            token = (log_index, self._token_counter)
            self._token_counter += 1
            self._monitor.note_recovery_data(page, token)
            self._log_tokens.setdefault(log_index, []).append(token)

    # -- buffer management (steal / no-force) -----------------------------------------
    def flush_page(self, page: int) -> None:
        """Flush a dirty page to disk, forcing its logs first (WAL)."""
        entry = self._pool.get(page)
        if entry is None:
            return
        for log_index in sorted(self._page_logs.get(page, ())):
            self._force_log(log_index)
        self._fault_point("wal.flush.between-force-and-write")
        if self._monitor is not None:
            self._monitor.note_flush(page)
        data, seq = entry
        self.stable.write_page(page, data, seq)
        self._fault_point("wal.flush.post-write")

    def flush_all(self) -> None:
        for page in list(self._pool):
            self.flush_page(page)

    @property
    def dirty_pages(self) -> List[int]:
        return [
            page
            for page, (_data, seq) in self._pool.items()
            if seq > self.stable.page_seq(page)
        ]

    # -- commit / abort ------------------------------------------------------------------
    def _do_commit(self, tid: int) -> None:
        self._fault_point("wal.commit.pre-force")
        for log_index in sorted(self._txn_logs.get(tid, ())):
            self._force_log(log_index)
            self._fault_point("wal.commit.mid-force")
        self._fault_point("wal.commit.pre-record")
        home_index = tid % self.n_logs
        self._logs[home_index].append(("commit", tid))
        self._fault_point("wal.commit.pre-commit-force")
        self._force_log(home_index)
        self._fault_point("wal.commit.post")
        self._txn_first_before.pop(tid, None)
        self._txn_logs.pop(tid, None)

    def _do_abort(self, tid: int) -> None:
        # In-memory undo; no compensation records are needed because a
        # transaction without a commit record is undone at restart anyway.
        for page, before in self._txn_first_before.pop(tid, {}).items():
            seq = self._next_seq(page)
            self._pool[page] = (before, seq)
        self._txn_logs.pop(tid, None)

    # -- crash / restart ------------------------------------------------------------------
    def _on_crash(self) -> None:
        self._pool.clear()
        self._page_seq.clear()
        self._txn_first_before.clear()
        self._txn_logs.clear()
        self._page_logs.clear()
        self._log_tokens.clear()
        if self._monitor is not None:
            self._monitor.reset()
        for log in self._logs:
            log.lose_volatile()

    def _on_recover(self) -> None:
        committed, by_page = self._scan_logs()
        for page, chain in by_page.items():
            chain.sort(key=lambda r: r.seq)
            by_seq = {r.seq: r for r in chain}
            # Undo: page sequence numbers identify exactly which update the
            # stable page reflects.  While that update is uncommitted (the
            # page was stolen), roll back through before-images.
            seq = self.stable.page_seq(page)
            rolled_back = None
            while True:
                record = by_seq.get(seq)
                if record is None or record.tid in committed:
                    break
                rolled_back = record.before
                seq = record.seq - 1
            # Redo: install the newest committed image if it is newer than
            # the (possibly rolled-back) stable state.
            committed_chain = [r for r in chain if r.tid in committed]
            if committed_chain and committed_chain[-1].seq > seq:
                last = committed_chain[-1]
                self.stable.write_page(page, last.after, last.seq)
            elif rolled_back is not None:
                self.stable.write_page(page, rolled_back, seq)
            self._fault_point("wal.recover.page")
        # Restart leaves stable storage exactly at the committed state, so
        # every surviving record is reflected and every uncommitted record
        # is permanently dead: the logs can be emptied.  (This also stops
        # reused page sequence numbers from colliding with dead records.)
        #
        # Truncation is two-phase so a crash *during recovery* stays safe:
        # dropping a commit record from log A while transaction t's update
        # records survive in log B would make a re-run of restart undo t.
        # Phase 1 drops update records only (keeping every commit record);
        # phase 2 drops the now-unreferenced commit records.
        for log in self._logs:
            commits = [r for r in log.stable_records() if r[0] == "commit"]
            self.stable.truncate(log.name, commits)
            self._fault_point("wal.recover.truncate-updates")
        for log in self._logs:
            self.stable.truncate(log.name)
            self._fault_point("wal.recover.truncate-commits")

    def _scan_logs(self):
        """Scan each log independently; union commits, group by page."""
        committed: Set[int] = set()
        by_page: Dict[int, List[LogRecord]] = {}
        for log in self._logs:
            for record in log.stable_records():
                kind = record[0]
                if kind == "commit":
                    committed.add(record[1])
                elif kind == "update":
                    entry: LogRecord = record[1]
                    by_page.setdefault(entry.page, []).append(entry)
        return committed, by_page

    # -- checkpointing -------------------------------------------------------------------
    def checkpoint(self, flush: bool = False) -> Dict[str, int]:
        """Fuzzy checkpoint: truncate logs without quiescing transactions.

        Keeps (a) every record of a transaction without a commit record and
        (b) every committed record not yet reflected by the stable page;
        commit records survive while any of their records do.  With
        ``flush=True``, dirty pages are flushed first, maximizing truncation.
        Returns per-log retained record counts.
        """
        for index in range(self.n_logs):
            self._force_log(index)
        if flush:
            self.flush_all()
        committed, _ = self._scan_logs()
        # Which committed transactions still have unreflected records?
        retained_tids: Set[int] = set()
        kept_per_log: Dict[str, List[Tuple]] = {}
        for log in self._logs:
            kept = []
            for record in log.stable_records():
                if record[0] != "update":
                    continue
                entry: LogRecord = record[1]
                unreflected = entry.seq > self.stable.page_seq(entry.page)
                if entry.tid not in committed or unreflected:
                    kept.append(record)
                    retained_tids.add(entry.tid)
            kept_per_log[log.name] = kept
        # Two-phase truncation (same discipline as restart): never drop a
        # commit record while another log still holds that transaction's
        # update records — a crash between per-log truncations would make
        # restart undo committed work.  Phase 1 drops update records only.
        commits_per_log: Dict[str, List[Tuple]] = {}
        for log in self._logs:
            commits_per_log[log.name] = [
                r for r in log.stable_records() if r[0] == "commit"
            ]
            self.stable.truncate(
                log.name, kept_per_log[log.name] + commits_per_log[log.name]
            )
            self._fault_point("wal.checkpoint.truncate-updates")
        stats = {}
        for log in self._logs:
            kept = list(kept_per_log[log.name])
            for record in commits_per_log[log.name]:
                if record[1] in retained_tids:
                    kept.append(record)
            self.stable.truncate(log.name, kept)
            self._fault_point("wal.checkpoint.truncate-commits")
            stats[log.name] = len(kept)
        return stats

    # -- media recovery --------------------------------------------------------------------
    def dump(self) -> Dict[str, int]:
        """Take an archive dump (media-recovery baseline).

        Copies every stable page into the archive area and records the
        dump point; together with the archive log (every log record is
        also appended to the archive on force), this allows
        :meth:`recover_from_media_failure` to rebuild the database after
        the *data disks* are lost — the classic dump-plus-log media
        recovery the logging literature (Gray's notes, the paper's ref
        [12]) pairs with WAL.

        The dump is sharp with respect to stable pages (it copies what is
        on disk); uncommitted stolen data in the dump is corrected at
        restore time by the archived records, exactly as in restart.
        """
        self.flush_all()
        for index in range(self.n_logs):
            self._force_log(index)
        snapshot = [
            (page, data, self.stable.page_seq(page))
            for page, data in sorted(self.stable.pages.items())
        ]
        self.stable.truncate("archive_pages", snapshot)
        self._fault_point("media.dump.pages")
        # Archive the logs as of the dump; later records keep appending.
        archived = []
        for log in self._logs:
            archived.extend(log.stable_records())
        self.stable.truncate("archive_log", archived)
        self._fault_point("media.dump.log")
        # Auxiliary files (the checkpoint record file) have no log to
        # roll them forward from; snapshot them like the no-log managers.
        log_names = {log.name for log in self._logs}
        others = [
            (name, self.stable.read_file(name))
            for name in self.stable.files()
            if name not in log_names and name not in _WAL_ARCHIVE_SET
        ]
        self.stable.truncate("archive_files", others)
        self._fault_point("media.dump.files")
        return {"pages": len(snapshot), "log_records": len(archived)}

    def archive_append(self) -> None:
        """Append current stable log contents to the archive log.

        Call after commits (or periodically): the archive log must contain
        every record that restart would need, because recovery truncates
        the online logs.
        """
        existing = self.stable.read_file("archive_log")
        seen = len(existing)
        merged = list(existing)
        current = []
        for log in self._logs:
            current.extend(log.stable_records())
        for record in current:
            if record not in merged:
                merged.append(record)
        del seen
        self.stable.truncate("archive_log", merged)

    def recover_from_media_failure(self) -> None:
        """Rebuild the database from the archive dump + archive log.

        Models losing the data disks entirely: every stable page is wiped,
        then the dump is restored and the archived records are replayed
        with the same per-page redo/undo rules as restart.
        """
        dump = self.stable.read_file("archive_pages")
        archive = self.stable.read_file("archive_log")
        # The data disks are gone.
        for page in sorted(self.stable.pages):
            self.stable.write_page(page, b"", 0)
        self._fault_point("media.restore.wipe")
        for page, data, seq in dump:
            self.stable.write_page(page, data, seq)
        self._fault_point("media.restore.pages")
        # Restore the auxiliary-file snapshot (dumps may predate it).
        if "archive_files" in self.stable.files():
            log_names = {log.name for log in self._logs}
            for name in self.stable.files():
                if name not in log_names and name not in _WAL_ARCHIVE_SET:
                    self.stable.truncate(name)
            for name, records in self.stable.read_file("archive_files"):
                self.stable.truncate(name, records)
            self._fault_point("media.restore.files")
        # Replay the archive through the restart algorithm: stage the
        # records into the online logs and run recovery.
        for log in self._logs:
            self.stable.truncate(log.name)
        if archive:
            self.stable.truncate(self._logs[0].name, archive)
        self._fault_point("media.restore.staged")
        # Media failure is a full restart: the public crash()/recover()
        # pair also clears the lock table and active-transaction set, so
        # survivors re-begin cleanly on the restored store.
        self.crash()
        self.recover()
        self._fault_point("media.restore.restart")

    def repair_corruption(self) -> Dict[str, int]:
        """Detect-and-repair (the WAL layout of the shared algorithm).

        A corrupt archive is rebuilt whole from the intact online image
        (re-dump).  A corrupt page is restored from the archive dump; a
        corrupt online record (log or auxiliary file) is restored from
        any archived copy that still matches its stored checksum
        envelope — the archive log, being continuously appended, holds a
        clean copy of every forced record.  Anything unprovable
        escalates to the full dump-plus-log media recovery, which for
        WAL loses nothing (the roll-forward advantage).
        """
        stats = repair_stats()
        report = self.stable.scrub()
        bad_pages, bad_archive, bad_online = split_corruption(
            report, _WAL_ARCHIVE_SET
        )
        if not bad_pages and not bad_archive and not bad_online:
            return stats
        if bad_archive:
            if bad_pages or bad_online:
                raise RecoveryStateError(
                    f"{self.name!r} manager: corruption in both the online "
                    "image and the archive; no clean copy to repair from"
                )
            self.dump()
            self._fault_point("scrub.repair.archive")
            stats["archives_rebuilt"] = 1
            return stats
        files = self.stable.files()
        if "archive_pages" not in files:
            raise RecoveryStateError(
                f"{self.name!r} manager: corruption with no archive dump to "
                "repair from; call dump() first"
            )
        archived_pages = {
            page: data
            for page, data, _seq in self.stable.read_file("archive_pages")
        }
        candidates: List[Tuple] = list(self.stable.read_file("archive_log"))
        if "archive_files" in files:
            for _name, records in self.stable.read_file("archive_files"):
                candidates.extend(records)
        escalate = False
        for page in bad_pages:
            candidate = archived_pages.get(page)
            if candidate is not None and self.stable.page_matches(page, candidate):
                self.stable.restore_page(page, candidate)
                self._fault_point("scrub.repair.page")
                stats["pages_repaired"] += 1
            else:
                escalate = True
        for name in bad_online:
            for index in report["files"][name]:
                copy = next(
                    (
                        record
                        for record in candidates
                        if self.stable.record_matches(name, index, record)
                    ),
                    None,
                )
                if copy is not None:
                    self.stable.replace_record(name, index, copy)
                    self._fault_point("scrub.repair.record")
                    stats["records_repaired"] += 1
                else:
                    escalate = True
        if escalate:
            # An unforced or never-archived record rotted: fall back to
            # the dump-plus-archive-log restore and roll forward.
            self.recover_from_media_failure()
            self._fault_point("scrub.repair.media")
            stats["escalations"] = 1
        return stats

    # -- inspection ----------------------------------------------------------------------
    def read_committed(self, page: int) -> bytes:
        for tid in self._active:
            before = self._txn_first_before.get(tid, {}).get(page)
            if before is not None:
                return before
        return self._current(page)

    def log_lengths(self) -> Dict[str, int]:
        """Stable record count per log (buffered tails excluded)."""
        return {log.name: len(log.stable_records()) for log in self._logs}
