"""The common contract of every functional recovery manager.

Transactions are driven explicitly::

    manager = DistributedWalManager(n_logs=3)
    tid = manager.begin()
    manager.write(tid, page=1, data=b"hello")
    manager.commit(tid)
    manager.crash()      # wipe all volatile state
    manager.recover()    # restart algorithm
    assert manager.read_committed(1) == b"hello"

The contract (checked by the shared property-based tests in
``tests/test_storage_properties.py``):

* **durability** — after ``commit`` returns, the transaction's writes
  survive any number of crashes;
* **atomicity** — a transaction that never committed (aborted, or active
  at a crash) leaves no trace;
* **isolation** (page level) — with ``enforce_locks=True`` (default),
  conflicting concurrent page access raises :class:`LockConflict`,
  modeling the paper's page-level-locking scheduler.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.checkpoint import CHECKPOINT_FILE, CheckpointRecord, CheckpointStats
from repro.storage.errors import LockConflict, RecoveryStateError, UnknownTransaction
from repro.storage.stable import StableStorage

__all__ = ["RecoveryManager"]


class RecoveryManager:
    """Base class: transaction registry, page locks, crash plumbing."""

    name = "abstract"

    #: Checkpoint capability (reprolint ARCH03): concrete managers bind the
    #: :class:`repro.checkpoint.CheckpointPolicy` subclass they implement,
    #: or set ``checkpoint_unsupported = True`` to opt out explicitly.
    checkpoint_policy: Optional[type] = None
    checkpoint_unsupported = False

    def __init__(
        self, stable: Optional[StableStorage] = None, enforce_locks: bool = True
    ):
        self.stable = stable if stable is not None else StableStorage()
        self.enforce_locks = enforce_locks
        self._next_tid = 1
        self._active: Set[int] = set()
        #: page -> owning transaction (exclusive page locks; readers of a
        #: page someone else is updating conflict, as under strict 2PL with
        #: the write set known up front).
        self._locks: Dict[int, int] = {}
        #: set once the first crash happens; ``recover()`` before that is
        #: a caller bug (see :class:`RecoveryStateError`).
        self._crashed = False
        self._fault_callback: Optional[Callable[[str], None]] = None

    # -- transaction control -------------------------------------------------
    def begin(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        self._active.add(tid)
        self._on_begin(tid)
        return tid

    def read(self, tid: int, page: int) -> bytes:
        self._check_active(tid)
        self._lock(tid, page)
        return self._do_read(tid, page)

    def write(self, tid: int, page: int, data: bytes) -> None:
        self._check_active(tid)
        self._lock(tid, page)
        self._do_write(tid, page, data)

    def commit(self, tid: int) -> None:
        self._check_active(tid)
        self._do_commit(tid)
        self._finish(tid)

    def abort(self, tid: int) -> None:
        self._check_active(tid)
        self._do_abort(tid)
        self._finish(tid)

    # -- crash / restart ----------------------------------------------------------
    def crash(self) -> None:
        """Lose every piece of volatile state (buffer pool, lock table,
        active transactions, unforced log tails).

        Idempotent: crashing an already-crashed manager is a no-op beyond
        re-clearing (already empty) volatile state, so a crash that lands
        *during recovery* can simply be followed by another ``crash()`` +
        ``recover()``.
        """
        self._crashed = True
        self._active.clear()
        self._locks.clear()
        self._on_crash()

    def recover(self) -> None:
        """Run the architecture's restart algorithm against stable storage.

        Only legal after at least one ``crash()``; repeated recovery after
        a single crash is allowed (restart algorithms are idempotent).
        Raises :class:`RecoveryStateError` on a never-crashed manager.
        """
        if not self._crashed:
            raise RecoveryStateError(
                f"recover() on {self.name!r} manager that never crashed; "
                "call crash() first"
            )
        self._on_recover()

    def read_committed(self, page: int) -> bytes:
        """The current committed value of ``page`` (outside any transaction)."""
        raise NotImplementedError

    # -- checkpointing -------------------------------------------------------
    def take_checkpoint(self) -> CheckpointStats:
        """Run this architecture's checkpoint protocol (see docs/CHECKPOINT.md).

        Compacts the recovery data so restart is bounded by the checkpoint
        interval, then appends a durable :class:`CheckpointRecord`.  Raises
        :class:`repro.checkpoint.CheckpointUnsupported` on a manager with
        no declared capability; a quiescent policy may *skip* (returned in
        the stats) while transactions are active.
        """
        from repro.checkpoint.adapters import adapter_for

        return adapter_for(self).take(self)

    def checkpoint_count(self) -> int:
        """Durable checkpoints taken so far (survives crashes)."""
        return self.stable.file_length(CHECKPOINT_FILE)

    def last_checkpoint(self) -> Optional[CheckpointRecord]:
        """The most recent durable checkpoint record, if any."""
        records = self.stable.read_file(CHECKPOINT_FILE)
        return records[-1] if records else None

    # -- subclass hooks ---------------------------------------------------------------
    def _on_begin(self, tid: int) -> None:
        pass

    def _do_read(self, tid: int, page: int) -> bytes:
        raise NotImplementedError

    def _do_write(self, tid: int, page: int, data: bytes) -> None:
        raise NotImplementedError

    def _do_commit(self, tid: int) -> None:
        raise NotImplementedError

    def _do_abort(self, tid: int) -> None:
        raise NotImplementedError

    def _on_crash(self) -> None:
        raise NotImplementedError

    def _on_recover(self) -> None:
        raise NotImplementedError

    # -- fault injection -----------------------------------------------------------------
    def set_fault_callback(self, callback: Optional[Callable[[str], None]]) -> None:
        """Install (or clear) a hook-crossing callback.

        The callback receives the hook-point name each time execution
        crosses a named crash point (``wal.commit.pre-record``, ...) and
        may raise ``InjectedCrash`` to simulate a failure exactly there.
        """
        self._fault_callback = callback

    def _fault_point(self, name: str) -> None:
        if self._fault_callback is not None:
            self._fault_callback(name)

    # -- shared plumbing -----------------------------------------------------------------
    def _check_active(self, tid: int) -> None:
        if tid not in self._active:
            raise UnknownTransaction(f"transaction {tid} is not active")

    def _lock(self, tid: int, page: int) -> None:
        if not self.enforce_locks:
            return
        holder = self._locks.get(page)
        if holder is None:
            self._locks[page] = tid
        elif holder != tid:
            raise LockConflict(tid, page, holder)

    def _finish(self, tid: int) -> None:
        self._active.discard(tid)
        for page in [p for p, t in self._locks.items() if t == tid]:
            del self._locks[page]

    @property
    def active_transactions(self) -> Set[int]:
        return set(self._active)
