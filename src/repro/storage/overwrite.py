"""Functional overwriting recovery: the no-undo and no-redo variants.

Both keep separate current and shadow copies of a page only while the
updating transaction is active, in a stable **scratch ring** (paper Section
3.2.2.2), and both maintain a small transaction list that survives crashes:

* **no-undo** — updated pages are written to the scratch ring as the
  transaction runs; commit appends the tid to the stable *committed list*
  (the commit point) and then copies the scratch pages over the shadows.
  Restart re-applies the scratch copies of committed-but-unapplied
  transactions (redo from scratch) and discards the rest — no undo ever.
* **no-redo** — the shadow (original) of each page is saved to the scratch
  ring before the home is overwritten in place; commit appends the tid to
  the stable committed list.  Restart restores shadows for every
  transaction *not* in the committed list — no redo ever.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set

from repro.checkpoint import FuzzyCheckpoint
from repro.storage.archive import ArchiveDumpMixin
from repro.storage.interface import RecoveryManager
from repro.storage.stable import StableStorage

__all__ = ["OverwriteVariant", "OverwritingManager"]


class OverwriteVariant(enum.Enum):
    NO_UNDO = "no-undo"
    NO_REDO = "no-redo"


class OverwritingManager(ArchiveDumpMixin, RecoveryManager):
    """Scratch-ring overwriting; see module docstring."""

    name = "overwriting"
    checkpoint_policy = FuzzyCheckpoint

    _SCRATCH = "scratch"
    _COMMITTED = "committed_txns"
    _APPLIED = "applied_txns"

    def __init__(
        self,
        variant: OverwriteVariant = OverwriteVariant.NO_UNDO,
        stable: Optional[StableStorage] = None,
        enforce_locks: bool = True,
    ):
        super().__init__(stable, enforce_locks)
        self.variant = variant
        # -- volatile state --
        #: tid -> page -> current (uncommitted) value, for reads.
        self._txn_writes: Dict[int, Dict[int, bytes]] = {}
        #: no-redo: pages whose shadow this txn already saved.
        self._shadow_saved: Dict[int, Set[int]] = {}

    # -- transaction hooks -------------------------------------------------------
    def _on_begin(self, tid: int) -> None:
        self._txn_writes[tid] = {}
        self._shadow_saved[tid] = set()

    def _do_read(self, tid: int, page: int) -> bytes:
        mine = self._txn_writes[tid].get(page)
        if mine is not None:
            return mine
        return self.stable.read_page(page)

    def _do_write(self, tid: int, page: int, data: bytes) -> None:
        if self.variant is OverwriteVariant.NO_UNDO:
            # Current copy parks in the scratch ring; the shadow (home copy)
            # stays untouched until after commit.
            self.stable.append(self._SCRATCH, ("current", tid, page, data))
            self._fault_point("overwrite.write.post-scratch")
        else:
            # Save the shadow once, then overwrite home in place.
            if page not in self._shadow_saved[tid]:
                before = self.stable.read_page(page)
                self.stable.append(self._SCRATCH, ("shadow", tid, page, before))
                self._shadow_saved[tid].add(page)
            self._fault_point("overwrite.write.pre-home")
            self.stable.write_page(page, data)
            self._fault_point("overwrite.write.post-home")
        self._txn_writes[tid][page] = data

    def _do_commit(self, tid: int) -> None:
        writes = self._txn_writes.pop(tid)
        self._shadow_saved.pop(tid, None)
        if not writes:
            return
        self._fault_point("overwrite.commit.pre-record")
        # The commit point: one appended record.
        self.stable.append(self._COMMITTED, tid)
        self._fault_point("overwrite.commit.post-record")
        if self.variant is OverwriteVariant.NO_UNDO:
            self._apply_scratch(tid)
        else:
            self._drop_scratch(tid)
        self._fault_point("overwrite.commit.post")

    def _do_abort(self, tid: int) -> None:
        writes = self._txn_writes.pop(tid)
        self._shadow_saved.pop(tid, None)
        if self.variant is OverwriteVariant.NO_UNDO:
            # Homes were never touched; scratch copies become garbage.
            self._drop_scratch(tid)
        else:
            # Homes were overwritten in place: restore the saved shadows.
            for record in self.stable.read_file(self._SCRATCH):
                kind, rec_tid, page, data = record
                if rec_tid == tid and kind == "shadow":
                    self.stable.write_page(page, data)
                    self._fault_point("overwrite.abort.page")
            self._drop_scratch(tid)
        del writes

    # -- scratch-ring helpers ------------------------------------------------------
    def _apply_scratch(self, tid: int) -> None:
        """No-undo: overwrite the shadows with the committed current copies."""
        latest: Dict[int, bytes] = {}
        for record in self.stable.read_file(self._SCRATCH):
            kind, rec_tid, page, data = record
            if rec_tid == tid and kind == "current":
                latest[page] = data
        for page, data in latest.items():
            self.stable.write_page(page, data)
            self._fault_point("overwrite.apply.page")
        self._fault_point("overwrite.apply.pre-applied-record")
        self.stable.append(self._APPLIED, tid)
        self._drop_scratch(tid)

    def _drop_scratch(self, tid: int) -> None:
        keep = [r for r in self.stable.read_file(self._SCRATCH) if r[1] != tid]
        self._fault_point("overwrite.scratch.pre-drop")
        self.stable.truncate(self._SCRATCH, keep)
        self._fault_point("overwrite.scratch.post-drop")

    # -- crash / restart ----------------------------------------------------------------
    def _on_crash(self) -> None:
        self._txn_writes.clear()
        self._shadow_saved.clear()

    def _on_recover(self) -> None:
        committed = set(self.stable.read_file(self._COMMITTED))
        applied = set(self.stable.read_file(self._APPLIED))
        scratch_tids = {r[1] for r in self.stable.read_file(self._SCRATCH)}
        if self.variant is OverwriteVariant.NO_UNDO:
            # Redo from scratch for committed transactions whose overwrite
            # did not finish; everything uncommitted is garbage.
            for tid in sorted(scratch_tids):
                self._fault_point("overwrite.recover.txn")
                if tid in committed and tid not in applied:
                    self._apply_scratch(tid)
                else:
                    # Uncommitted garbage, or leftovers from a crash that hit
                    # between marking a transaction applied and cleaning up.
                    self._drop_scratch(tid)
        else:
            # Restore shadows for every transaction that never committed.
            for tid in sorted(scratch_tids):
                self._fault_point("overwrite.recover.txn")
                if tid not in committed:
                    for record in self.stable.read_file(self._SCRATCH):
                        kind, rec_tid, page, data = record
                        if rec_tid == tid and kind == "shadow":
                            self.stable.write_page(page, data)
                self._drop_scratch(tid)

    def read_committed(self, page: int) -> bytes:
        if self.variant is OverwriteVariant.NO_UNDO:
            return self.stable.read_page(page)
        # No-redo: the home may hold an active transaction's data; the
        # committed value is then the saved shadow.
        for record in self.stable.read_file(self._SCRATCH):
            kind, rec_tid, rec_page, data = record
            if kind == "shadow" and rec_page == page and rec_tid in self._active:
                return data
        return self.stable.read_page(page)

    # -- checkpoint maintenance ----------------------------------------------------------
    def compact_transaction_lists(self) -> Dict[str, int]:
        """Prune the committed/applied lists (the fuzzy checkpoint's work).

        Restart only consults the lists for tids still present in the
        scratch ring, so a committed (or applied) tid whose scratch records
        are gone is dead weight and can be dropped — even while other
        transactions run.  A tid still in scratch (in-doubt: a crash
        between its commit record and its cleanup) is always retained.
        The committed list is truncated before the applied list; a crash
        between the two leaves extra applied tids, which restart ignores.
        """
        scratch_tids = {r[1] for r in self.stable.read_file(self._SCRATCH)}
        committed = self.stable.read_file(self._COMMITTED)
        applied = self.stable.read_file(self._APPLIED)
        keep_committed = [tid for tid in committed if tid in scratch_tids]
        keep_applied = [tid for tid in applied if tid in scratch_tids]
        self._fault_point("overwrite.checkpoint.pre-committed")
        self.stable.truncate(self._COMMITTED, keep_committed)
        self._fault_point("overwrite.checkpoint.committed")
        self.stable.truncate(self._APPLIED, keep_applied)
        self._fault_point("overwrite.checkpoint.applied")
        return {
            "applied_dropped": len(applied) - len(keep_applied),
            "committed_dropped": len(committed) - len(keep_committed),
        }

    # -- inspection ----------------------------------------------------------------------
    def scratch_length(self) -> int:
        return self.stable.file_length(self._SCRATCH)
