"""Functional shadow paging with an atomic page-table root swap.

The stable layout mirrors the canonical (System R-style) scheme the paper's
Section 3.2.1 builds on:

* a slot store (``slot:<n>`` pages) holding page images;
* two page-table versions (files ``page_table:0`` / ``page_table:1``),
  each a list of ``(logical page, slot)`` entries;
* a one-record ``root`` file naming the current version — the single
  atomic write that commits a transaction.

A transaction's updates go to *fresh* slots (written to stable storage as
they happen — no undo and no redo is ever needed for data pages); commit
writes the alternate page-table version and flips the root.  A crash at any
earlier point leaves the old root naming the old table, so the transaction
vanishes; a crash after the flip leaves it durable.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.checkpoint import SnapshotCheckpoint
from repro.storage.archive import ArchiveDumpMixin
from repro.storage.interface import RecoveryManager
from repro.storage.stable import StableStorage

__all__ = ["ShadowPageTableManager"]


class ShadowPageTableManager(ArchiveDumpMixin, RecoveryManager):
    """Copy-on-write slots + atomic root swap; see module docstring."""

    name = "shadow-page-table"
    checkpoint_policy = SnapshotCheckpoint

    _ROOT = "root"
    _TABLE = ("page_table:0", "page_table:1")

    def __init__(
        self, stable: Optional[StableStorage] = None, enforce_locks: bool = True
    ):
        super().__init__(stable, enforce_locks)
        if not self.stable.read_file(self._ROOT):
            self.stable.append(self._ROOT, 0)
            self.stable.truncate(self._TABLE[0], [])
        # -- volatile state --
        self._next_slot = self._derive_next_slot()
        #: tid -> logical page -> fresh slot (private, uncommitted mapping).
        self._txn_slots: Dict[int, Dict[int, int]] = {}

    # -- stable helpers --------------------------------------------------------
    def _root(self) -> int:
        return self.stable.read_file(self._ROOT)[-1]

    def _current_table(self) -> Dict[int, int]:
        entries = self.stable.read_file(self._TABLE[self._root()])
        return dict(entries)

    def _derive_next_slot(self) -> int:
        used = [slot for _page, slot in self.stable.read_file(self._TABLE[self._root()])]
        return (max(used) + 1) if used else 0

    def _slot_page(self, slot: int) -> int:
        # Slots live in the stable page store under negative-space keys so
        # they can never collide with logical page numbers.
        return -(slot + 1)

    # -- transaction hooks ------------------------------------------------------
    def _on_begin(self, tid: int) -> None:
        self._txn_slots[tid] = {}

    def _do_read(self, tid: int, page: int) -> bytes:
        slot = self._txn_slots.get(tid, {}).get(page)
        if slot is None:
            slot = self._current_table().get(page)
        if slot is None:
            return b""
        return self.stable.read_page(self._slot_page(slot))

    def _do_write(self, tid: int, page: int, data: bytes) -> None:
        slot = self._next_slot
        self._next_slot += 1
        # The new copy goes straight to stable storage: harmless if the
        # transaction dies, because no page table points at it yet.
        self.stable.write_page(self._slot_page(slot), data)
        self._fault_point("shadow.write.post-slot")
        self._txn_slots[tid][page] = slot

    def _do_commit(self, tid: int) -> None:
        table = self._current_table()
        table.update(self._txn_slots.pop(tid))
        alternate = 1 - self._root()
        self._fault_point("shadow.commit.pre-table")
        self.stable.truncate(self._TABLE[alternate], sorted(table.items()))
        self._fault_point("shadow.commit.installed-table")
        # The commit point: one atomic root write.
        self.stable.append(self._ROOT, alternate)
        self._fault_point("shadow.commit.post-root")

    def _do_abort(self, tid: int) -> None:
        # Fresh slots become garbage; nothing on stable storage points at them.
        self._txn_slots.pop(tid, None)

    # -- crash / restart ------------------------------------------------------------
    def _on_crash(self) -> None:
        self._txn_slots.clear()

    def _on_recover(self) -> None:
        # Shadow recovery is trivial: the root names the last committed
        # table.  Restart only reclaims orphaned slots (garbage collection).
        self._fault_point("shadow.recover")
        self._next_slot = self._derive_next_slot()

    def read_committed(self, page: int) -> bytes:
        slot = self._current_table().get(page)
        if slot is None:
            return b""
        return self.stable.read_page(self._slot_page(slot))

    # -- checkpoint maintenance -------------------------------------------------------
    def collect_garbage(self) -> Dict[str, int]:
        """Reclaim slots nothing references (the snapshot checkpoint's work).

        The committed snapshot is already durable (the root names it), so
        the checkpoint only frees slots referenced by neither page-table
        version nor any active transaction's private mapping.  Each delete
        is individually harmless, so a crash mid-sweep needs no repair.
        """
        referenced = set()
        for table in self._TABLE:
            for _page, slot in self.stable.read_file(table):
                referenced.add(slot)
        for tid in sorted(self._txn_slots):
            for slot in sorted(self._txn_slots[tid].values()):
                referenced.add(slot)
        freed = 0
        for key in sorted(self.stable.pages):
            if key >= 0:
                continue
            slot = -key - 1
            if slot in referenced:
                continue
            self.stable.delete_page(key)
            self._fault_point("shadow.checkpoint.gc-slot")
            freed += 1
        return {"root": self._root(), "slots_reclaimed": freed}

    # -- inspection -------------------------------------------------------------------
    def garbage_slots(self) -> int:
        """Stable slots no page-table version references (reclaimable)."""
        referenced = set()
        for table in self._TABLE:
            for _page, slot in self.stable.read_file(table):
                referenced.add(slot)
        allocated = {
            -key - 1 for key in self.stable.pages if key < 0
        }
        return len(allocated - referenced)
