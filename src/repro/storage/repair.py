"""Shared pieces of the managers' detect-and-repair entry points.

Every recovery manager exposes ``repair_corruption()`` — the functional
half of the scrub story (docs/INTEGRITY.md).  The algorithm is the same
across architectures; only the archive layout differs (the
:class:`~repro.storage.archive.ArchiveDumpMixin` managers keep
``archive_pages``/``archive_files``, the distributed-WAL manager keeps
``archive_pages``/``archive_log``), so the classification and accounting
helpers live here and each manager keeps only its layout-specific half:

1. **scrub** the stable image (:meth:`StableStorage.scrub`);
2. corruption *only in the archive* → the online image is intact, so
   re-running ``dump()`` rewrites the archive whole;
3. corruption in the online image → **targeted repair**: an archive copy
   that still matches the stored checksum envelope is provably the
   original bits and is written back in place;
4. anything targeted repair cannot prove → **escalate** to the
   architecture's full archive(+log) media recovery;
5. corruption on *both* sides at once → nothing clean remains to repair
   from; raise instead of guessing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

__all__ = ["repair_stats", "split_corruption"]


def repair_stats() -> Dict[str, int]:
    """The zeroed accounting a ``repair_corruption()`` call returns."""
    return {
        "pages_repaired": 0,
        "records_repaired": 0,
        "archives_rebuilt": 0,
        "escalations": 0,
    }


def split_corruption(
    report: Dict[str, Any], archive_names: Sequence[str]
) -> Tuple[List[int], List[str], List[str]]:
    """Split a :meth:`StableStorage.scrub` report by repair source.

    Returns ``(bad_pages, bad_archive_files, bad_online_files)``: pages
    and online files are repaired *from* the archive; a corrupt archive
    file is rebuilt from the (then necessarily intact) online image.
    """
    bad_pages = list(report["pages"])
    bad_archive = [n for n in sorted(report["files"]) if n in archive_names]
    bad_online = [n for n in sorted(report["files"]) if n not in archive_names]
    return bad_pages, bad_archive, bad_online
