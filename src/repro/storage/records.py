"""Record codec: typed tuples <-> bytes.

A tiny self-describing row format so the heap layer can store Python
tuples of ints, floats, strings, bytes, bools, and None without pulling in
pickle (whose output is neither stable nor audit-friendly for a storage
engine).  Layout: field count, then per field a one-byte type tag and a
length-prefixed payload.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.integrity import IntegrityError

__all__ = ["RecordCodecError", "decode_record", "encode_record"]

_COUNT = struct.Struct("<H")
_LENGTH = struct.Struct("<I")
_INT = struct.Struct("<q")
_FLOAT = struct.Struct("<d")

_TAG_NONE = b"N"
_TAG_BOOL = b"B"
_TAG_INT = b"I"
_TAG_BIGINT = b"J"
_TAG_FLOAT = b"F"
_TAG_STR = b"S"
_TAG_BYTES = b"Y"


class RecordCodecError(IntegrityError):
    """Raised for unsupported field types or corrupt record bytes.

    An :class:`~repro.integrity.IntegrityError` subclass: garbled bytes
    reaching the codec *are* silent corruption the checksum layer missed
    (or predates), so readers surface them as a typed integrity failure
    rather than an anonymous crash (docs/INTEGRITY.md).
    """


def encode_record(values: Tuple) -> bytes:
    """Serialize a tuple of supported field values."""
    parts = [_COUNT.pack(len(values))]
    for value in values:
        # bool before int: bool is an int subclass.
        if value is None:
            parts.append(_TAG_NONE)
        elif isinstance(value, bool):
            parts.append(_TAG_BOOL + (b"\x01" if value else b"\x00"))
        elif isinstance(value, int):
            if -(2**63) <= value < 2**63:
                parts.append(_TAG_INT + _INT.pack(value))
            else:
                payload = str(value).encode("ascii")
                parts.append(_TAG_BIGINT + _LENGTH.pack(len(payload)) + payload)
        elif isinstance(value, float):
            parts.append(_TAG_FLOAT + _FLOAT.pack(value))
        elif isinstance(value, str):
            payload = value.encode("utf-8")
            parts.append(_TAG_STR + _LENGTH.pack(len(payload)) + payload)
        elif isinstance(value, bytes):
            parts.append(_TAG_BYTES + _LENGTH.pack(len(value)) + value)
        else:
            raise RecordCodecError(
                f"unsupported field type {type(value).__name__}"
            )
    return b"".join(parts)


def decode_record(raw: bytes) -> Tuple:
    """Inverse of :func:`encode_record`."""
    try:
        (count,) = _COUNT.unpack_from(raw, 0)
        position = _COUNT.size
        values = []
        for _ in range(count):
            tag = raw[position : position + 1]
            position += 1
            if tag == _TAG_NONE:
                values.append(None)
            elif tag == _TAG_BOOL:
                values.append(raw[position] != 0)
                position += 1
            elif tag == _TAG_INT:
                (value,) = _INT.unpack_from(raw, position)
                values.append(value)
                position += _INT.size
            elif tag == _TAG_BIGINT:
                (length,) = _LENGTH.unpack_from(raw, position)
                position += _LENGTH.size
                values.append(int(raw[position : position + length]))
                position += length
            elif tag == _TAG_FLOAT:
                (value,) = _FLOAT.unpack_from(raw, position)
                values.append(value)
                position += _FLOAT.size
            elif tag == _TAG_STR:
                (length,) = _LENGTH.unpack_from(raw, position)
                position += _LENGTH.size
                values.append(raw[position : position + length].decode("utf-8"))
                position += length
            elif tag == _TAG_BYTES:
                (length,) = _LENGTH.unpack_from(raw, position)
                position += _LENGTH.size
                values.append(raw[position : position + length])
                position += length
            else:
                raise RecordCodecError(f"unknown field tag {tag!r}")
        if position != len(raw):
            raise RecordCodecError(
                f"{len(raw) - position} trailing bytes after record"
            )
        return tuple(values)
    except (struct.error, IndexError, UnicodeDecodeError, ValueError) as exc:
        raise RecordCodecError(f"corrupt record: {exc}") from exc
