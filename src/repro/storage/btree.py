"""A crash-safe B+tree index over any recovery manager.

Like the heap layer, the index stores its nodes as manager pages, so
inserts/deletes are transactional and survive crashes under every one of
the paper's recovery mechanisms.  Keys and values are ``bytes``; keys
order lexicographically (callers wanting numeric order encode big-endian).

Design choices, kept deliberately simple and verifiable:

* classic B+tree — values only in leaves, leaves chained for range scans;
* nodes split when their serialized form outgrows the page budget (no
  fixed fan-out: variable-length keys just work);
* deletes are lazy — keys are removed but nodes are not rebalanced, which
  keeps the tree valid (search/scan correctness is unaffected) at the cost
  of space after heavy deletion; ``entries()`` and tests document this.

Example::

    from repro.storage import DistributedWalManager
    from repro.storage.btree import BTree

    manager = DistributedWalManager(n_logs=2)
    index = BTree(manager, file_id=7)
    tid = manager.begin()
    index.insert(tid, b"alice", b"page-4:slot-2")
    manager.commit(tid)
    assert index.search(None, b"alice") == b"page-4:slot-2"
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.integrity import RecordIntegrityError
from repro.storage.heap import REGION
from repro.storage.interface import RecoveryManager
from repro.storage.records import RecordCodecError, decode_record, encode_record

__all__ = ["BTree", "KeyTooLargeError"]

#: Sentinel page number for "no sibling".
_NO_PAGE = -1


class KeyTooLargeError(Exception):
    """A key/value pair exceeds what one node can ever hold."""


class _Node:
    """In-memory node; persisted via the record codec."""

    __slots__ = ("is_leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: List[bytes] = []
        self.values: List[bytes] = []       # leaves only
        self.children: List[int] = []       # internal only
        self.next_leaf: int = _NO_PAGE      # leaves only

    def encode(self) -> bytes:
        if self.is_leaf:
            flat: List = []
            for key, value in zip(self.keys, self.values):
                flat.extend((key, value))
            return encode_record((1, self.next_leaf, *flat))
        flat = [self.children[0]] if self.children else []
        for key, child in zip(self.keys, self.children[1:]):
            flat.extend((key, child))
        return encode_record((0, _NO_PAGE, *flat))

    @classmethod
    def decode(cls, raw: bytes) -> "_Node":
        fields = decode_record(raw)
        node = cls(is_leaf=bool(fields[0]))
        if node.is_leaf:
            node.next_leaf = fields[1]
            payload = fields[2:]
            node.keys = list(payload[0::2])
            node.values = list(payload[1::2])
        else:
            payload = fields[2:]
            if payload:
                node.children = [payload[0]]
                node.keys = list(payload[1::2])
                node.children += list(payload[2::2])
        return node


class BTree:
    """B+tree over a recovery manager's page space; see module docstring."""

    def __init__(
        self,
        manager: RecoveryManager,
        file_id: int,
        page_size: int = 4096,
    ):
        if file_id < 0:
            raise ValueError("file id must be non-negative")
        self.manager = manager
        self.file_id = file_id
        self.page_size = page_size

    # -- page plumbing -----------------------------------------------------------
    def _key_of(self, page_no: int) -> int:
        return self.file_id * REGION + page_no + 1

    def _meta_key(self) -> int:
        return self.file_id * REGION

    def _read_meta(self, tid) -> Tuple[int, int]:
        """(root page_no, allocated page count); (-1, 0) for a fresh tree."""
        raw = self._read(tid, self._meta_key())
        if not raw:
            return _NO_PAGE, 0
        try:
            root, count = decode_record(raw)
        except RecordCodecError as exc:
            raise RecordIntegrityError(
                f"btree:{self.file_id}", 0, f"meta page: {exc}"
            ) from exc
        return root, count

    def _write_meta(self, tid: int, root: int, count: int) -> None:
        self.manager.write(tid, self._meta_key(), encode_record((root, count)))

    def _read(self, tid, key: int) -> bytes:
        if tid is None:
            return self.manager.read_committed(key)
        return self.manager.read(tid, key)

    def _load(self, tid, page_no: int) -> _Node:
        raw = self._read(tid, self._key_of(page_no))
        try:
            return _Node.decode(raw)
        except RecordCodecError as exc:
            raise RecordIntegrityError(
                f"btree:{self.file_id}", page_no, str(exc)
            ) from exc

    def _store(self, tid: int, page_no: int, node: _Node) -> None:
        raw = node.encode()
        if len(raw) > self.page_size:  # pragma: no cover - guarded by splits
            raise AssertionError("node outgrew its page despite splitting")
        self.manager.write(tid, self._key_of(page_no), raw)

    def _fits(self, node: _Node) -> bool:
        return len(node.encode()) <= self.page_size

    # -- public API -----------------------------------------------------------------
    def insert(self, tid: int, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        self._check_pair(key, value)
        root, count = self._read_meta(tid)
        if root == _NO_PAGE:
            leaf = _Node(is_leaf=True)
            leaf.keys, leaf.values = [key], [value]
            self._store(tid, 0, leaf)
            self._write_meta(tid, 0, 1)
            return
        path = self._descend(tid, root, key)
        leaf_no = path[-1]
        leaf = self._load(tid, leaf_no)
        self._leaf_put(leaf, key, value)
        if self._fits(leaf):
            self._store(tid, leaf_no, leaf)
            return
        self._split_up(tid, path, leaf, root, count)

    def search(self, tid, key: bytes) -> Optional[bytes]:
        """The value for ``key``, or None.  ``tid=None`` reads committed."""
        root, _count = self._read_meta(tid)
        if root == _NO_PAGE:
            return None
        node = self._load(tid, self._descend(tid, root, key)[-1])
        for existing, value in zip(node.keys, node.values):
            if existing == key:
                return value
        return None

    def delete(self, tid: int, key: bytes) -> bool:
        """Remove ``key`` (lazy: no rebalancing); returns whether it existed."""
        root, _count = self._read_meta(tid)
        if root == _NO_PAGE:
            return False
        leaf_no = self._descend(tid, root, key)[-1]
        leaf = self._load(tid, leaf_no)
        for index, existing in enumerate(leaf.keys):
            if existing == key:
                del leaf.keys[index]
                del leaf.values[index]
                self._store(tid, leaf_no, leaf)
                return True
        return False

    def entries(
        self,
        tid=None,
        low: Optional[bytes] = None,
        high: Optional[bytes] = None,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """(key, value) pairs in key order, optionally within [low, high)."""
        root, _count = self._read_meta(tid)
        if root == _NO_PAGE:
            return
        node = self._load(tid, self._descend(tid, root, low or b"")[-1])
        while True:
            for key, value in zip(node.keys, node.values):
                if low is not None and key < low:
                    continue
                if high is not None and key >= high:
                    return
                yield key, value
            if node.next_leaf == _NO_PAGE:
                return
            node = self._load(tid, node.next_leaf)

    def __len__(self) -> int:
        return sum(1 for _ in self.entries(None))

    def height(self, tid=None) -> int:
        """Levels from root to leaf (0 for an empty tree)."""
        root, _count = self._read_meta(tid)
        if root == _NO_PAGE:
            return 0
        levels = 1
        node = self._load(tid, root)
        while not node.is_leaf:
            node = self._load(tid, node.children[0])
            levels += 1
        return levels

    # -- internals --------------------------------------------------------------------
    def _check_pair(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("keys and values are bytes")
        probe = _Node(is_leaf=True)
        probe.keys, probe.values = [key], [value]
        if not self._fits(probe):
            raise KeyTooLargeError(
                f"key+value of {len(key) + len(value)} bytes cannot fit a "
                f"{self.page_size}-byte node"
            )

    def _descend(self, tid, root: int, key: bytes) -> List[int]:
        """Page numbers from root to the leaf responsible for ``key``."""
        path = [root]
        node = self._load(tid, root)
        while not node.is_leaf:
            index = self._child_index(node, key)
            path.append(node.children[index])
            node = self._load(tid, path[-1])
        return path

    @staticmethod
    def _child_index(node: _Node, key: bytes) -> int:
        index = 0
        while index < len(node.keys) and key >= node.keys[index]:
            index += 1
        return index

    @staticmethod
    def _leaf_put(leaf: _Node, key: bytes, value: bytes) -> None:
        index = 0
        while index < len(leaf.keys) and leaf.keys[index] < key:
            index += 1
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value
        else:
            leaf.keys.insert(index, key)
            leaf.values.insert(index, value)

    def _split_up(self, tid: int, path: List[int], node: _Node, root: int, count: int):
        """Split overflowing nodes bottom-up along ``path``."""
        while True:
            page_no = path.pop()
            middle = len(node.keys) // 2
            sibling = _Node(is_leaf=node.is_leaf)
            if node.is_leaf:
                sibling.keys = node.keys[middle:]
                sibling.values = node.values[middle:]
                node.keys = node.keys[:middle]
                node.values = node.values[:middle]
                separator = sibling.keys[0]
                sibling.next_leaf = node.next_leaf
                node.next_leaf = count
            else:
                separator = node.keys[middle]
                sibling.keys = node.keys[middle + 1 :]
                sibling.children = node.children[middle + 1 :]
                node.keys = node.keys[:middle]
                node.children = node.children[: middle + 1]
            sibling_no = count
            count += 1
            self._store(tid, page_no, node)
            self._store(tid, sibling_no, sibling)

            if not path:
                new_root = _Node(is_leaf=False)
                new_root.keys = [separator]
                new_root.children = [page_no, sibling_no]
                root_no = count
                count += 1
                self._store(tid, root_no, new_root)
                self._write_meta(tid, root_no, count)
                return
            parent_no = path[-1]
            parent = self._load(tid, parent_no)
            index = self._child_index(parent, separator)
            parent.keys.insert(index, separator)
            parent.children.insert(index + 1, sibling_no)
            if self._fits(parent):
                self._store(tid, parent_no, parent)
                self._write_meta(tid, root, count)
                return
            node = parent