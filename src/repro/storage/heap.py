"""Crash-safe heap files and a small table facade over a recovery manager.

A :class:`HeapFile` stores variable-length records in slotted pages whose
bytes live in a :class:`~repro.storage.interface.RecoveryManager` — so
heap-file operations are transactional and crash-safe under *any* of the
paper's recovery mechanisms, interchangeably.  This is the layer a
database machine's query processors would sit on.

Page-number space: each file gets a sparse region of the manager's integer
page space (``file_id * REGION + page_no``); page 0 of the region is the
file's catalog page holding the allocated-page count.

:class:`Database` adds named tables and typed rows via the record codec::

    from repro.storage import DistributedWalManager
    from repro.storage.heap import Database

    db = Database(DistributedWalManager(n_logs=3))
    accounts = db.create_table("accounts")
    tid = db.begin()
    rid = accounts.insert(tid, ("alice", 100))
    db.commit(tid)
    db.crash(); db.recover()
    assert accounts.fetch_row(None, rid) == ("alice", 100)
"""

from __future__ import annotations

from typing import Dict, Iterator, NamedTuple, Optional, Tuple

from repro.integrity import RecordIntegrityError
from repro.storage.interface import RecoveryManager
from repro.storage.pages import PageFullError, SlottedPage
from repro.storage.records import RecordCodecError, decode_record, encode_record

__all__ = ["Database", "HeapFile", "RecordId", "Table"]

#: Page-number region per file (file_id * REGION + page_no).
REGION = 1_000_000


class RecordId(NamedTuple):
    """Stable address of a record: (page number within file, slot)."""

    page_no: int
    slot: int


class HeapFile:
    """Variable-length records in slotted pages, via a recovery manager."""

    def __init__(
        self,
        manager: RecoveryManager,
        file_id: int,
        page_size: int = 4096,
    ):
        if file_id < 0:
            raise ValueError("file id must be non-negative")
        self.manager = manager
        self.file_id = file_id
        self.page_size = page_size

    # -- page plumbing -----------------------------------------------------------
    def _page_key(self, page_no: int) -> int:
        if not 0 <= page_no < REGION - 1:
            raise ValueError(f"page number {page_no} outside file region")
        return self.file_id * REGION + page_no + 1  # +1: key 0 is the catalog

    def _catalog_key(self) -> int:
        return self.file_id * REGION

    def _read_page(self, tid: Optional[int], page_no: int) -> SlottedPage:
        raw = self._read(tid, self._page_key(page_no))
        return SlottedPage.decode(raw, self.page_size)

    def _write_page(self, tid: int, page_no: int, page: SlottedPage) -> None:
        self.manager.write(tid, self._page_key(page_no), page.encode())

    def _read(self, tid: Optional[int], key: int) -> bytes:
        if tid is None:
            return self.manager.read_committed(key)
        return self.manager.read(tid, key)

    def n_pages(self, tid: Optional[int] = None) -> int:
        """Allocated data pages (from the catalog page)."""
        raw = self._read(tid, self._catalog_key())
        return int.from_bytes(raw, "big") if raw else 0

    def _set_n_pages(self, tid: int, count: int) -> None:
        self.manager.write(tid, self._catalog_key(), count.to_bytes(4, "big"))

    # -- record operations ------------------------------------------------------------
    def insert(self, tid: int, record: bytes) -> RecordId:
        """Append a record (first-fit over existing pages, else grow)."""
        if len(record) > SlottedPage(self.page_size).free_space():
            raise PageFullError(
                f"{len(record)}-byte record can never fit a "
                f"{self.page_size}-byte page"
            )
        count = self.n_pages(tid)
        for page_no in range(count):
            page = self._read_page(tid, page_no)
            if page.fits(record):
                slot = page.insert(record)
                self._write_page(tid, page_no, page)
                return RecordId(page_no, slot)
        page = SlottedPage(self.page_size)
        slot = page.insert(record)
        self._write_page(tid, count, page)
        self._set_n_pages(tid, count + 1)
        return RecordId(count, slot)

    def fetch(self, tid: Optional[int], rid: RecordId) -> Optional[bytes]:
        """The record at ``rid`` (None if deleted).  ``tid=None`` reads the
        committed state (outside any transaction)."""
        if rid.page_no >= self.n_pages(tid):
            return None
        return self._read_page(tid, rid.page_no).get(rid.slot)

    def delete(self, tid: int, rid: RecordId) -> bool:
        if rid.page_no >= self.n_pages(tid):
            return False
        page = self._read_page(tid, rid.page_no)
        if not page.delete(rid.slot):
            return False
        self._write_page(tid, rid.page_no, page)
        return True

    def update(self, tid: int, rid: RecordId, record: bytes) -> RecordId:
        """Replace a record in place; relocates if it no longer fits."""
        page = self._read_page(tid, rid.page_no)
        if page.get(rid.slot) is None:
            raise KeyError(f"no record at {rid}")
        try:
            page.update(rid.slot, record)
        except PageFullError:
            page.delete(rid.slot)
            self._write_page(tid, rid.page_no, page)
            return self.insert(tid, record)
        self._write_page(tid, rid.page_no, page)
        return rid

    def scan(self, tid: Optional[int]) -> Iterator[Tuple[RecordId, bytes]]:
        """All live records in (page, slot) order."""
        for page_no in range(self.n_pages(tid)):
            page = self._read_page(tid, page_no)
            for slot, record in page.records():
                yield RecordId(page_no, slot), record

    def __len__(self) -> int:
        return sum(1 for _ in self.scan(None))


class Table:
    """Typed rows over a heap file (via the record codec)."""

    def __init__(self, heap: HeapFile, name: str):
        self.heap = heap
        self.name = name

    def insert(self, tid: int, row: Tuple) -> RecordId:
        return self.heap.insert(tid, encode_record(row))

    def fetch_row(self, tid: Optional[int], rid: RecordId) -> Optional[Tuple]:
        raw = self.heap.fetch(tid, rid)
        if raw is None:
            return None
        return self._decode_row(rid, raw)

    def update(self, tid: int, rid: RecordId, row: Tuple) -> RecordId:
        return self.heap.update(tid, rid, encode_record(row))

    def delete(self, tid: int, rid: RecordId) -> bool:
        return self.heap.delete(tid, rid)

    def rows(self, tid: Optional[int] = None) -> Iterator[Tuple[RecordId, Tuple]]:
        for rid, raw in self.heap.scan(tid):
            yield rid, self._decode_row(rid, raw)

    def _decode_row(self, rid: RecordId, raw: bytes) -> Tuple:
        """Decode, surfacing garbled bytes as a located integrity failure."""
        try:
            return decode_record(raw)
        except RecordCodecError as exc:
            raise RecordIntegrityError(
                f"table:{self.name}:page{rid.page_no}", rid.slot, str(exc)
            ) from exc

    def select(self, predicate, tid: Optional[int] = None):
        """Rows satisfying ``predicate(row)`` — a full table scan."""
        for rid, row in self.rows(tid):
            if predicate(row):
                yield rid, row

    def __len__(self) -> int:
        return len(self.heap)


class Database:
    """Named tables over one recovery manager.

    The table catalog itself lives in heap file 0, so table definitions are
    transactional and survive crashes like everything else.
    """

    _CATALOG_FILE = 0

    def __init__(self, manager: RecoveryManager, page_size: int = 4096):
        self.manager = manager
        self.page_size = page_size
        self._catalog = Table(
            HeapFile(manager, self._CATALOG_FILE, page_size), "__catalog__"
        )
        self._tables: Dict[str, Table] = {}

    # -- transaction pass-through ---------------------------------------------------
    def begin(self) -> int:
        return self.manager.begin()

    def commit(self, tid: int) -> None:
        self.manager.commit(tid)

    def abort(self, tid: int) -> None:
        self.manager.abort(tid)

    def crash(self) -> None:
        self.manager.crash()
        self._tables.clear()  # volatile handle cache

    def recover(self) -> None:
        self.manager.recover()

    # -- catalog -----------------------------------------------------------------------
    def _catalog_entries(self, tid: Optional[int]) -> Dict[str, int]:
        return {name: fid for _rid, (name, fid) in self._catalog.rows(tid)}

    def create_table(self, name: str, tid: Optional[int] = None) -> Table:
        """Create (and catalog) a table; auto-commits unless ``tid`` given."""
        own_txn = tid is None
        if own_txn:
            tid = self.begin()
        entries = self._catalog_entries(tid)
        if name in entries:
            if own_txn:
                self.abort(tid)
            raise ValueError(f"table {name!r} already exists")
        file_id = max(entries.values(), default=self._CATALOG_FILE) + 1
        self._catalog.insert(tid, (name, file_id))
        if own_txn:
            self.commit(tid)
        table = Table(HeapFile(self.manager, file_id, self.page_size), name)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Handle for an existing table (rebuilt from the catalog)."""
        cached = self._tables.get(name)
        if cached is not None:
            return cached
        entries = self._catalog_entries(None)
        if name not in entries:
            raise KeyError(f"no table {name!r}")
        table = Table(HeapFile(self.manager, entries[name], self.page_size), name)
        self._tables[name] = table
        return table

    def tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self._catalog_entries(None)))
