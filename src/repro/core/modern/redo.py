"""Timed redo-only WAL with ELR (Sauer & Härder) on the 1985 machine.

Two behavioural changes against the parallel-logging parent, both priced
by the simulator:

* **No-steal write gate.**  :meth:`RedoOnlyWalArchitecture.writeback`
  never writes the updated page home — it parks the page and releases
  the cache frame immediately (the durable copy lives in the log
  stream), so updated frames stop blocking the buffer pool on WAL
  barriers.  The home writes happen in :meth:`on_commit`, after the
  transaction's fragments are durable: uncommitted pages never reach
  the data disks, and an abort simply drops the parked pages.

* **Early lock release.**  Commit releases the transaction's page locks
  as soon as its fragments have *landed* at the log processors — the
  commit record then has its place in the sequential log stream, so any
  dependent committer's force also covers it (the single-log ordering
  argument; the functional twin in :mod:`repro.storage.modern.redo`
  proves it against the crashtest oracle).  Waiters unblock before the
  forces and home writes run, marked by a ``lock.release`` instant.

Restart needs no undo pass — priced in ``repro.analysis.restart`` as
``undo_ms = 0``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.logging.architecture import (
    LoggingConfig,
    ParallelLoggingArchitecture,
)
from repro.sim.monitor import CounterStat

__all__ = ["RedoOnlyWalArchitecture"]


class RedoOnlyWalArchitecture(ParallelLoggingArchitecture):
    """No-steal redo-only WAL with early lock release; see module docstring."""

    name = "redo-wal"

    def __init__(self, config: Optional[LoggingConfig] = None):
        super().__init__(config)
        self.writes_gated = CounterStat("redo.writes_gated")
        self.early_lock_releases = CounterStat("redo.early_lock_releases")

    # -- durability -----------------------------------------------------------------
    def _gated_of(self, txn) -> List[int]:
        return self.machine.runtime(txn).scratch.setdefault("redo.gated", [])

    def writeback(self, txn, page):
        """No-steal: park the page; it goes home at commit (or never)."""
        self._gated_of(txn).append(page)
        self.writes_gated.increment()
        self.machine.cache.release(1)
        return
        yield  # pragma: no cover - hook stays a generator

    def on_commit(self, txn):
        """ELR, then force, then stream the parked pages home."""
        machine = self.machine
        fragments = self._fragments_of(txn)
        in_flight = [
            fragment.delivered
            for fragment in fragments.values()
            if not fragment.delivered.triggered
        ]
        if in_flight:
            yield machine.env.all_of(in_flight)
        # Early lock release: every fragment has landed, so the commit
        # record's position in the log stream is fixed — dependent
        # transactions may take the locks before the force completes.
        machine.locks.release_all(txn.tid)
        machine._tinstant("lock.release", tid=txn.tid, early=True)
        self.early_lock_releases.increment()
        for lp_index in sorted(txn.recovery_state.get("log_processors", ())):
            if not self.log_processors[lp_index].alive:
                continue
            if self.config_log.group_commit_window_ms is None:
                self.log_processors[lp_index].force()
            else:
                yield from self._group_force(lp_index)
        pending = [
            fragment.durable
            for fragment in fragments.values()
            if not fragment.durable.triggered
        ]
        if pending:
            yield machine.env.all_of(pending)
        # Home writes only now: no uncommitted page ever reaches disk.
        for page in self._gated_of(txn):
            span = machine._tspan("writeback", tid=txn.tid, page=page)
            disk_idx, addr = self.write_address(txn, page)
            if machine.wal_monitor is not None:
                machine.wal_monitor.note_flush(page)
            request = machine.data_disks[disk_idx].write([addr], tag="writeback")
            yield request.done
            machine.note_page_written(txn, page=page)
            machine._tend(span)
        yield from machine.wait_writebacks(txn)

    def on_abort(self, txn):
        """Drop the parked pages: losers never touch the data disks."""
        gated = self._gated_of(txn)
        del gated[:]
        yield from super().on_abort(txn)

    # -- reporting -----------------------------------------------------------------
    def extra_counters(self) -> Dict[str, int]:
        out = super().extra_counters()
        out["writes_gated"] = self.writes_gated.count
        out["early_lock_releases"] = self.early_lock_releases.count
        return out

    def describe(self) -> str:
        cfg = self.config_log
        return (
            f"redo-wal[no-steal, elr, {cfg.n_log_processors} lp, "
            f"{cfg.routing.value}]"
        )
