"""Timed wrappers for the modern recovery designs (``repro.core.modern``).

The functional managers in :mod:`repro.storage.modern` prove the two
modern designs *correct*; these architectures price them on the paper's
simulated multiprocessor so Table 12 and the ablations can judge them
against the 1985 field:

* :class:`CommandLoggingArchitecture` — parallel logging shipping
  compact command fragments, with the adaptive per-transaction fallback
  to physical records for high-fan-in transactions (Yao et al.).
* :class:`RedoOnlyWalArchitecture` — no-steal buffering (updated pages
  go home only at commit) with early lock release the moment the commit
  record joins the log stream (Sauer & Härder).

Both subclass :class:`repro.core.logging.ParallelLoggingArchitecture`,
inheriting its log processors, shipping paths, failover, and fuzzy
checkpointing unchanged.
"""

from repro.core.modern.command import CommandLoggingArchitecture
from repro.core.modern.redo import RedoOnlyWalArchitecture

__all__ = ["CommandLoggingArchitecture", "RedoOnlyWalArchitecture"]
