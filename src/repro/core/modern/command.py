"""Timed adaptive command logging (Yao et al.) on the 1985 machine.

Identical plumbing to the parallel-logging architecture — the same log
processors, shipping paths, and failover — but fragments default to
compact *command* records (a fraction of a logical fragment's bytes,
and far less QP time than copying page images), and the adaptive knob
switches individual transactions to physical records when their write
fan-in is high: a transaction touching many pages would serialize wide
stretches of the recovery dependency graph if replayed as commands, so
it ships ARIES-style page images instead and replays independently.

The write set of a transaction is declared at ``begin`` in this
simulator (the paper's scheduler needs it for page-level locking), so
the fan-in decision is made once per transaction in :meth:`on_begin` —
no mid-flight record-format changes.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.logging.architecture import (
    LoggingConfig,
    LogMode,
    ParallelLoggingArchitecture,
)
from repro.sim.monitor import CounterStat

__all__ = ["COMMAND_FRAGMENT_BYTES", "DEFAULT_PHYSICAL_FANIN", "CommandLoggingArchitecture"]

#: A command record (operation id + arguments) is far smaller than the
#: paper's 600-byte logical fragment; ~20 records fill a 4 KB log page.
COMMAND_FRAGMENT_BYTES = 200

#: Transactions writing at least this many pages fall back to physical
#: records (the dependency-graph cost of command replay outweighs the
#: collection savings — Yao et al.'s hybrid rule).
DEFAULT_PHYSICAL_FANIN = 16


class CommandLoggingArchitecture(ParallelLoggingArchitecture):
    """Adaptive command/physical logging; see module docstring."""

    name = "command-logging"

    def __init__(
        self,
        config: Optional[LoggingConfig] = None,
        physical_fanin: int = DEFAULT_PHYSICAL_FANIN,
    ):
        if config is None:
            config = LoggingConfig(fragment_bytes=COMMAND_FRAGMENT_BYTES)
        super().__init__(config)
        if physical_fanin < 1:
            raise ValueError("physical_fanin must be positive")
        self.physical_fanin = physical_fanin
        self._physical_tids: Set[int] = set()
        self.command_fragments = CounterStat("command.fragments")
        self.physical_fragments = CounterStat("command.physical_fragments")
        self.adaptive_fallbacks = CounterStat("command.adaptive_fallbacks")

    # -- adaptive record mode -------------------------------------------------
    def on_begin(self, txn):
        # A deadlock-victim restart re-begins the same tid; count the
        # fallback decision only once per transaction.
        if (
            len(txn.write_pages) >= self.physical_fanin
            and txn.tid not in self._physical_tids
        ):
            self._physical_tids.add(txn.tid)
            self.adaptive_fallbacks.increment()
        return (yield from super().on_begin(txn))

    def _fragment_mode(self, tid: int) -> LogMode:
        if tid in self._physical_tids:
            return LogMode.PHYSICAL
        return self.config_log.mode

    def on_page_updated(self, txn, page, qp_index: int):
        if self._fragment_mode(txn.tid) is LogMode.PHYSICAL:
            self.physical_fragments.increment()
        else:
            self.command_fragments.increment()
        return (yield from super().on_page_updated(txn, page, qp_index))

    def on_commit(self, txn):
        yield from super().on_commit(txn)
        self._physical_tids.discard(txn.tid)

    def on_abort(self, txn):
        yield from super().on_abort(txn)
        self._physical_tids.discard(txn.tid)

    # -- reporting -----------------------------------------------------------------
    def extra_counters(self) -> Dict[str, int]:
        out = super().extra_counters()
        out["command_fragments"] = self.command_fragments.count
        out["physical_fragments"] = self.physical_fragments.count
        out["adaptive_fallbacks"] = self.adaptive_fallbacks.count
        return out

    def describe(self) -> str:
        cfg = self.config_log
        return (
            f"command-logging[{cfg.n_log_processors} lp, "
            f"{cfg.fragment_bytes} B records, fanin>={self.physical_fanin} "
            f"-> physical]"
        )
