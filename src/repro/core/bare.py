"""The bare machine: no recovery data is collected.

This is the paper's baseline column in every table.  All behaviour lives in
:class:`repro.core.base.RecoveryArchitecture`; this subclass exists so the
baseline has an explicit, importable name.
"""

from __future__ import annotations

from repro.core.base import RecoveryArchitecture

__all__ = ["BareArchitecture"]


class BareArchitecture(RecoveryArchitecture):
    """No recovery: updated pages stream home as soon as they are produced."""

    name = "bare"
