"""The hook interface every recovery architecture implements.

The database machine drives transactions through a fixed pipeline; an
architecture customizes the recovery-relevant steps:

1. ``on_begin`` — per-transaction setup (e.g. read the D-file pages).
2. ``read_sequence`` — the stream of work items for the transaction's
   reference string (a differential-file architecture interleaves A-file
   reads here).
3. ``before_page_read`` — indirection before a data page can be fetched
   (page-table lookup for shadow paging).
4. ``read_addresses`` — where the page physically lives (version selection
   fetches two adjacent blocks; scrambled shadow placement remaps).
5. ``page_cpu_ms`` — query-processor time for the page, including recovery
   CPU overheads (log-fragment construction, set-difference, ...).
6. ``on_page_updated`` — runs *while the query processor is held* right
   after an update (shipping a log fragment to a log processor).
7. ``writeback`` — the full path that makes an updated page durable; owns
   releasing the page's cache frame.
8. ``on_commit`` — commit-time recovery work (force the log, update the
   page table, overwrite shadows from the scratch ring, append A/D pages).
9. ``on_abort`` — cleanup when the scheduler aborts the transaction.

The base class implements the *bare machine*: no recovery data collected,
updated pages written home in place as soon as they are produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Tuple, Union

from repro.hardware.disk import DiskAddress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.machine.machine import DatabaseMachine
    from repro.workload.transaction import Transaction

__all__ = ["AuxRead", "DataPage", "RecoveryArchitecture", "WorkItem"]


@dataclass(frozen=True)
class DataPage:
    """A reference-string page: locked, read, processed, maybe updated."""

    page: int


@dataclass(frozen=True)
class AuxRead:
    """An auxiliary read (e.g. an A-file page): frames + I/O + optional CPU,
    no locking and no update path."""

    disk_idx: int
    addresses: Tuple[DiskAddress, ...]
    cpu_ms: float = 0.0
    tag: str = "aux"


WorkItem = Union[DataPage, AuxRead]


class RecoveryArchitecture:
    """Base architecture = the bare machine (no recovery)."""

    name = "bare"

    def __init__(self) -> None:
        self.machine: "DatabaseMachine" = None  # set by attach()
        #: Checkpoints completed so far (see :meth:`take_checkpoint`).
        self.checkpoints_taken = 0

    # -- wiring -----------------------------------------------------------------
    def attach(self, machine: "DatabaseMachine") -> None:
        """Bind to a machine; create private processors/disks here."""
        self.machine = machine

    # -- workload shaping ---------------------------------------------------------
    def read_sequence(self, txn: "Transaction") -> Iterable[WorkItem]:
        """Work items processed under the transaction's read-ahead window."""
        return (DataPage(p) for p in txn.read_pages)

    # -- per-page hooks (generators yield simulation events) -----------------------
    def on_begin(self, txn: "Transaction"):
        """Per-transaction setup, before any page is read."""
        return
        yield  # pragma: no cover

    def before_page_read(self, txn: "Transaction", page: int):
        """Indirection needed before the data page can be located."""
        return
        yield  # pragma: no cover

    def read_addresses(
        self, txn: "Transaction", page: int
    ) -> Tuple[int, Tuple[DiskAddress, ...]]:
        """Disk index and physical block(s) to fetch for ``page``."""
        disk_idx, addr = self.machine.locate(page)
        return disk_idx, (addr,)

    def write_address(
        self, txn: "Transaction", page: int
    ) -> Tuple[int, DiskAddress]:
        """Where the updated page is written back (default: in place)."""
        return self.machine.locate(page)

    def page_cpu_ms(self, txn: "Transaction", page: int, is_update: bool) -> float:
        """Query-processor time to process ``page``."""
        cfg = self.machine.config
        instructions = cfg.cost.scan_page
        if is_update:
            instructions += cfg.cost.update_page
        return cfg.cpu.ms(instructions)

    def on_page_updated(self, txn: "Transaction", page: int, qp_index: int):
        """Runs holding the query processor, right after the update."""
        return
        yield  # pragma: no cover

    # -- durability path ------------------------------------------------------------
    def writeback(self, txn: "Transaction", page: int):
        """Make the updated page durable; must release its cache frame."""
        machine = self.machine
        disk_idx, addr = self.write_address(txn, page)
        request = machine.data_disks[disk_idx].write([addr], tag="writeback")
        yield request.done
        machine.note_page_written(txn, page=page)
        machine.cache.release(1)

    def on_commit(self, txn: "Transaction"):
        """Commit-time recovery work; default waits for all write-backs."""
        yield from self.machine.wait_writebacks(txn)

    def on_abort(self, txn: "Transaction"):
        """Recovery cleanup after a scheduler-initiated abort."""
        return
        yield  # pragma: no cover

    def take_checkpoint(self):
        """Make the architecture's recovery data restart-bounded (generator).

        Driven periodically by :func:`repro.checkpoint.sim_checkpointer`
        (or an architecture's own trigger); implementations force buffered
        recovery data and write whatever durable record restart starts
        from.  The bare machine keeps no recovery data, so its checkpoint
        is only the counter.
        """
        self.checkpoints_taken += 1
        if self.machine is not None:
            self.machine._tinstant("checkpoint", kind="noop")
        return
        yield  # pragma: no cover

    # -- reporting --------------------------------------------------------------------
    def extra_utilizations(self, t_end: float) -> Dict[str, float]:
        return {}

    def extra_counters(self) -> Dict[str, int]:
        return {}

    def extra_averages(self, t_end: float) -> Dict[str, float]:
        return {}

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
