"""The "thru page-table" shadow architecture (paper Section 3.2.1).

Every data-page access first resolves the page's disk address through the
page table; the lookup is pipelined with data-page processing (the machine's
read-ahead window keeps the PT disk and the data disks concurrently busy,
which is the paper's explanation for the modest degradation).  At commit the
updated pages' PT entries are rewritten: PT pages evicted from the buffer
must be reread — the buffer-size effect of Table 6.

The *clustered* configuration assumes logically adjacent pages stay
physically clustered within a cylinder (the paper's Section 4.2.1
assumption); the *scrambled* configuration drops that assumption and maps
data pages through a pseudo-random permutation (Section 4.2.3 / Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.core.base import RecoveryArchitecture
from repro.core.shadow.page_table import PageTableSubsystem
from repro.hardware.params import IBM_3350, DiskParams
from repro.hardware.placement import ScrambledPlacement

__all__ = ["PageTableShadowArchitecture", "ShadowConfig"]


@dataclass(frozen=True)
class ShadowConfig:
    """Parameters of the thru-page-table shadow architecture."""

    n_pt_processors: int = 1
    pt_buffer_pages: int = 10
    #: ">1000 page-table entries" fit a 4 KB PT page (paper Section 4.2.1).
    entries_per_pt_page: int = 1024
    #: Whether logically adjacent pages stay physically clustered.
    clustered: bool = True
    pt_disk: DiskParams = IBM_3350
    #: Distance between consecutive PT pages on a PT disk (the PT disk also
    #: carries other relations' tables and free-block maps, so PT pages are
    #: not packed; calibrates PT access time to the paper's Table 4).
    pt_stride_pages: int = 8

    def __post_init__(self) -> None:
        if self.n_pt_processors < 1:
            raise ValueError("need at least one page-table processor")
        if self.pt_buffer_pages < 1:
            raise ValueError("page-table buffer needs at least one page")

    def with_overrides(self, **kwargs) -> "ShadowConfig":
        return replace(self, **kwargs)


class PageTableShadowArchitecture(RecoveryArchitecture):
    """Shadow paging with dedicated page-table processors and disks."""

    name = "shadow-pt"

    def __init__(self, config: Optional[ShadowConfig] = None):
        super().__init__()
        self.config_shadow = config or ShadowConfig()
        self.page_table: Optional[PageTableSubsystem] = None

    def attach(self, machine) -> None:
        super().attach(machine)
        cfg = self.config_shadow
        if not cfg.clustered:
            machine.placement = ScrambledPlacement(
                machine.config.disk,
                machine.config.n_data_disks,
                machine.config.db_pages,
            )
        self.page_table = PageTableSubsystem(
            machine.env,
            n_processors=cfg.n_pt_processors,
            buffer_pages=cfg.pt_buffer_pages,
            entries_per_page=cfg.entries_per_pt_page,
            db_pages=machine.config.db_pages,
            disk_params=cfg.pt_disk,
            streams=machine.streams,
            stride_pages=cfg.pt_stride_pages,
        )

    # -- indirection ------------------------------------------------------------
    def before_page_read(self, txn, page: int):
        """Resolve the page's address through the page table."""
        yield from self.page_table.lookup(page)

    def page_cpu_ms(self, txn, page, is_update: bool) -> float:
        cfg = self.machine.config
        return super().page_cpu_ms(txn, page, is_update) + cfg.cpu.ms(
            cfg.cost.pt_lookup
        )

    # -- commit -----------------------------------------------------------------
    def on_commit(self, txn):
        """New copies are already on disk; install them in the page table."""
        yield from self.machine.wait_writebacks(txn)
        if txn.write_pages:
            span = self.machine._tspan(
                "pt.update", tid=txn.tid, pages=len(txn.write_pages)
            )
            monitor = self.machine.shadow_monitor
            for page in sorted(txn.write_pages):
                if monitor is not None:
                    monitor.note_install(page)
                yield from self.page_table.update_entry(page)
            self.machine._tend(span)
            fspan = self.machine._tspan("pt.flush", tid=txn.tid)
            events = self.page_table.flush(txn.write_pages)
            if events:
                yield self.machine.env.all_of(events)
            self.machine._tend(fspan)

    # -- checkpoint ---------------------------------------------------------------
    def take_checkpoint(self):
        """Snapshot checkpoint: push every dirty PT page to the PT disks.

        Once the buffered page-table updates are durable the committed
        root *is* the checkpoint — restart reads it back and runs.
        """
        span = self.machine._tspan("checkpoint", kind="snapshot")
        events = self.page_table.flush_all()
        if events:
            yield self.machine.env.all_of(events)
        self.checkpoints_taken += 1
        self.machine._tend(span)

    # -- reporting ----------------------------------------------------------------
    def extra_utilizations(self, t_end: float) -> Dict[str, float]:
        return self.page_table.utilizations(t_end)

    def extra_counters(self) -> Dict[str, int]:
        return self.page_table.counters()

    def describe(self) -> str:
        cfg = self.config_shadow
        layout = "clustered" if cfg.clustered else "scrambled"
        return (
            f"shadow-pt[{cfg.n_pt_processors} ptp, "
            f"buffer={cfg.pt_buffer_pages}, {layout}]"
        )
