"""Version selection (paper Section 3.2.2.1).

Indirection is avoided by keeping the current and shadow copies of every
page in two physically adjacent disk blocks.  A read fetches *both* blocks
(cheap, because the second block follows the first under the heads) and a
timestamp-based version-selection step picks the current copy.  A write
goes to the non-current block of the pair, so physical clustering is
preserved and no page table exists — at the price of doubling disk space
and lengthening every read transfer, which is why the paper dismisses it
for an I/O-bandwidth-bound machine (Section 4.2.5).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.base import RecoveryArchitecture
from repro.hardware.disk import DiskAddress
from repro.hardware.placement import Placement

__all__ = ["VersionSelectionArchitecture", "VersionPairPlacement"]


class VersionPairPlacement(Placement):
    """Each logical page owns two adjacent physical blocks."""

    def __init__(self, params, n_disks: int, db_pages: int):
        super().__init__(params, n_disks, db_pages)
        needed = 2 * self.pages_per_disk
        if needed > params.capacity_pages:
            raise ValueError(
                f"version pairs need {needed} pages per disk but drives hold "
                f"{params.capacity_pages}; halve db_pages (disk space doubles "
                "under version selection)"
            )

    def _local_index(self, local: int) -> int:
        return 2 * local

    def pair(self, page: int) -> Tuple[int, Tuple[DiskAddress, DiskAddress]]:
        """Disk index and the (current-candidate, shadow-candidate) blocks."""
        disk, first = self.locate(page)
        linear = first.linear(self.params)
        second = DiskAddress.from_linear(linear + 1, self.params)
        if second.cylinder != first.cylinder:
            # Odd pages-per-cylinder geometry: keep the pair on one cylinder
            # so parallel-access requests stay single-cylinder.
            second = DiskAddress.from_linear(linear - 1, self.params)
        return disk, (first, second)


class VersionSelectionArchitecture(RecoveryArchitecture):
    """Adjacent-block versions chosen by timestamp on every read."""

    name = "version-selection"

    def attach(self, machine) -> None:
        super().attach(machine)
        self._pairs = VersionPairPlacement(
            machine.config.disk,
            machine.config.n_data_disks,
            machine.config.db_pages,
        )
        machine.placement = self._pairs

    def read_addresses(self, txn, page: int):
        """Fetch both versions; the second block streams after the first."""
        disk_idx, pair = self._pairs.pair(page)
        return disk_idx, pair

    def write_address(self, txn, page: int):
        """The new version goes to the other block of the pair (same cost)."""
        disk_idx, (first, _second) = self._pairs.pair(page)
        return disk_idx, first

    def page_cpu_ms(self, txn, page, is_update: bool) -> float:
        cfg = self.machine.config
        return super().page_cpu_ms(txn, page, is_update) + cfg.cpu.ms(
            cfg.cost.version_select
        )

    def describe(self) -> str:
        return "version-selection"
