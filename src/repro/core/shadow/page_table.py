"""The page-table subsystem: PT processors, PT disks, and the LRU buffer.

Page tables live on dedicated page-table disks served by page-table
processors under back-end-controller control (paper Section 3.2.1).  PT
pages are striped across the PT processors; a small shared LRU buffer in
the controller's memory holds recently used PT pages.  The PT file is tiny
(one entry per data page, >1000 entries per 4 KB page), so PT-disk seeks
are short — which is exactly why one PT disk can almost keep up with two
data disks in the paper's Table 5.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.hardware.disk import ConventionalDisk, Disk, DiskAddress
from repro.hardware.params import DiskParams
from repro.sim.core import Environment, Event
from repro.sim.monitor import CounterStat

__all__ = ["PageTableSubsystem"]


class PageTableSubsystem:
    """Shared page-table buffer backed by one or more PT disks."""

    def __init__(
        self,
        env: Environment,
        n_processors: int,
        buffer_pages: int,
        entries_per_page: int,
        db_pages: int,
        disk_params: DiskParams,
        streams,
        stride_pages: int = 8,
    ):
        if n_processors < 1:
            raise ValueError("need at least one page-table processor")
        if buffer_pages < 1:
            raise ValueError("page-table buffer needs at least one page")
        if stride_pages < 1:
            raise ValueError("stride must be at least one page")
        self.env = env
        self.entries_per_page = entries_per_page
        self.n_pt_pages = -(-db_pages // entries_per_page)
        self.buffer_pages = buffer_pages
        self.stride_pages = stride_pages
        self.disks: List[Disk] = [
            ConventionalDisk(
                env,
                disk_params,
                name=f"pt{i}",
                rng=streams.stream(f"disk.pt{i}"),
            )
            for i in range(n_processors)
        ]
        #: pt_page -> dirty flag; insertion order is LRU order.
        self._buffer: "OrderedDict[int, bool]" = OrderedDict()
        #: pt_page -> event fired when an in-flight read completes.
        self._loading: Dict[int, Event] = {}
        self.hits = CounterStat("pt.hits")
        self.misses = CounterStat("pt.misses")
        self.reads = CounterStat("pt.reads")
        self.writes = CounterStat("pt.writes")
        self.rereads = CounterStat("pt.rereads")

    # -- geometry -----------------------------------------------------------
    def pt_page_of(self, data_page: int) -> int:
        """Which PT page holds the entry for ``data_page``."""
        return data_page // self.entries_per_page

    def _locate(self, pt_page: int):
        """PT disk and address of ``pt_page`` (striped across PT disks).

        PT pages sit ``stride_pages`` apart rather than packed: a page-table
        disk serves the page tables of *every* relation plus free-block
        maps, so successive accesses pay short seeks and rotational
        latency.  This is what makes a single PT disk the bottleneck in
        the paper's Table 5 (PT-disk utilization 1.00 while the data disks
        drop to 0.86) — a packed 100-page PT file would never saturate.
        The default stride of 8 pages yields ~21 ms per PT access, the
        figure the paper's Table 4 numbers imply.
        """
        disk = self.disks[pt_page % len(self.disks)]
        local = pt_page // len(self.disks)
        linear = (local * self.stride_pages) % disk.params.capacity_pages
        return disk, DiskAddress.from_linear(linear, disk.params)

    # -- lookups ---------------------------------------------------------------
    def lookup(self, data_page: int):
        """Generator: ensure the PT page for ``data_page`` is buffered."""
        pt_page = self.pt_page_of(data_page)
        if pt_page in self._buffer:
            self.hits.increment()
            self._buffer.move_to_end(pt_page)
            return
        loading = self._loading.get(pt_page)
        if loading is not None:
            self.hits.increment()  # piggybacks on the in-flight read
            yield loading
            return
        self.misses.increment()
        yield from self._fetch(pt_page)

    def update_entry(self, data_page: int):
        """Generator: mark the entry's PT page dirty, rereading if evicted.

        Called at commit for each updated data page.  The paper's Table 6
        commentary: with a small buffer, PT pages must be *reread for
        updating due to the buffer-size constraint at commit time*.
        """
        pt_page = self.pt_page_of(data_page)
        if pt_page not in self._buffer:
            loading = self._loading.get(pt_page)
            if loading is not None:
                yield loading
            else:
                self.rereads.increment()
                yield from self._fetch(pt_page)
        if pt_page in self._buffer:
            self._buffer[pt_page] = True
            self._buffer.move_to_end(pt_page)

    def flush_all(self) -> List[Event]:
        """Write out every dirty buffered PT page (checkpoint flush)."""
        events = []
        for pt_page in list(self._buffer):
            if self._buffer[pt_page]:
                self._buffer[pt_page] = False
                events.append(self._write(pt_page))
        return events

    def flush(self, data_pages) -> List[Event]:
        """Write out the dirty PT pages covering ``data_pages``.

        Returns the write-completion events (the new page-table locations of
        the shadow mechanism; timing-equivalent to writing in place).
        """
        pt_pages = sorted({self.pt_page_of(p) for p in data_pages})
        events = []
        for pt_page in pt_pages:
            if self._buffer.get(pt_page):
                self._buffer[pt_page] = False
                events.append(self._write(pt_page))
        return events

    # -- internals -----------------------------------------------------------------
    def _fetch(self, pt_page: int):
        event = self.env.event()
        self._loading[pt_page] = event
        disk, addr = self._locate(pt_page)
        request = disk.read([addr], tag="pt")
        self.reads.increment()
        yield request.done
        del self._loading[pt_page]
        yield from self._insert(pt_page)
        if not event.triggered:
            event.succeed()

    def _insert(self, pt_page: int):
        while len(self._buffer) >= self.buffer_pages:
            victim, dirty = self._buffer.popitem(last=False)
            if dirty:
                yield self._write(victim)
        self._buffer[pt_page] = False

    def _write(self, pt_page: int) -> Event:
        disk, addr = self._locate(pt_page)
        request = disk.write([addr], tag="pt")
        self.writes.increment()
        return request.done

    # -- reporting --------------------------------------------------------------------
    def utilizations(self, t_end: float) -> Dict[str, float]:
        out = {disk.name: disk.utilization(t_end) for disk in self.disks}
        out["pt_disks"] = sum(out.values()) / len(self.disks)
        return out

    def counters(self) -> Dict[str, int]:
        return {
            "pt_hits": self.hits.count,
            "pt_misses": self.misses.count,
            "pt_reads": self.reads.count,
            "pt_writes": self.writes.count,
            "pt_rereads": self.rereads.count,
        }
