"""Shadow-paging recovery architectures (paper Section 3.2).

Three variants:

* :class:`PageTableShadowArchitecture` — the canonical "thru page-table"
  scheme with dedicated page-table processors/disks and an LRU page-table
  buffer (Section 3.2.1);
* :class:`VersionSelectionArchitecture` — current + shadow copies in
  physically adjacent blocks, both fetched, a timestamp picking the current
  one (Section 3.2.2.1);
* :class:`OverwritingArchitecture` — current copies kept in a scratch ring
  while the transaction is active; on commit (no-undo) they overwrite the
  shadows in place, preserving physical clustering (Section 3.2.2.2).
"""

from repro.core.shadow.overwriting import OverwritingArchitecture, OverwritingMode
from repro.core.shadow.page_table import PageTableSubsystem
from repro.core.shadow.page_table_arch import PageTableShadowArchitecture, ShadowConfig
from repro.core.shadow.version_selection import VersionSelectionArchitecture

__all__ = [
    "OverwritingArchitecture",
    "OverwritingMode",
    "PageTableShadowArchitecture",
    "PageTableSubsystem",
    "ShadowConfig",
    "VersionSelectionArchitecture",
]
