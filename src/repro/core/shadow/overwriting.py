"""The overwriting shadow architectures (paper Section 3.2.2.2).

Separate current and shadow copies exist only while the updating
transaction is active, in a per-disk **scratch ring buffer** carved out of
reserved cylinders.  Two variants:

* **no-undo** — updated pages are first written to the scratch ring; the
  transaction commits once they (and a commit record) are durable; the
  committed copies are then read back from the scratch area and overwrite
  the shadows in place.  Locks are released only after the overwrite.  This
  is the variant the paper evaluates (Tables 7 and 8).
* **no-redo** — the *original* (shadow) of each page is saved to the
  scratch ring before the updated page overwrites it in place; commit
  requires all home writes durable, and crash recovery restores shadows.

Because homes are overwritten, logical and physical sequentiality stay in
correspondence and no page table is needed.  On parallel-access disks the
scratch ring lives within few cylinders, so a transaction's scratch reads
and its home overwrites batch into very few accesses — the paper's
explanation for overwriting's good parallel-sequential performance.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

from repro.core.base import RecoveryArchitecture
from repro.hardware.disk import DiskAddress
from repro.hardware.placement import RingAllocator
from repro.sim.monitor import CounterStat

__all__ = ["OverwritingArchitecture", "OverwritingMode"]


class OverwritingMode(enum.Enum):
    #: Updates buffered in the scratch ring; commit, then overwrite shadows.
    NO_UNDO = "no-undo"
    #: Shadows saved to the scratch ring; updates overwrite homes directly.
    NO_REDO = "no-redo"


class OverwritingArchitecture(RecoveryArchitecture):
    """Scratch-ring overwriting; see module docstring."""

    name = "overwriting"

    def __init__(self, mode: OverwritingMode = OverwritingMode.NO_UNDO):
        super().__init__()
        self.mode = mode
        self._rings: List[RingAllocator] = []
        self.scratch_writes = CounterStat("scratch.writes")
        self.scratch_reads = CounterStat("scratch.reads")

    def attach(self, machine) -> None:
        super().attach(machine)
        cfg = machine.config
        if cfg.reserved_cylinders < 1:
            raise ValueError("overwriting needs reserved cylinders for scratch")
        self._rings = [
            RingAllocator(cfg.disk, cfg.reserved_start_cylinder, cfg.reserved_cylinders)
            for _ in range(cfg.n_data_disks)
        ]

    # -- durability path ----------------------------------------------------------
    def writeback(self, txn, page: int):
        machine = self.machine
        home_idx, home_addr = machine.locate(page)
        scratch_addr = self._rings[home_idx].take(1)[0]
        if self.mode is OverwritingMode.NO_UNDO:
            # Current copy parks in the scratch ring until commit.
            span = machine._tspan("scratch.write", tid=txn.tid, page=page)
            request = machine.data_disks[home_idx].write([scratch_addr], tag="scratch")
            self.scratch_writes.increment()
            yield request.done
            machine._tend(span)
            self._pending(txn).append((home_idx, scratch_addr, home_addr))
        else:
            # Save the shadow first, then overwrite home in place.
            span = machine._tspan("scratch.write", tid=txn.tid, page=page)
            shadow = machine.data_disks[home_idx].write([scratch_addr], tag="scratch")
            self.scratch_writes.increment()
            yield shadow.done
            machine._tend(span)
            home = machine.data_disks[home_idx].write([home_addr], tag="writeback")
            yield home.done
            machine.note_page_written(txn)
        machine.cache.release(1)

    def _pending(self, txn) -> List[Tuple[int, DiskAddress, DiskAddress]]:
        return self.machine.runtime(txn).scratch.setdefault("pending", [])

    def on_commit(self, txn):
        machine = self.machine
        yield from machine.wait_writebacks(txn)
        if not txn.write_pages:
            return
        # The surviving-transaction list (committed for no-undo, uncommitted
        # for no-redo) costs one stable scratch write.
        marker = self._rings[0].take(1)
        request = machine.data_disks[0].write(list(marker), tag="txn-list")
        self.scratch_writes.increment()
        yield request.done
        if self.mode is not OverwritingMode.NO_UNDO:
            return
        pending = self._pending(txn)
        by_disk: Dict[int, List[Tuple[DiskAddress, DiskAddress]]] = {}
        for disk_idx, scratch_addr, home_addr in pending:
            by_disk.setdefault(disk_idx, []).append((scratch_addr, home_addr))
        frames = sum(len(v) for v in by_disk.values())
        yield machine.cache.acquire(frames)
        overwrites = [
            machine.env.process(
                self._overwrite_disk(disk_idx, pairs, txn),
                name=f"ow.t{txn.tid}.d{disk_idx}",
            )
            for disk_idx, pairs in by_disk.items()
        ]
        yield machine.env.all_of(overwrites)
        machine.cache.release(frames)

    def _overwrite_disk(self, disk_idx: int, pairs, txn):
        """Read committed copies from scratch and overwrite the shadows.

        On a parallel-access drive the scratch copies come back in (nearly)
        one access and the homes are overwritten cylinder-batched — the
        paper's explanation for overwriting's good parallel-sequential
        performance.  A conventional drive is "not amenable to such
        overlapping": it alternates scratch read / home write page by page,
        the arm bouncing between the scratch area and the data area.
        """
        machine = self.machine
        disk = machine.data_disks[disk_idx]
        span = machine._tspan("overwrite", tid=txn.tid, pages=len(pairs))
        if disk.parallel_access:
            scratch_addrs = sorted(p[0] for p in pairs)
            self.scratch_reads.increment(len(scratch_addrs))
            yield from machine.read_batched(disk_idx, scratch_addrs, tag="scratch")
            home_addrs = sorted(p[1] for p in pairs)
            yield from machine.write_batched(disk_idx, home_addrs, tag="writeback")
            machine.note_page_written(txn, len(home_addrs))
        else:
            for scratch_addr, home_addr in pairs:
                self.scratch_reads.increment()
                read = disk.read([scratch_addr], tag="scratch")
                yield read.done
                write = disk.write([home_addr], tag="writeback")
                yield write.done
                machine.note_page_written(txn)
        machine._tend(span)

    # -- reporting --------------------------------------------------------------------
    def extra_counters(self) -> Dict[str, int]:
        return {
            "scratch_writes": self.scratch_writes.count,
            "scratch_reads": self.scratch_reads.count,
        }

    def describe(self) -> str:
        return f"overwriting[{self.mode.value}]"
