"""The paper's contribution: parallel recovery architectures.

Every architecture plugs into the :class:`~repro.machine.DatabaseMachine`
through the :class:`~repro.core.base.RecoveryArchitecture` hook interface
and adds its own processors/disks at attach time:

* :class:`~repro.core.bare.BareArchitecture` — no recovery (the baseline).
* :class:`~repro.core.logging.ParallelLoggingArchitecture` — N log
  processors with private log disks (Section 3.1).
* :class:`~repro.core.shadow.PageTableShadowArchitecture` — shadow paging
  through page-table processors/disks (Section 3.2.1).
* :class:`~repro.core.shadow.VersionSelectionArchitecture` — adjacent-block
  versions chosen by timestamp (Section 3.2.2.1).
* :class:`~repro.core.shadow.OverwritingArchitecture` — scratch-ring
  current copies overwriting shadows at commit (Section 3.2.2.2).
* :class:`~repro.core.differential.DifferentialFileArchitecture` — A/D
  differential files with (B u A) - D query processing (Section 3.3).

Two modern challengers (:mod:`repro.core.modern`) run on the same machine:

* :class:`~repro.core.modern.CommandLoggingArchitecture` — adaptive
  command logging (compact records, physical fallback; Yao et al.).
* :class:`~repro.core.modern.RedoOnlyWalArchitecture` — no-steal
  redo-only WAL with early lock release (Sauer & Härder).
"""

from repro.core.bare import BareArchitecture
from repro.core.base import AuxRead, DataPage, RecoveryArchitecture
from repro.core.differential import DifferentialConfig, DifferentialFileArchitecture
from repro.core.logging import (
    FragmentRouting,
    LoggingConfig,
    LogMode,
    ParallelLoggingArchitecture,
    SelectionPolicy,
)
from repro.core.modern import CommandLoggingArchitecture, RedoOnlyWalArchitecture
from repro.core.shadow import (
    OverwritingArchitecture,
    OverwritingMode,
    PageTableShadowArchitecture,
    ShadowConfig,
    VersionSelectionArchitecture,
)

__all__ = [
    "AuxRead",
    "BareArchitecture",
    "CommandLoggingArchitecture",
    "DataPage",
    "DifferentialConfig",
    "DifferentialFileArchitecture",
    "FragmentRouting",
    "LogMode",
    "LoggingConfig",
    "OverwritingArchitecture",
    "OverwritingMode",
    "PageTableShadowArchitecture",
    "ParallelLoggingArchitecture",
    "RecoveryArchitecture",
    "RedoOnlyWalArchitecture",
    "SelectionPolicy",
    "ShadowConfig",
    "VersionSelectionArchitecture",
]
