"""A log processor: assembles fragments into log pages on a private disk.

Logical logging (paper Section 3.1): fragments accumulate in the log
processor's buffer; when a log page fills it is written to the log disk and
every fragment in it becomes durable at once — which is also why logically
logged machines unblock (and can batch) many updated data pages together.

Physical logging (paper Section 4.1.2): every updated page produces two
full log pages — the before image and the after image — written immediately
as one two-page sequential request.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.hardware.disk import Disk
from repro.hardware.placement import RingAllocator
from repro.sim.core import Environment, Event
from repro.sim.monitor import CounterStat, SampleStat, WALInvariantMonitor

__all__ = ["LogFragment", "LogProcessor"]


class LogFragment:
    """One page-update's log record.

    ``delivered`` fires when the fragment reaches its log processor (after
    the interconnect or through-cache hop); ``durable`` fires when the log
    page containing it is on the log disk.
    """

    __slots__ = ("tid", "page", "delivered", "durable", "created_at", "lp_index")

    def __init__(self, env: Environment, tid: int, page: int):
        self.tid = tid
        self.page = page
        self.delivered: Event = env.event()
        self.durable: Event = env.event()
        self.created_at = env.now
        self.lp_index: Optional[int] = None


class LogProcessor:
    """One log processor with its private (conventional) log disk."""

    def __init__(
        self,
        env: Environment,
        index: int,
        disk: Disk,
        fragments_per_page: int,
        name: str = "lp",
        monitor: Optional[WALInvariantMonitor] = None,
    ):
        if fragments_per_page < 1:
            raise ValueError("a log page must hold at least one fragment")
        self.env = env
        self.index = index
        self.disk = disk
        self.fragments_per_page = fragments_per_page
        self.name = name
        self.monitor = monitor
        self._ring = RingAllocator(disk.params, 0, disk.params.cylinders)
        self._buffer: List[LogFragment] = []
        self.alive = True
        #: Called with each fragment this processor can no longer make
        #: durable (it died with the fragment buffered, or its log write
        #: failed); the architecture re-ships orphans to a surviving peer.
        self.on_orphan: Optional[Callable[[LogFragment], None]] = None
        self.log_pages_written = CounterStat(f"{name}.log_pages")
        self.fragments_received = CounterStat(f"{name}.fragments")
        self.forced_writes = CounterStat(f"{name}.forces")
        self.fragments_orphaned = CounterStat(f"{name}.orphans")
        self.fragment_wait_ms = SampleStat(f"{name}.fragment_wait")

    # -- failure ---------------------------------------------------------------
    def fail(self) -> List[LogFragment]:
        """The log processor dies: its disk fails and buffered fragments
        orphan.  Returns the orphans (also routed via ``on_orphan``)."""
        if not self.alive:
            return []
        self.alive = False
        self.disk.fail()
        orphans, self._buffer = self._buffer, []
        for fragment in orphans:
            self._orphan(fragment)
        return orphans

    def _orphan(self, fragment: LogFragment) -> None:
        self.fragments_orphaned.increment()
        if self.on_orphan is not None:
            self.on_orphan(fragment)

    # -- logical logging -----------------------------------------------------
    def deliver(self, fragment: LogFragment) -> None:
        """Add a fragment to the current log page; flush when full."""
        if not self.alive:
            self._orphan(fragment)
            return
        fragment.lp_index = self.index
        self.fragments_received.increment()
        self._buffer.append(fragment)
        if len(self._buffer) >= self.fragments_per_page:
            self._flush()

    def force(self) -> None:
        """Write out the current partial log page (commit processing)."""
        if self._buffer:
            self.forced_writes.increment()
            self._flush()

    def _flush(self) -> None:
        fragments, self._buffer = self._buffer, []
        addresses = self._ring.take(1)
        request = self.disk.write(addresses, tag="log")
        request.done.callbacks.append(self._make_durable(fragments, [request]))
        self.log_pages_written.increment()

    def write_checkpoint_page(self) -> Event:
        """Append a checkpoint page to the log ring; returns its completion.

        A checkpoint page records the active-transaction table and the
        dirty-page list (one page comfortably holds both); its cost is just
        one more sequential log write.
        """
        request = self.disk.write(self._ring.take(1), tag="checkpoint")
        self.log_pages_written.increment()
        return request.done

    # -- physical logging ------------------------------------------------------
    def deliver_physical(self, fragment: LogFragment) -> None:
        """Write the before- and the after-image page immediately.

        The two images are distinct log pages written as two separate
        requests ("two log pages are written: one contains the before image
        and the other contains the after image", paper Section 4.1.2); the
        fragment is durable when the *second* completes.
        """
        if not self.alive:
            self._orphan(fragment)
            return
        fragment.lp_index = self.index
        self.fragments_received.increment()
        before = self.disk.write(self._ring.take(1), tag="log")
        after = self.disk.write(self._ring.take(1), tag="log")
        done = before.done & after.done
        done.callbacks.append(self._make_durable([fragment], [before, after]))
        self.log_pages_written.increment(2)

    # -- internals ----------------------------------------------------------------
    def _make_durable(self, fragments: List[LogFragment], requests) -> object:
        def callback(_event) -> None:
            now = self.env.now
            if not all(request.ok for request in requests):
                # The log write never made it (disk died / torn page):
                # nothing became durable; orphan the fragments for re-ship.
                for fragment in fragments:
                    self._orphan(fragment)
                return
            for fragment in fragments:
                self.fragment_wait_ms.add(now - fragment.created_at)
                if self.monitor is not None:
                    self.monitor.note_force(fragment)
                if not fragment.durable.triggered:
                    fragment.durable.succeed(now)

        return callback

    @property
    def buffered_fragments(self) -> int:
        return len(self._buffer)
