"""The parallel-logging recovery architecture (paper Section 3.1).

Flow for every updated page:

1. the query processor builds a log fragment (CPU, charged to the QP);
2. a log processor is chosen by the selection policy;
3. the fragment travels over the dedicated link — or through the disk
   cache, briefly occupying a frame and extra QP time (Section 4.1.3);
4. the log processor assembles it into a log page and writes full pages;
5. the updated data page stays blocked in the cache until its fragment is
   durable (write-ahead logging), then streams home;
6. commit forces the partial log pages of every involved log processor and
   completes when the last updated page is on disk.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.checkpoint import sim_checkpointer
from repro.core.base import RecoveryArchitecture
from repro.core.logging.log_processor import LogFragment, LogProcessor
from repro.core.logging.selection import (
    NoLiveLogProcessor,
    SelectionPolicy,
    SelectorState,
    select_log_processor,
)
from repro.hardware.disk import ConventionalDisk
from repro.hardware.interconnect import Interconnect, MessageLost
from repro.hardware.params import IBM_3350, DiskParams
from repro.sim.monitor import CounterStat

__all__ = ["FragmentRouting", "LogMode", "LoggingConfig", "ParallelLoggingArchitecture"]

#: Default delivery attempts per fragment (each attempt re-selects a live
#: log processor; each link attempt itself retransmits with backoff).
#: Configurable per machine via ``MachineConfig.log_ship_max_attempts``.
MAX_SHIP_ATTEMPTS = 4

#: Default linear backoff between shipping attempts, in ms.  Configurable
#: per machine via ``MachineConfig.log_ship_backoff_ms``.
SHIP_RETRY_BACKOFF_MS = 2.0


class LogMode(enum.Enum):
    """What a fragment contains."""

    #: Record-level redo/undo entries; several fragments fit one log page.
    LOGICAL = "logical"
    #: Full before + after page images; two log pages per update.
    PHYSICAL = "physical"


class FragmentRouting(enum.Enum):
    """How fragments move from query processors to log processors."""

    #: A dedicated interconnect (paper evaluates 1.0 / 0.1 / 0.01 MB/s).
    LINK = "link"
    #: Through the disk cache: no extra hardware, one frame in transit and
    #: extra query-processor work (Section 4.1.3 finds this free in practice).
    CACHE = "cache"


@dataclass(frozen=True)
class LoggingConfig:
    """Parameters of the parallel-logging architecture."""

    n_log_processors: int = 1
    mode: LogMode = LogMode.LOGICAL
    selection: SelectionPolicy = SelectionPolicy.CYCLIC
    routing: FragmentRouting = FragmentRouting.LINK
    link_bandwidth_mb_s: float = 1.0
    #: Logical fragment size; ~6 fragments fill a 4 KB log page.
    fragment_bytes: int = 600
    log_disk: DiskParams = IBM_3350
    #: Cache-routing overhead: two extra cache operations by the QP.
    cache_route_cpu_instructions: int = 2_000
    #: Period of background checkpoints, in ms (None disables them).  The
    #: paper (Section 3.1, ref [13]) claims checkpointing can run in
    #: parallel with normal processing without quiescing: each checkpoint
    #: forces every log processor's partial page and writes one checkpoint
    #: page per log disk, and nothing ever stops.
    checkpoint_interval_ms: Optional[float] = None
    #: Group-commit window, in ms (None = force immediately at commit).
    #: An extension beyond the paper: commits arriving within the window
    #: share one forced log write per log processor, trading a little
    #: commit latency for fewer partial-page writes — the optimization
    #: later systems layered on exactly this architecture.
    group_commit_window_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_log_processors < 1:
            raise ValueError("need at least one log processor")
        if self.fragment_bytes < 1:
            raise ValueError("fragment must have positive size")

    def with_overrides(self, **kwargs) -> "LoggingConfig":
        return replace(self, **kwargs)

    @property
    def fragments_per_log_page(self) -> int:
        return max(1, self.log_disk.page_size // self.fragment_bytes)


class ParallelLoggingArchitecture(RecoveryArchitecture):
    """N log processors with private log disks; see module docstring."""

    name = "logging"

    def __init__(self, config: Optional[LoggingConfig] = None):
        super().__init__()
        self.config_log = config or LoggingConfig()
        self.log_processors: List[LogProcessor] = []
        self._link: Optional[Interconnect] = None
        self._selector_state = SelectorState()
        self._rng = None
        self.ship_retries = CounterStat("logging.ship_retries")
        self.fragments_reshipped = CounterStat("logging.reshipped")

    # -- wiring -----------------------------------------------------------------
    def attach(self, machine) -> None:
        super().attach(machine)
        cfg = self.config_log
        self._rng = machine.streams.stream("logging.selection")
        self.log_processors = []
        for i in range(cfg.n_log_processors):
            disk = ConventionalDisk(
                machine.env,
                cfg.log_disk,
                name=f"log{i}",
                rng=machine.streams.stream(f"disk.log{i}"),
            )
            self.log_processors.append(
                LogProcessor(
                    machine.env,
                    i,
                    disk,
                    fragments_per_page=cfg.fragments_per_log_page,
                    name=f"lp{i}",
                    monitor=machine.wal_monitor,
                )
            )
        faults = getattr(machine, "faults", None)
        for lp in self.log_processors:
            lp.on_orphan = self._reship_orphan
            lp.disk.faults = faults
        if cfg.routing is FragmentRouting.LINK:
            # Dedicated connections: one lane per query processor, so a slow
            # link delays fragments without congesting its neighbours.
            self._link = Interconnect(
                machine.env,
                bandwidth_mb_per_s=cfg.link_bandwidth_mb_s,
                channels=machine.config.n_query_processors,
                name="qp-lp-link",
            )
            self._link.faults = faults
        self.checkpoints_taken = 0
        if cfg.checkpoint_interval_ms is not None:
            machine.env.process(
                sim_checkpointer(machine.env, self, cfg.checkpoint_interval_ms),
                name="checkpointer",
            )
        #: Per-LP pending group-commit event (None = no window open).
        self._group_pending: Dict[int, Optional[object]] = {}

    # -- log-processor failure (graceful degradation) ------------------------------
    def alive_mask(self) -> List[bool]:
        return [lp.alive for lp in self.log_processors]

    def fail_log_processor(self, index: int) -> List[LogFragment]:
        """Kill log processor ``index``; its buffered fragments re-ship to
        surviving peers via :meth:`_reship_orphan`.  Returns the orphans.

        The membership-change half of failover — forcing the survivors so
        re-shipped fragments become durable promptly — runs immediately
        when no health monitor is attached, or at the monitor's detection
        instant when one is.
        """
        machine = self.machine
        already_dead = not self.log_processors[index].alive
        orphans = self.log_processors[index].fail()
        if machine is not None and not already_dead:
            machine._tinstant("component.fail", kind="lp", index=index)
            if machine.health is None:
                self.failover_log_processor(index)
        return orphans

    def failover_log_processor(self, index: int) -> None:
        """Surviving log processors take over the dead one's stream.

        The orphaned fragments were already re-shipped by the
        :meth:`_reship_orphan` callback; what membership change adds is a
        force on every survivor, so transactions whose commits were gated
        on the dead processor see their re-homed fragments durable within
        a bounded window — the paper's no-merge property holds because
        each fragment lives wholly on whichever log it landed on.
        """
        machine = self.machine
        machine.fault_hook("machine.failover.lp")
        machine._tinstant("failover.lp", index=index)
        for lp in self.log_processors:
            if lp.alive:
                lp.force()

    def _pick_alive(self, tid: int) -> int:
        """Deterministic fallback selection among surviving log processors."""
        candidates = [lp.index for lp in self.log_processors if lp.alive]
        if not candidates:
            raise NoLiveLogProcessor("all log processors are dead")
        return candidates[tid % len(candidates)]

    def _reship_orphan(self, fragment: LogFragment) -> None:
        """Route an orphaned fragment to a surviving log processor.

        The owning transaction may already be inside commit processing,
        waiting on ``fragment.durable`` — so after re-delivery the new log
        processor is forced immediately, bounding the extra commit latency
        to one shipping hop plus one forced log write.
        """
        self.fragments_reshipped.increment()
        self.machine.env.process(
            self._reship(fragment), name=f"reship.t{fragment.tid}.p{fragment.page}"
        )

    def _reship(self, fragment: LogFragment):
        yield from self._ship_attempts(fragment, self._pick_alive(fragment.tid))
        self.log_processors[fragment.lp_index].force()

    # -- CPU overhead -------------------------------------------------------------
    def _fragment_mode(self, tid: int) -> LogMode:
        """Record mode for one transaction's fragments.

        The base architecture logs every transaction in the configured
        mode; subclasses (adaptive command logging) override this to
        switch individual transactions between logical and physical
        records.
        """
        return self.config_log.mode

    def page_cpu_ms(self, txn, page, is_update: bool) -> float:
        cost = self.machine.config.cost
        cpu = self.machine.config.cpu
        ms = super().page_cpu_ms(txn, page, is_update)
        if is_update:
            if self._fragment_mode(txn.tid) is LogMode.LOGICAL:
                ms += cpu.ms(cost.build_log_fragment)
            else:
                ms += cpu.ms(2 * cost.copy_page_image)
            if self.config_log.routing is FragmentRouting.CACHE:
                ms += cpu.ms(self.config_log.cache_route_cpu_instructions)
        return ms

    # -- fragment shipping -----------------------------------------------------------
    def on_page_updated(self, txn, page, qp_index: int):
        """Pick a log processor and ship the fragment *asynchronously*.

        The query processor hands the fragment to the link (or drops it in
        the cache) and moves on — it does not wait out the wire time, which
        is why the paper finds the machine insensitive to link bandwidth:
        the delay is absorbed in the fragment inter-arrival gap.
        """
        cfg = self.config_log
        machine = self.machine
        fragment = LogFragment(machine.env, txn.tid, page)
        lp_index = select_log_processor(
            cfg.selection,
            cfg.n_log_processors,
            qp_index,
            txn,
            self._selector_state,
            self._rng,
            alive=self.alive_mask(),
        )
        self._fragments_of(txn)[page] = fragment
        if machine.wal_monitor is not None:
            machine.wal_monitor.note_recovery_data(page, fragment)
        machine.env.process(
            self._ship(txn, fragment, lp_index),
            name=f"frag.t{txn.tid}.p{page}",
        )
        return
        yield  # pragma: no cover - hook stays a generator

    def _ship(self, txn, fragment: LogFragment, lp_index: int):
        span = self.machine._tspan(
            "log.ship", tid=txn.tid, page=fragment.page, lp=lp_index
        )
        yield from self._ship_attempts(fragment, lp_index)
        self.machine._tend(span, lp=fragment.lp_index)
        # Record the processor that actually took delivery (it can differ
        # from the selected one if that one died mid-flight): commit and
        # abort force exactly the processors holding this transaction's
        # fragments.
        txn.recovery_state.setdefault("log_processors", set()).add(fragment.lp_index)

    def _ship_attempts(self, fragment: LogFragment, lp_index: int):
        """Deliver ``fragment``, retrying with bounded backoff.

        Each attempt re-checks that the target log processor is still alive
        (it may die while the fragment is on the wire) and re-selects among
        the survivors; link loss is absorbed by the interconnect's own
        bounded retransmission.  After ``MachineConfig.log_ship_max_attempts``
        tries the machine gives up and the failure surfaces from ``run()``.
        """
        cfg = self.config_log
        machine = self.machine
        max_attempts = machine.config.log_ship_max_attempts
        backoff_ms = machine.config.log_ship_backoff_ms
        payload = (
            cfg.fragment_bytes
            if self._fragment_mode(fragment.tid) is LogMode.LOGICAL
            else 2 * cfg.log_disk.page_size
        )
        last_error: Optional[Exception] = None
        for attempt in range(max_attempts):
            if attempt:
                self.ship_retries.increment()
                yield machine.env.timeout(backoff_ms * attempt)
                lp_index = self._pick_alive(fragment.tid)
            lp = self.log_processors[lp_index]
            if not lp.alive:
                continue
            if cfg.routing is FragmentRouting.LINK:
                try:
                    yield self._link.reliable_transfer(payload)
                except MessageLost as lost:
                    last_error = lost
                    continue
            else:
                # Through the disk cache: a frame holds the in-transit
                # fragment for the duration of the two cache operations.
                yield machine.cache.acquire(1)
                yield machine.env.timeout(
                    machine.config.cpu.ms(cfg.cache_route_cpu_instructions)
                )
                machine.cache.release(1)
            if not lp.alive:
                # Died while the fragment was in transit; next attempt
                # re-selects a survivor.
                continue
            if self._fragment_mode(fragment.tid) is LogMode.LOGICAL:
                lp.deliver(fragment)
            else:
                lp.deliver_physical(fragment)
            if not fragment.delivered.triggered:
                fragment.delivered.succeed()
            return
        raise last_error or NoLiveLogProcessor(
            f"fragment t{fragment.tid}.p{fragment.page} undeliverable "
            f"after {max_attempts} attempts"
        )

    def _fragments_of(self, txn) -> Dict[int, LogFragment]:
        return self.machine.runtime(txn).scratch.setdefault("fragments", {})

    # -- parallel checkpointing (Section 3.1 / ref [13]) ---------------------------
    def take_checkpoint(self):
        """One fuzzy checkpoint: force partial log pages and write one
        checkpoint page per log disk — fully overlapped with processing."""
        span = self.machine._tspan("checkpoint", kind="fuzzy")
        writes = []
        for lp in self.log_processors:
            if not lp.alive:
                continue
            lp.force()
            writes.append(lp.write_checkpoint_page())
        yield self.machine.env.all_of(writes)
        self.checkpoints_taken += 1
        self.machine._tend(span)

    # -- durability -----------------------------------------------------------------
    def writeback(self, txn, page):
        """WAL: the data page may only go home after its fragment is durable."""
        machine = self.machine
        fragment = self._fragments_of(txn)[page]
        if not fragment.durable.triggered:
            span = machine._tspan("wal.wait", tid=txn.tid, page=page)
            machine.cache.mark_blocked(1)
            yield fragment.durable
            machine.cache.unmark_blocked(1)
            machine._tend(span)
        disk_idx, addr = self.write_address(txn, page)
        if machine.wal_monitor is not None:
            machine.wal_monitor.note_flush(page)
        request = machine.data_disks[disk_idx].write([addr], tag="writeback")
        yield request.done
        machine.note_page_written(txn, page=page)
        machine.cache.release(1)

    def on_commit(self, txn):
        """Force every involved log processor, then drain the write-backs.

        Fragments still in flight on the interconnect must land first, or
        the force would miss them.
        """
        fragments = self._fragments_of(txn)
        in_flight = [
            fragment.delivered
            for fragment in fragments.values()
            if not fragment.delivered.triggered
        ]
        if in_flight:
            yield self.machine.env.all_of(in_flight)
        for lp_index in sorted(txn.recovery_state.get("log_processors", ())):
            if not self.log_processors[lp_index].alive:
                # A dead processor has nothing left to force: its buffered
                # fragments were orphaned and re-shipped (and re-forced) on
                # a survivor, whose durable event gates us below.
                continue
            if self.config_log.group_commit_window_ms is None:
                self.log_processors[lp_index].force()
            else:
                yield from self._group_force(lp_index)
        pending = [
            fragment.durable
            for fragment in fragments.values()
            if not fragment.durable.triggered
        ]
        if pending:
            yield self.machine.env.all_of(pending)
        yield from self.machine.wait_writebacks(txn)

    def _group_force(self, lp_index: int):
        """Group commit: commits within the window share one force."""
        env = self.machine.env
        pending = self._group_pending.get(lp_index)
        if pending is None:
            pending = env.event()
            self._group_pending[lp_index] = pending
            env.process(self._group_fire(lp_index, pending), name=f"gc.lp{lp_index}")
        yield pending

    def _group_fire(self, lp_index: int, pending):
        yield self.machine.env.timeout(self.config_log.group_commit_window_ms)
        self._group_pending[lp_index] = None
        self.log_processors[lp_index].force()
        pending.succeed()

    def on_abort(self, txn):
        """Unblock the aborted transaction's write-backs.

        Its updated pages are gated on WAL fragments; forcing the involved
        log processors lets them drain (the fragments themselves are
        harmless — restart treats the transaction as uncommitted).
        """
        fragments = self._fragments_of(txn)
        in_flight = [
            fragment.delivered
            for fragment in fragments.values()
            if not fragment.delivered.triggered
        ]
        if in_flight:
            yield self.machine.env.all_of(in_flight)
        for lp_index in sorted(txn.recovery_state.get("log_processors", ())):
            if self.log_processors[lp_index].alive:
                self.log_processors[lp_index].force()

    # -- reporting -----------------------------------------------------------------
    def extra_utilizations(self, t_end: float) -> Dict[str, float]:
        out = {}
        for lp in self.log_processors:
            out[f"{lp.disk.name}"] = lp.disk.utilization(t_end)
        if self.log_processors:
            out["log_disks"] = sum(
                lp.disk.utilization(t_end) for lp in self.log_processors
            ) / len(self.log_processors)
        if self._link is not None:
            out["qp_lp_link"] = self._link.busy.utilization(t_end)
        return out

    def extra_counters(self) -> Dict[str, int]:
        return {
            "log_pages_written": sum(
                lp.log_pages_written.count for lp in self.log_processors
            ),
            "log_fragments": sum(
                lp.fragments_received.count for lp in self.log_processors
            ),
            "log_forces": sum(lp.forced_writes.count for lp in self.log_processors),
            "log_fragments_orphaned": sum(
                lp.fragments_orphaned.count for lp in self.log_processors
            ),
            "log_fragments_reshipped": self.fragments_reshipped.count,
            "log_ship_retries": self.ship_retries.count,
        }

    def extra_averages(self, t_end: float) -> Dict[str, float]:
        waits = [lp.fragment_wait_ms for lp in self.log_processors]
        n = sum(w.n for w in waits)
        mean = sum(w.mean * w.n for w in waits) / n if n else 0.0
        return {"fragment_wait_ms": mean}

    def describe(self) -> str:
        cfg = self.config_log
        return (
            f"logging[{cfg.mode.value}, {cfg.n_log_processors} lp, "
            f"{cfg.selection.value}, {cfg.routing.value}]"
        )
