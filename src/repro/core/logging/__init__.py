"""Parallel logging (paper Section 3.1).

N log processors, each with a private log disk.  Query processors ship a
log fragment for every page they update to a log processor chosen by a
selection policy; the log processor assembles fragments into log pages and
writes full pages to its disk.  Updated data pages stay *blocked* in the
disk cache until their log page is on stable storage (write-ahead logging),
and commit forces the partial log pages of every log processor holding the
transaction's fragments.
"""

from repro.core.logging.architecture import (
    FragmentRouting,
    LoggingConfig,
    LogMode,
    ParallelLoggingArchitecture,
)
from repro.core.logging.log_processor import LogFragment, LogProcessor
from repro.core.logging.selection import SelectionPolicy, SelectorState, select_log_processor

__all__ = [
    "FragmentRouting",
    "LogFragment",
    "LogMode",
    "LogProcessor",
    "LoggingConfig",
    "ParallelLoggingArchitecture",
    "SelectionPolicy",
    "SelectorState",
    "select_log_processor",
]
