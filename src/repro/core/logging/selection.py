"""Log-processor selection policies (paper Sections 3.1 and 4.1.2).

The paper evaluates four ways a query processor picks the log processor for
a fragment:

* **cyclic** — each query processor cycles through all log processors;
* **random** — uniform random choice;
* **qp_mod** — query-processor number mod the number of log processors;
* **txn_mod** — transaction number mod the number of log processors.

Its Table 3 finds cyclic / random / qp_mod comparable and txn_mod "a
loser": with few concurrent transactions, txn_mod funnels each
transaction's entire log stream to one processor and leaves the rest idle.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, Optional, Sequence

from repro.workload.transaction import Transaction

__all__ = [
    "NoLiveLogProcessor",
    "SelectionPolicy",
    "SelectorState",
    "select_log_processor",
]


class NoLiveLogProcessor(RuntimeError):
    """Every log processor is dead; fragments cannot be logged anywhere."""


class SelectionPolicy(enum.Enum):
    CYCLIC = "cyclic"
    RANDOM = "random"
    QP_MOD = "qp_mod"
    TXN_MOD = "txn_mod"


class SelectorState:
    """Mutable per-machine state some policies need (cyclic counters)."""

    def __init__(self) -> None:
        self.qp_counters: Dict[int, int] = {}


def select_log_processor(
    policy: SelectionPolicy,
    n_log_processors: int,
    qp_index: int,
    txn: Transaction,
    state: SelectorState,
    rng: random.Random,
    alive: Optional[Sequence[bool]] = None,
) -> int:
    """Index of the log processor that receives this fragment.

    ``alive`` (one flag per log processor) restricts every policy to the
    surviving processors: the policy's arithmetic runs over the live
    candidate list, so a dead processor's share redistributes evenly and
    behavior with all processors alive is unchanged.
    """
    if n_log_processors < 1:
        raise ValueError("need at least one log processor")
    if alive is None:
        candidates = list(range(n_log_processors))
    else:
        candidates = [i for i in range(n_log_processors) if alive[i]]
        if not candidates:
            raise NoLiveLogProcessor("all log processors are dead")
    m = len(candidates)
    if m == 1:
        return candidates[0]
    if policy is SelectionPolicy.CYCLIC:
        count = state.qp_counters.get(qp_index, 0)
        state.qp_counters[qp_index] = count + 1
        return candidates[count % m]
    if policy is SelectionPolicy.RANDOM:
        return candidates[rng.randrange(m)]
    if policy is SelectionPolicy.QP_MOD:
        return candidates[qp_index % m]
    if policy is SelectionPolicy.TXN_MOD:
        return candidates[txn.tid % m]
    raise ValueError(f"unknown policy {policy!r}")
