"""Log-processor selection policies (paper Sections 3.1 and 4.1.2).

The paper evaluates four ways a query processor picks the log processor for
a fragment:

* **cyclic** — each query processor cycles through all log processors;
* **random** — uniform random choice;
* **qp_mod** — query-processor number mod the number of log processors;
* **txn_mod** — transaction number mod the number of log processors.

Its Table 3 finds cyclic / random / qp_mod comparable and txn_mod "a
loser": with few concurrent transactions, txn_mod funnels each
transaction's entire log stream to one processor and leaves the rest idle.
"""

from __future__ import annotations

import enum
import random
from typing import Dict

from repro.workload.transaction import Transaction

__all__ = ["SelectionPolicy", "SelectorState", "select_log_processor"]


class SelectionPolicy(enum.Enum):
    CYCLIC = "cyclic"
    RANDOM = "random"
    QP_MOD = "qp_mod"
    TXN_MOD = "txn_mod"


class SelectorState:
    """Mutable per-machine state some policies need (cyclic counters)."""

    def __init__(self) -> None:
        self.qp_counters: Dict[int, int] = {}


def select_log_processor(
    policy: SelectionPolicy,
    n_log_processors: int,
    qp_index: int,
    txn: Transaction,
    state: SelectorState,
    rng: random.Random,
) -> int:
    """Index of the log processor that receives this fragment."""
    if n_log_processors < 1:
        raise ValueError("need at least one log processor")
    if n_log_processors == 1:
        return 0
    if policy is SelectionPolicy.CYCLIC:
        count = state.qp_counters.get(qp_index, 0)
        state.qp_counters[qp_index] = count + 1
        return count % n_log_processors
    if policy is SelectionPolicy.RANDOM:
        return rng.randrange(n_log_processors)
    if policy is SelectionPolicy.QP_MOD:
        return qp_index % n_log_processors
    if policy is SelectionPolicy.TXN_MOD:
        return txn.tid % n_log_processors
    raise ValueError(f"unknown policy {policy!r}")
