"""The differential-file recovery architecture (paper Sections 3.3, 4.3).

Cost model, following the paper's assumptions:

* a transaction reading N base pages also reads ``size_fraction * N`` pages
  from each of the A and D files (differential files are ``size_fraction``
  of the base file, 10 % by default);
* processing a B or A page includes the set-difference against the
  transaction's D pages — against *all* of them under the basic strategy,
  and only for the ``qualify_fraction`` of pages that produce at least one
  qualifying tuple under the optimal strategy;
* an updated page creates only ``output_fraction`` (10 %) of an output
  page of A/D tuples; a transaction's appends are written sequentially at
  commit, with fragmentation rounding partial pages up — so differential
  files *reduce* the number of updated pages written, as the paper notes.

A and D extents live in the reserved cylinders of the data disks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

from repro.core.base import AuxRead, DataPage, RecoveryArchitecture, WorkItem
from repro.hardware.placement import RingAllocator
from repro.sim.monitor import CounterStat

__all__ = ["DifferentialConfig", "DifferentialFileArchitecture"]


@dataclass(frozen=True)
class DifferentialConfig:
    """Parameters of the differential-file architecture."""

    #: |A| / |B| and |D| / |B| (paper Section 4.3: 10 %, swept in Table 11).
    size_fraction: float = 0.10
    #: Fraction of an output page created per updated page (Table 10).
    output_fraction: float = 0.10
    #: Optimal (diff only qualifying pages) vs basic (diff everything).
    optimal: bool = True
    #: Fraction of B/A pages yielding at least one qualifying tuple, i.e.
    #: paying the set-difference under the optimal strategy.
    qualify_fraction: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 < self.size_fraction <= 1.0:
            raise ValueError(f"size_fraction {self.size_fraction} not in (0, 1]")
        if not 0.0 < self.output_fraction <= 1.0:
            raise ValueError(f"output_fraction {self.output_fraction} not in (0, 1]")
        if not 0.0 <= self.qualify_fraction <= 1.0:
            raise ValueError(f"qualify_fraction {self.qualify_fraction} not in [0, 1]")

    def with_overrides(self, **kwargs) -> "DifferentialConfig":
        return replace(self, **kwargs)


class DifferentialFileArchitecture(RecoveryArchitecture):
    """A/D differential files with (B u A) - D query processing."""

    name = "differential"

    def __init__(self, config: Optional[DifferentialConfig] = None):
        super().__init__()
        self.config_diff = config or DifferentialConfig()
        self._a_read_rings: List[RingAllocator] = []
        self._d_read_rings: List[RingAllocator] = []
        self._append_rings: List[RingAllocator] = []
        self.a_pages_read = CounterStat("diff.a_reads")
        self.d_pages_read = CounterStat("diff.d_reads")
        self.pages_appended = CounterStat("diff.appends")

    def attach(self, machine) -> None:
        super().attach(machine)
        cfg = machine.config
        if cfg.reserved_cylinders < 3:
            raise ValueError(
                "differential files need at least 3 reserved cylinders per disk"
            )
        third = cfg.reserved_cylinders // 3
        start = cfg.reserved_start_cylinder
        self._a_read_rings = []
        self._d_read_rings = []
        self._append_rings = []
        for _ in range(cfg.n_data_disks):
            self._a_read_rings.append(RingAllocator(cfg.disk, start, third))
            self._d_read_rings.append(RingAllocator(cfg.disk, start + third, third))
            self._append_rings.append(
                RingAllocator(
                    cfg.disk, start + 2 * third, cfg.reserved_cylinders - 2 * third
                )
            )

    # -- derived workload quantities -----------------------------------------------
    def diff_pages_for(self, txn) -> int:
        """A-file (= D-file) pages the transaction reads."""
        return int(self.config_diff.size_fraction * txn.n_reads)

    def _set_difference_ms(self, txn) -> float:
        """CPU for diffing one result page against the txn's D pages."""
        cfg = self.machine.config
        d_pages = self.diff_pages_for(txn)
        full = cfg.cpu.ms(cfg.cost.set_difference_per_d_page) * d_pages
        if self.config_diff.optimal:
            return self.config_diff.qualify_fraction * full
        return full

    # -- workload shaping --------------------------------------------------------------
    def read_sequence(self, txn) -> Iterable[WorkItem]:
        """Interleave A- and D-file reads into the base reference string."""
        n_diff = self.diff_pages_for(txn)
        cfg = self.machine.config
        stride = max(1, txn.n_reads // n_diff) if n_diff else txn.n_reads + 1
        diff_cpu = self._set_difference_ms(txn)
        a_cpu = cfg.cpu.ms(cfg.cost.scan_page + cfg.cost.union_merge) + diff_cpu
        emitted = 0
        for i, page in enumerate(txn.read_pages):
            yield DataPage(page)
            if emitted < n_diff and (i + 1) % stride == 0:
                disk_idx = (txn.tid + emitted) % len(self._a_read_rings)
                a_addr = self._a_read_rings[disk_idx].take(1)
                d_addr = self._d_read_rings[disk_idx].take(1)
                self.a_pages_read.increment()
                self.d_pages_read.increment()
                yield AuxRead(disk_idx, a_addr, cpu_ms=a_cpu, tag="a-file")
                yield AuxRead(disk_idx, d_addr, cpu_ms=0.0, tag="d-file")
                emitted += 1

    # -- CPU ---------------------------------------------------------------------------
    def page_cpu_ms(self, txn, page, is_update: bool) -> float:
        return super().page_cpu_ms(txn, page, is_update) + self._set_difference_ms(txn)

    # -- durability path -----------------------------------------------------------------
    def writeback(self, txn, page: int):
        """No in-place write-back: updates become A/D tuples, appended at
        commit.  The frame is free as soon as processing ends."""
        self.machine.cache.release(1)
        return
        yield  # pragma: no cover

    def appended_pages_for(self, txn) -> int:
        """A/D pages the transaction appends at commit (with fragmentation).

        ``output_fraction`` of an output page per updated page, rounded up
        to whole pages (the fragmentation the paper discusses in Table 10),
        plus one D page of deletion tuples.
        """
        if not txn.n_writes:
            return 0
        a_pages = max(1, math.ceil(txn.n_writes * self.config_diff.output_fraction))
        return a_pages + 1

    def on_commit(self, txn):
        machine = self.machine
        yield from machine.wait_writebacks(txn)
        n_append = self.appended_pages_for(txn)
        if not n_append:
            return
        disk_idx = txn.tid % len(self._append_rings)
        addresses = self._append_rings[disk_idx].take(n_append)
        self.pages_appended.increment(n_append)
        span = machine._tspan("append", tid=txn.tid, pages=n_append)
        yield from machine.write_batched(disk_idx, addresses, tag="append")
        machine._tend(span)
        machine.note_page_written(txn, n_append)

    # -- reporting ----------------------------------------------------------------------
    def extra_counters(self) -> Dict[str, int]:
        return {
            "a_pages_read": self.a_pages_read.count,
            "d_pages_read": self.d_pages_read.count,
            "pages_appended": self.pages_appended.count,
        }

    def describe(self) -> str:
        cfg = self.config_diff
        strategy = "optimal" if cfg.optimal else "basic"
        return (
            f"differential[{strategy}, size={cfg.size_fraction:.0%}, "
            f"output={cfg.output_fraction:.0%}]"
        )
