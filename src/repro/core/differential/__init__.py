"""Differential-file recovery (paper Section 3.3).

The base file B is read-only; additions append to an A file and deletions
to a D file, so every relation R is the view (B u A) - D.  Retrievals must
read extra A and D pages and set-difference their results against D — the
two cost components the paper identifies.  The *basic* strategy diffs every
B/A page; the *optimal* strategy diffs only pages yielding at least one
qualifying tuple.
"""

from repro.core.differential.architecture import (
    DifferentialConfig,
    DifferentialFileArchitecture,
)

__all__ = ["DifferentialConfig", "DifferentialFileArchitecture"]
