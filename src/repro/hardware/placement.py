"""Mapping from logical page numbers to physical disk addresses.

The database occupies ``db_pages`` logical pages striped across ``n_disks``
drives.  Two layouts matter to the paper:

* :class:`ClusteredPlacement` — logically adjacent pages are physically
  adjacent (modulo striping), so sequential scans stream.
* :class:`ScrambledPlacement` — a pseudo-random permutation of each drive's
  local ordering.  This is what the canonical shadow mechanism does to data
  over time: after pages migrate to fresh blocks, logical adjacency no
  longer implies physical adjacency (paper Section 4.2.3 / Table 7).

Striping interleaves consecutive logical pages round-robin across drives so
a sequential scan draws bandwidth from every drive.
"""

from __future__ import annotations

from typing import Tuple

from repro.hardware.disk import DiskAddress
from repro.hardware.params import DiskParams

__all__ = ["ClusteredPlacement", "Placement", "RingAllocator", "ScrambledPlacement"]


class RingAllocator:
    """Hands out consecutive disk addresses, wrapping around a region.

    Used for append-structured areas: a log disk's write ring, the
    overwriting architecture's scratch space ("scratch space on disk which
    is managed as a ring buffer", paper Section 3.2.2.2), and differential-
    file extents.
    """

    def __init__(self, params: DiskParams, start_cylinder: int, n_cylinders: int):
        if n_cylinders < 1:
            raise ValueError("ring needs at least one cylinder")
        if start_cylinder < 0 or start_cylinder + n_cylinders > params.cylinders:
            raise ValueError(
                f"ring [{start_cylinder}, {start_cylinder + n_cylinders}) "
                f"outside disk of {params.cylinders} cylinders"
            )
        self.params = params
        self._start = start_cylinder * params.pages_per_cylinder
        self.capacity = n_cylinders * params.pages_per_cylinder
        self._next = 0
        self.allocated = 0

    def take(self, n: int = 1) -> Tuple[DiskAddress, ...]:
        """The next ``n`` consecutive addresses (wrapping at the region end)."""
        if n < 1:
            raise ValueError("must take at least one page")
        out = []
        for _ in range(n):
            out.append(
                DiskAddress.from_linear(self._start + self._next, self.params)
            )
            self._next = (self._next + 1) % self.capacity
        self.allocated += n
        return tuple(out)


class Placement:
    """Base mapping logical page -> (disk index, physical address)."""

    def __init__(self, params: DiskParams, n_disks: int, db_pages: int):
        if n_disks < 1:
            raise ValueError("need at least one disk")
        capacity = params.capacity_pages * n_disks
        if db_pages > capacity:
            raise ValueError(
                f"database of {db_pages} pages exceeds {n_disks} disks "
                f"({capacity} pages)"
            )
        self.params = params
        self.n_disks = n_disks
        self.db_pages = db_pages
        #: Local pages per disk (ceiling so every page maps somewhere).
        self.pages_per_disk = -(-db_pages // n_disks)

    def locate(self, page: int) -> Tuple[int, DiskAddress]:
        """Disk index and physical address of logical ``page``."""
        if page < 0 or page >= self.db_pages:
            raise ValueError(f"page {page} outside database of {self.db_pages}")
        disk = page % self.n_disks
        local = page // self.n_disks
        return disk, DiskAddress.from_linear(self._local_index(local), self.params)

    def _local_index(self, local: int) -> int:
        raise NotImplementedError


class ClusteredPlacement(Placement):
    """Identity layout: logical order == physical order on each drive."""

    def _local_index(self, local: int) -> int:
        return local


class ScrambledPlacement(Placement):
    """A fixed pseudo-random permutation of each drive's local ordering.

    Uses a multiplicative affine permutation over the per-disk page count
    (stepping by a constant coprime to the modulus), which is a bijection,
    cheap, and deterministic — no permutation table needed even for large
    databases.
    """

    #: A large odd constant; made coprime to the modulus at construction.
    _MULTIPLIER = 2654435761

    def __init__(self, params: DiskParams, n_disks: int, db_pages: int):
        super().__init__(params, n_disks, db_pages)
        self._modulus = self.pages_per_disk
        multiplier = self._MULTIPLIER
        while self._gcd(multiplier, self._modulus) != 1:
            multiplier += 1
        self._multiplier = multiplier

    @staticmethod
    def _gcd(a: int, b: int) -> int:
        while b:
            a, b = b, a % b
        return a

    def _local_index(self, local: int) -> int:
        return (local * self._multiplier + 12345) % self._modulus
