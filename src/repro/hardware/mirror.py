"""Mirrored data disks: two physical drives behind one logical disk.

A :class:`MirroredDisk` duck-types the :class:`~repro.hardware.disk.Disk`
client surface (``submit``/``read``/``write``, ``name``, ``accesses``,
``utilization``, ``parallel_access``, ``faults``) so the database machine
can swap it in for a plain drive without touching the pipelines:

* **writes** go to every live side; the logical write is durable when at
  least one copy lands intact (a torn or dying side is masked by its
  twin);
* **reads** are served by the first *clean* live side (the primary while
  it lives); a side dying mid-service falls back to its twin;
* **failure** of one side degrades the mirror but the logical disk keeps
  serving — only losing both sides fails a request;
* **rebuild**: :meth:`attach_replacement` brings in a fresh drive and a
  background process copies the survivor cylinder by cylinder at a
  bounded I/O share (``rebuild_io_share``), so foreground throughput
  degrades gracefully instead of collapsing.  The replacement is *stale*
  (never serves reads) until its rebuild completes.

Determinism: each physical side draws latencies from its own named
``RandomStreams`` stream (``disk.<name>.a`` / ``.b``; replacements get
``disk.<name>.r<n>``), derived independently of every pre-existing
stream — attaching mirrors to a machine does not perturb unmirrored runs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hardware.disk import Disk, DiskAddress, DiskRequest, make_disk
from repro.hardware.params import DiskParams
from repro.sim.core import Environment, SimulationError
from repro.sim.monitor import CounterStat
from repro.sim.rng import RandomStreams

__all__ = ["MirroredDisk"]


class MirroredDisk:
    """One logical disk served by a pair of physical drives."""

    def __init__(
        self,
        env: Environment,
        params: DiskParams,
        streams: RandomStreams,
        parallel: bool = False,
        name: str = "mirror",
        scheduling: str = "fcfs",
        rebuild_io_share: float = 0.5,
        rebuild_cylinders: Optional[int] = None,
    ):
        if not 0.0 < rebuild_io_share <= 1.0:
            raise SimulationError(
                f"rebuild I/O share must be in (0, 1], got {rebuild_io_share}"
            )
        self.env = env
        self.params = params
        self.name = name
        self._streams = streams
        self._parallel = parallel
        self._scheduling = scheduling
        self.rebuild_io_share = rebuild_io_share
        self.rebuild_cylinders = (
            params.cylinders if rebuild_cylinders is None else rebuild_cylinders
        )
        self.sides: List[Disk] = [
            self._make_side(f"{name}.a"),
            self._make_side(f"{name}.b"),
        ]
        #: A stale side holds no valid data yet (a replacement mid-rebuild):
        #: it takes writes but never serves reads.
        self._stale: List[bool] = [False, False]
        self.parallel_access = self.sides[0].parallel_access
        self._replacements = 0
        self._faults = None
        #: Logical request counters (the machine reads ``accesses``).
        self.accesses = CounterStat(f"{name}.accesses")
        self.failed_requests = CounterStat(f"{name}.failed_requests")
        self.torn_writes = CounterStat(f"{name}.torn_writes")
        self.fallback_reads = CounterStat(f"{name}.fallback_reads")
        self.corrupt_masked = CounterStat(f"{name}.corrupt_masked")
        self.rebuilt_pages = CounterStat(f"{name}.rebuilt_pages")
        self.rebuilds_completed = CounterStat(f"{name}.rebuilds")
        #: Time spent without full redundancy (closed windows only).
        self.degraded_ms = 0.0
        self.degraded_since: Optional[float] = None

    def _make_side(self, side_name: str) -> Disk:
        return make_disk(
            self.env,
            self.params,
            parallel=self._parallel,
            name=side_name,
            rng=self._streams.stream(f"disk.{side_name}"),
            scheduling=self._scheduling,
        )

    # -- fault wiring (duck-typed Disk surface) -----------------------------
    @property
    def faults(self):
        return self._faults

    @faults.setter
    def faults(self, injector) -> None:
        self._faults = injector
        for side in self.sides:
            side.faults = injector

    # -- membership ---------------------------------------------------------
    def _clean_sides(self) -> List[int]:
        return [
            i
            for i, side in enumerate(self.sides)
            if not side.failed and not self._stale[i]
        ]

    def _live_sides(self) -> List[int]:
        return [i for i, side in enumerate(self.sides) if not side.failed]

    @property
    def failed(self) -> bool:
        """True when no side can serve reads any more (the logical disk
        is gone; only an archive restore helps now)."""
        return not self._clean_sides()

    @property
    def degraded(self) -> bool:
        """True while the mirror lacks full redundancy."""
        return len(self._clean_sides()) < len(self.sides)

    @property
    def rebuilding(self) -> bool:
        return any(self._stale[i] for i in self._live_sides())

    def _update_redundancy(self) -> None:
        now = self.env.now
        if self.degraded:
            if self.degraded_since is None:
                self.degraded_since = now
        elif self.degraded_since is not None:
            self.degraded_ms += now - self.degraded_since
            self.degraded_since = None

    def fail(self, side: Optional[int] = None) -> None:
        """Kill one physical side (default: the first live one).

        The logical disk keeps serving from the survivor; failing an
        already-degraded mirror kills the survivor and the logical disk
        is gone.
        """
        if side is None:
            live = self._live_sides()
            if not live:
                return
            side = live[0]
        self.sides[side].fail()
        self._update_redundancy()

    def attach_replacement(self) -> None:
        """Swap a fresh drive in for the (first) dead side and start the
        background rebuild off the surviving clean side."""
        dead = [i for i, s in enumerate(self.sides) if s.failed]
        if not dead:
            raise SimulationError(f"{self.name}: no dead side to replace")
        clean = self._clean_sides()
        if not clean:
            raise SimulationError(f"{self.name}: no clean side to rebuild from")
        index = dead[0]
        self._replacements += 1
        replacement = self._make_side(f"{self.name}.r{self._replacements}")
        replacement.faults = self._faults
        self.sides[index] = replacement
        self._stale[index] = True
        self._update_redundancy()
        self.env.process(
            self._rebuild(index, clean[0]), name=f"{self.name}.rebuild"
        )

    # -- background rebuild --------------------------------------------------
    def _rebuild(self, new_index: int, src_index: int):
        """Copy the survivor onto the replacement, cylinder by cylinder.

        Each copied cylinder is followed by an idle gap sized so the
        rebuild consumes at most ``rebuild_io_share`` of the wall time it
        is active — the remaining bandwidth is left to foreground I/O
        (which additionally competes in the survivor's request queue).
        """
        env = self.env
        params = self.params
        tracer = getattr(env, "tracer", None)
        span = None
        if tracer is not None:
            span = tracer.begin(
                "mirror.rebuild", track=self.name, cylinders=self.rebuild_cylinders
            )
        pages = 0
        completed = True
        for cylinder in range(self.rebuild_cylinders):
            src = self.sides[src_index]
            new = self.sides[new_index]
            if src.failed or new.failed:
                completed = False
                break
            addresses = [
                DiskAddress(cylinder, track, sector)
                for track in range(params.tracks_per_cylinder)
                for sector in range(params.pages_per_track)
            ]
            started = env.now
            read = src.submit("read", addresses, tag="rebuild")
            yield read.done
            if read.error is not None:
                completed = False
                break
            write = new.submit("write", addresses, tag="rebuild")
            yield write.done
            if write.error is not None:
                completed = False
                break
            pages += len(addresses)
            self.rebuilt_pages.increment(len(addresses))
            busy = env.now - started
            share = self.rebuild_io_share
            if share < 1.0 and busy > 0.0:
                yield env.timeout(busy * (1.0 - share) / share)
        if completed and not self.sides[new_index].failed:
            self._stale[new_index] = False
            self.rebuilds_completed.increment()
            self._update_redundancy()
        if tracer is not None:
            tracer.end(span, pages=pages, completed=completed)

    # -- client API (duck-typed Disk surface) --------------------------------
    def submit(self, kind: str, addresses, tag: str = "") -> DiskRequest:
        """Enqueue a logical I/O; ``request.done`` fires when it finishes."""
        req = DiskRequest(self.env, kind, addresses, tag)
        self.accesses.increment()
        self.env.process(self._serve(req), name=f"{self.name}.req")
        return req

    def read(self, addresses, tag: str = "") -> DiskRequest:
        return self.submit("read", addresses, tag)

    def write(self, addresses, tag: str = "") -> DiskRequest:
        return self.submit("write", addresses, tag)

    def _serve(self, req: DiskRequest):
        if req.kind == "read":
            yield from self._serve_read(req)
        else:
            yield from self._serve_write(req)

    def _serve_read(self, req: DiskRequest):
        attempts = 0
        saw_corrupt = False
        for index in range(len(self.sides)):
            side = self.sides[index]
            if side.failed or self._stale[index]:
                continue
            attempts += 1
            inner = side.submit("read", req.addresses, req.tag)
            yield inner.done
            if inner.error is None and inner.corrupt:
                # This side returned rotted bits; mask with the twin and
                # leave the repair to the scrubber's next pass.
                saw_corrupt = True
                self.corrupt_masked.increment()
                continue
            if inner.error is None:
                if index != 0 or attempts > 1:
                    # Served off the fallback side (or after a mid-service
                    # death) — the degraded-read counter survivetest reads.
                    self.fallback_reads.increment()
                self._finish(req)
                return
            # The side died while serving; fall through to its twin.
        if saw_corrupt:
            # Every surviving copy is rotted: surface the corruption to the
            # caller instead of silently returning bad bits.
            self._finish(req, corrupt=True)
            return
        self._finish(req, error="mirror-failed")

    def _serve_write(self, req: DiskRequest):
        inner = [
            self.sides[i].submit("write", req.addresses, req.tag)
            for i in self._live_sides()
        ]
        if not inner:
            self._finish(req, error="mirror-failed")
            return
        yield self.env.all_of([r.done for r in inner])
        if any(r.error is None and not r.torn for r in inner):
            self._finish(req)
        elif any(r.error is None for r in inner):
            # Every surviving copy tore: the logical write is torn too.
            self.torn_writes.increment()
            self._finish(req, torn=True)
        else:
            self._finish(req, error="mirror-failed")

    def _finish(
        self,
        req: DiskRequest,
        error: Optional[str] = None,
        torn: bool = False,
        corrupt: bool = False,
    ) -> None:
        req.error = error
        req.torn = torn
        req.corrupt = corrupt
        if error is not None:
            self.failed_requests.increment()
        req.done.succeed(self.env.now)

    # -- metrics -------------------------------------------------------------
    @property
    def pending(self) -> int:
        return sum(side.pending for side in self.sides)

    def utilization(self, t_end: Optional[float] = None) -> float:
        if not self.sides:
            return 0.0
        return sum(side.utilization(t_end) for side in self.sides) / len(self.sides)

    def extra_counters(self) -> dict:
        """Mirror-specific counters the machine folds into its RunResult."""
        return {
            "mirror_corrupt_masked": self.corrupt_masked.count,
            "mirror_fallback_reads": self.fallback_reads.count,
            "mirror_rebuilt_pages": self.rebuilt_pages.count,
            "mirror_rebuilds": self.rebuilds_completed.count,
            "mirror_lost_requests": self.failed_requests.count,
        }
