"""Hardware substrate: disks, processors, and interconnects, circa 1985.

The models are parametric; the constants shipped in :mod:`repro.hardware.params`
correspond to the paper's testbed — IBM 3350-class disk drives, VAX 11/750-class
query processors, and SURE/DBC-style parallel-access drives.
"""

from repro.hardware.disk import (
    ConventionalDisk,
    Disk,
    DiskAddress,
    DiskRequest,
    ParallelAccessDisk,
    make_disk,
)
from repro.hardware.interconnect import Interconnect
from repro.hardware.mirror import MirroredDisk
from repro.hardware.params import (
    IBM_3350,
    VAX_11_750,
    CostModel,
    CpuParams,
    DiskParams,
)
from repro.hardware.placement import (
    ClusteredPlacement,
    Placement,
    RingAllocator,
    ScrambledPlacement,
)

__all__ = [
    "ClusteredPlacement",
    "ConventionalDisk",
    "CostModel",
    "CpuParams",
    "Disk",
    "DiskAddress",
    "DiskParams",
    "DiskRequest",
    "IBM_3350",
    "Interconnect",
    "MirroredDisk",
    "ParallelAccessDisk",
    "Placement",
    "RingAllocator",
    "ScrambledPlacement",
    "VAX_11_750",
    "make_disk",
]
