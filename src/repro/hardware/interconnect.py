"""A simple shared interconnect: serialized transfers at a fixed bandwidth.

Used for the dedicated link between query processors and log processors
(paper Section 4.1.3).  The paper evaluates effective bandwidths of 1.0,
0.1, and 0.01 MB/s and finds the database machine insensitive to all of
them; our reproduction of that ablation uses this model.
"""

from __future__ import annotations

from repro.sim.core import Environment, Event, SimulationError
from repro.sim.monitor import CounterStat, UtilizationTracker
from repro.sim.resources import Resource

__all__ = ["Interconnect", "MessageLost"]


class MessageLost(SimulationError):
    """A transfer was dropped and every retransmission failed too."""


class Interconnect:
    """A bandwidth-limited interconnect with ``channels`` parallel lanes.

    ``channels=1`` models one shared half-duplex wire; larger values model
    dedicated point-to-point connections (the paper's "dedicated connection
    between the query and log processors" gives every query processor its
    own lane, which is why even a 0.01 MB/s effective bandwidth only delays
    individual fragments instead of congesting a shared bus).
    """

    def __init__(
        self,
        env: Environment,
        bandwidth_mb_per_s: float = 1.0,
        latency_ms: float = 0.0,
        channels: int = 1,
        name: str = "link",
    ):
        if bandwidth_mb_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if channels < 1:
            raise ValueError("need at least one channel")
        self.env = env
        self.name = name
        self.bandwidth_mb_per_s = bandwidth_mb_per_s
        self.latency_ms = latency_ms
        self.channels = channels
        self._channel = Resource(env, capacity=channels)
        #: duck-typed fault injector (``drop_message()`` predicate);
        #: assigned by whoever arms fault injection.  ``None`` = no faults.
        self.faults = None
        self.busy = UtilizationTracker(env.now, name=name)
        self.bytes_moved = CounterStat(f"{name}.bytes")
        self.messages_lost = CounterStat(f"{name}.lost")
        self.retransmissions = CounterStat(f"{name}.retransmissions")

    def transfer_ms(self, n_bytes: int) -> float:
        """Wire time for ``n_bytes``."""
        return self.latency_ms + n_bytes / (self.bandwidth_mb_per_s * 1000.0)

    def transfer(self, n_bytes: int) -> Event:
        """Start a transfer; the returned process-event fires on completion.

        The event's value is ``True`` if the message arrived, ``False`` if
        the interconnect dropped it (wire time is spent either way).
        Callers that just ``yield`` the event keep working unchanged; loss-
        aware callers use :meth:`reliable_transfer`.
        """
        return self.env.process(self._transfer(n_bytes), name=f"{self.name}.xfer")

    def _transfer(self, n_bytes: int):
        with self._channel.request() as req:
            yield req
            # Duck-typed tracer (repro.trace attaches itself via env.tracer;
            # the literal name is registered in the span catalogue).
            tracer = getattr(self.env, "tracer", None)
            span = None
            if tracer is not None:
                span = tracer.begin("link.transfer", track=self.name, n_bytes=n_bytes)
            self.busy.start(self.env.now)
            yield self.env.timeout(self.transfer_ms(n_bytes))
            self.busy.stop(self.env.now)
            if tracer is not None:
                tracer.end(span)
            if self.faults is not None and self.faults.drop_message():
                self.messages_lost.increment()
                return False
            self.bytes_moved.increment(n_bytes)
            return True

    def reliable_transfer(
        self, n_bytes: int, max_retries: int = 4, backoff_ms: float = 1.0
    ) -> Event:
        """A transfer with bounded retransmission and linear backoff.

        The returned process-event fires when the message finally arrives;
        it *fails* with :class:`MessageLost` after ``max_retries``
        retransmissions all get dropped.
        """
        return self.env.process(
            self._reliable(n_bytes, max_retries, backoff_ms),
            name=f"{self.name}.rxfer",
        )

    def _reliable(self, n_bytes: int, max_retries: int, backoff_ms: float):
        for attempt in range(max_retries + 1):
            if attempt:
                self.retransmissions.increment()
                yield self.env.timeout(backoff_ms * attempt)
            delivered = yield self.transfer(n_bytes)
            if delivered:
                return True
        raise MessageLost(
            f"{self.name}: message lost after {max_retries} retransmissions"
        )
