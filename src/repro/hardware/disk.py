"""Timed disk models: conventional and parallel-access drives.

Both models are simulation processes that serve a FIFO request queue.  A
request names one or more page addresses; the ``done`` event fires when the
transfer completes.

* :class:`ConventionalDisk` (IBM 3350-like) moves one page per head pass.
  Head position is tracked so that *sequentially adjacent* pages stream with
  transfer-only cost, same-cylinder pages pay rotational latency only, and
  anything else pays a distance-dependent seek.
* :class:`ParallelAccessDisk` (SURE / DBC-like) reads or writes **all pages
  of one cylinder in a single access**: every track has its own head, so a
  batch of pages in one cylinder costs one seek + latency + at most one
  rotation.  The server coalesces queued same-kind, same-cylinder requests
  into one access — this is what makes sequential scans and batched
  write-backs dramatically cheaper, the effect driving the paper's
  parallel-sequential results.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.hardware.params import DiskParams
from repro.sim.core import Environment, Event, SimulationError
from repro.sim.monitor import CounterStat, TimeWeightedStat, UtilizationTracker
from repro.sim.rng import RandomStreams

__all__ = [
    "ConventionalDisk",
    "Disk",
    "DiskAddress",
    "DiskFailure",
    "DiskRequest",
    "ParallelAccessDisk",
    "make_disk",
    "split_by_cylinder",
]


class DiskFailure(SimulationError):
    """A request completed with an error (the disk died)."""


class DiskAddress(NamedTuple):
    """Physical position of one page on a disk."""

    cylinder: int
    track: int
    sector: int

    def linear(self, params: DiskParams) -> int:
        """Position in the disk's total page ordering."""
        return (
            self.cylinder * params.pages_per_cylinder
            + self.track * params.pages_per_track
            + self.sector
        )

    @staticmethod
    def from_linear(index: int, params: DiskParams) -> "DiskAddress":
        """Inverse of :meth:`linear`."""
        if index < 0 or index >= params.capacity_pages:
            raise ValueError(
                f"page index {index} outside disk capacity {params.capacity_pages}"
            )
        cylinder, rest = divmod(index, params.pages_per_cylinder)
        track, sector = divmod(rest, params.pages_per_track)
        return DiskAddress(cylinder, track, sector)


class DiskRequest:
    """One queued I/O: a kind, a set of page addresses, a completion event."""

    __slots__ = (
        "kind",
        "addresses",
        "done",
        "tag",
        "submitted_at",
        "error",
        "torn",
        "corrupt",
    )

    def __init__(
        self,
        env: Environment,
        kind: str,
        addresses: Sequence[DiskAddress],
        tag: str = "",
    ):
        if kind not in ("read", "write"):
            raise SimulationError(f"unknown request kind {kind!r}")
        if not addresses:
            raise SimulationError("request with no addresses")
        self.kind = kind
        self.addresses: Tuple[DiskAddress, ...] = tuple(addresses)
        self.done: Event = env.event()
        self.tag = tag
        self.submitted_at = env.now
        #: set when the request failed (disk death) instead of completing.
        self.error: Optional[str] = None
        #: set when a write reached the platter only partially (media fault);
        #: the caller must treat the page as not durably written.
        self.torn = False
        #: set when a read returned data from a rotted sector (silent
        #: corruption the checksum layer would reject); the scrubber and
        #: the mirror fallback path react to it.
        self.corrupt = False

    @property
    def n_pages(self) -> int:
        return len(self.addresses)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.torn and not self.corrupt


class Disk:
    """Common queueing/metrics machinery; service policy lives in subclasses."""

    parallel_access = False

    def __init__(
        self,
        env: Environment,
        params: DiskParams,
        name: str = "disk",
        rng: Optional[random.Random] = None,
    ):
        self.env = env
        self.params = params
        self.name = name
        # Latency samples come from a named stream even when the caller does
        # not wire one up, so stand-alone disks stay reproducible too.
        self.rng = rng if rng is not None else RandomStreams(0).stream(f"disk.{name}")
        self._queue: Deque[DiskRequest] = deque()
        self._wakeup: Optional[Event] = None
        self._head_cylinder = 0
        self._head_linear = -2  # "nowhere": first access never streams
        #: duck-typed fault injector (``torn_write(target)`` predicate);
        #: assigned by whoever arms fault injection.  ``None`` = no faults.
        self.faults = None
        self.failed = False
        #: Linear page index -> simulation time its stored bits rotted in
        #: place (latent sector errors); a full rewrite of a sector clears
        #: it.  The rot time is what the scrubber's detection-latency
        #: accounting measures against.
        self.corrupt_sectors: dict = {}
        self.busy = UtilizationTracker(env.now, name=name)
        self.queue_length = TimeWeightedStat(env.now, 0, name=f"{name}.queue")
        self.accesses = CounterStat(f"{name}.accesses")
        self.pages_read = CounterStat(f"{name}.pages_read")
        self.pages_written = CounterStat(f"{name}.pages_written")
        self.torn_writes = CounterStat(f"{name}.torn_writes")
        self.failed_requests = CounterStat(f"{name}.failed_requests")
        self.rotted_sectors = CounterStat(f"{name}.rotted_sectors")
        self.corrupt_reads = CounterStat(f"{name}.corrupt_reads")
        env.process(self._server(), name=f"{name}.server")

    # -- client API ---------------------------------------------------------
    def submit(
        self, kind: str, addresses: Sequence[DiskAddress], tag: str = ""
    ) -> DiskRequest:
        """Enqueue an I/O; ``request.done`` fires when it finishes."""
        req = DiskRequest(self.env, kind, addresses, tag)
        if self.failed:
            req.error = "disk-failed"
            self.failed_requests.increment()
            req.done.succeed(self.env.now)
            return req
        self._queue.append(req)
        self.queue_length.update(self.env.now, len(self._queue))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return req

    def fail(self) -> None:
        """The disk dies: queued and future requests complete with an error.

        A request already in service also errors out when its (wasted)
        service time elapses — the head crashed mid-transfer.
        """
        if self.failed:
            return
        self.failed = True
        while self._queue:
            req = self._queue.popleft()
            req.error = "disk-failed"
            self.failed_requests.increment()
            req.done.succeed(self.env.now)
        self.queue_length.update(self.env.now, 0)

    def read(self, addresses: Sequence[DiskAddress], tag: str = "") -> DiskRequest:
        return self.submit("read", addresses, tag)

    def write(self, addresses: Sequence[DiskAddress], tag: str = "") -> DiskRequest:
        return self.submit("write", addresses, tag)

    @property
    def pending(self) -> int:
        """Number of requests waiting (not counting one in service)."""
        return len(self._queue)

    def utilization(self, t_end: Optional[float] = None) -> float:
        return self.busy.utilization(t_end if t_end is not None else self.env.now)

    # -- server ---------------------------------------------------------------
    def _server(self):
        env = self.env
        while True:
            # ``while``, not ``if``: a disk failure can drain the queue
            # between the wakeup firing and the server resuming.
            while not self._queue:
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None
            batch = self._select_batch()
            self.queue_length.update(env.now, len(self._queue))
            service = self._service_time(batch)
            # Duck-typed tracer (repro.trace attaches itself via env.tracer;
            # the literal name is registered in the span catalogue).
            tracer = getattr(env, "tracer", None)
            span = None
            if tracer is not None:
                span = tracer.begin(
                    "disk.service",
                    track=self.name,
                    kind=batch[0].kind,
                    tag=batch[0].tag,
                    pages=sum(r.n_pages for r in batch),
                )
            self.busy.start(env.now)
            yield env.timeout(service)
            self.busy.stop(env.now)
            if tracer is not None:
                tracer.end(span)
            self.accesses.increment()
            for req in batch:
                if self.failed:
                    req.error = "disk-failed"
                    self.failed_requests.increment()
                elif req.kind == "write":
                    if self.faults is not None and self.faults.torn_write():
                        req.torn = True
                        self.torn_writes.increment()
                    self._settle_rot(req, tracer)
                elif self.corrupt_sectors and self._hits_rot(req):
                    req.corrupt = True
                    self.corrupt_reads.increment()
                counter = self.pages_read if req.kind == "read" else self.pages_written
                counter.increment(req.n_pages)
                req.done.succeed(env.now)

    def _select_batch(self) -> List[DiskRequest]:
        raise NotImplementedError

    def _service_time(self, batch: List[DiskRequest]) -> float:
        raise NotImplementedError

    # -- silent corruption (latent sector errors) ------------------------------
    def _settle_rot(self, req: DiskRequest, tracer) -> None:
        """Apply the bit-rot model to one completed write.

        Each written sector either rots in place (a per-sector draw from
        the injector's dedicated ``corrupt`` stream) or, being freshly and
        fully rewritten, sheds any rot it carried — which is exactly how
        the scrubber's repair writes heal a sector.  Without BIT_ROT specs
        the injector returns False without drawing, so clean runs make no
        extra random draws and stay byte-identical.
        """
        for addr in req.addresses:
            linear = addr.linear(self.params)
            if self.faults is not None and self.faults.bit_rot():
                if linear not in self.corrupt_sectors:
                    self.corrupt_sectors[linear] = self.env.now
                    self.rotted_sectors.increment()
                    if tracer is not None:
                        tracer.instant(
                            "corrupt.inject", track=self.name, sector=linear
                        )
            else:
                self.corrupt_sectors.pop(linear, None)

    def _hits_rot(self, req: DiskRequest) -> bool:
        return any(
            addr.linear(self.params) in self.corrupt_sectors
            for addr in req.addresses
        )

    # -- shared timing helpers -------------------------------------------------
    def _seek_to(self, cylinder: int) -> float:
        cost = self.params.seek_ms(abs(cylinder - self._head_cylinder))
        self._head_cylinder = cylinder
        return cost

    def _latency_sample(self) -> float:
        return self.rng.uniform(0.0, self.params.rotation_ms)


class ConventionalDisk(Disk):
    """One request per access; adjacency *within* a request streams.

    Across requests the head always pays a fresh rotational latency: a
    1985-era controller finishes one transfer, interrupts the host, and by
    the time the next command arrives the target sector has passed under
    the head.  Multi-page requests chain transfers, so batched sequential
    I/O (a scratch-ring dump, a physical log record of two pages) is cheap
    while page-at-a-time sequential reads still pay latency each time.

    ``scheduling`` selects the queue discipline: ``"fcfs"`` (the default,
    and what the paper's era of controllers did) or ``"sstf"``
    (shortest-seek-time-first, an extension for ablation studies — it
    reduces seek time under concurrent transaction streams at some
    fairness cost).
    """

    def __init__(self, *args, scheduling: str = "fcfs", **kwargs):
        if scheduling not in ("fcfs", "sstf"):
            raise SimulationError(f"unknown scheduling policy {scheduling!r}")
        super().__init__(*args, **kwargs)
        self.scheduling = scheduling

    def _select_batch(self) -> List[DiskRequest]:
        if self.scheduling == "fcfs" or len(self._queue) == 1:
            return [self._queue.popleft()]
        nearest = min(
            range(len(self._queue)),
            key=lambda i: abs(
                self._queue[i].addresses[0].cylinder - self._head_cylinder
            ),
        )
        request = self._queue[nearest]
        del self._queue[nearest]
        return [request]

    def _service_time(self, batch: List[DiskRequest]) -> float:
        (req,) = batch
        self._head_linear = -2  # no streaming carry-over between requests
        total = 0.0
        for addr in req.addresses:
            total += self._page_time(addr)
        return total

    def _page_time(self, addr: DiskAddress) -> float:
        params = self.params
        linear = addr.linear(params)
        cost = 0.0
        if addr.cylinder != self._head_cylinder:
            cost += self._seek_to(addr.cylinder)
            cost += self._latency_sample()
        elif linear != self._head_linear + 1:
            # Same cylinder, not the next sector: wait for it to come around.
            cost += self._latency_sample()
        # else: streaming the next sequential page, transfer only.
        cost += params.transfer_ms
        self._head_linear = linear
        return cost


class ParallelAccessDisk(Disk):
    """All pages of one cylinder are transferable in a single access."""

    parallel_access = True

    def _select_batch(self) -> List[DiskRequest]:
        first = self._queue.popleft()
        cylinder = self._request_cylinder(first)
        batch = [first]
        survivors: Deque[DiskRequest] = deque()
        while self._queue:
            req = self._queue.popleft()
            if req.kind == first.kind and self._request_cylinder(req) == cylinder:
                batch.append(req)
            else:
                survivors.append(req)
        self._queue = survivors
        return batch

    def _request_cylinder(self, req: DiskRequest) -> int:
        cylinders = {addr.cylinder for addr in req.addresses}
        if len(cylinders) != 1:
            raise SimulationError(
                f"parallel-access request spans cylinders {sorted(cylinders)}; "
                "split requests with split_by_cylinder()"
            )
        return next(iter(cylinders))

    def _service_time(self, batch: List[DiskRequest]) -> float:
        params = self.params
        cylinder = self._request_cylinder(batch[0])
        sectors = {addr.sector for req in batch for addr in req.addresses}
        cost = 0.0
        if cylinder != self._head_cylinder:
            cost += self._seek_to(cylinder)
        cost += self._latency_sample()
        # Every track has a head: a sector position streams all tracks at once;
        # hitting every position costs at most one rotation.
        cost += min(len(sectors) * params.transfer_ms, params.rotation_ms)
        self._head_linear = -2  # no streaming carry-over between accesses
        return cost


def make_disk(
    env: Environment,
    params: DiskParams,
    parallel: bool,
    name: str = "disk",
    rng: Optional[random.Random] = None,
    scheduling: str = "fcfs",
) -> Disk:
    """Factory: conventional or parallel-access drive.

    ``scheduling`` applies to conventional drives only (parallel-access
    drives already coalesce whole cylinders per access).
    """
    if parallel:
        return ParallelAccessDisk(env, params, name=name, rng=rng)
    return ConventionalDisk(env, params, name=name, rng=rng, scheduling=scheduling)


def split_by_cylinder(
    addresses: Iterable[DiskAddress],
) -> List[List[DiskAddress]]:
    """Group addresses into per-cylinder lists (parallel-disk request units)."""
    groups: dict = {}
    for addr in addresses:
        groups.setdefault(addr.cylinder, []).append(addr)
    return [groups[cyl] for cyl in sorted(groups)]
