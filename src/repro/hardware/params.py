"""Hardware parameter sets calibrated to the paper's testbed.

The paper models query processors after the VAX 11/750 and data disks after
the IBM 3350 (Section 4).  The constants below are the published-era device
characteristics; the derived anchors they produce are checked against the
paper's bare-machine numbers in ``EXPERIMENTS.md``:

* random page access on a 3350 ≈ avg seek (25 ms) + avg latency (8.4 ms) +
  4 KB transfer (≈ 4.2 ms) ≈ 37 ms, so the disk-bound conventional-random
  machine with two data disks runs at ≈ 18 ms/page — Table 1's anchor;
* a 0.65 MIPS VAX 11/750 scanning a 4 KB page (~100 tuples × ~300
  instructions) spends ≈ 46 ms of CPU per page, so the CPU-bound
  parallel-sequential machine with 25 QPs runs at ≈ 1.9 ms/page — Table 1's
  other anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "CpuParams", "DiskParams", "IBM_3350", "VAX_11_750"]


@dataclass(frozen=True)
class DiskParams:
    """Geometry and timing of a moving-head disk."""

    cylinders: int = 555
    tracks_per_cylinder: int = 30
    pages_per_track: int = 4
    page_size: int = 4096
    min_seek_ms: float = 10.0
    max_seek_ms: float = 50.0
    rotation_ms: float = 16.7

    @property
    def pages_per_cylinder(self) -> int:
        return self.tracks_per_cylinder * self.pages_per_track

    @property
    def capacity_pages(self) -> int:
        return self.cylinders * self.pages_per_cylinder

    @property
    def transfer_ms(self) -> float:
        """Time to transfer one page (a track sector) under the heads."""
        return self.rotation_ms / self.pages_per_track

    @property
    def avg_latency_ms(self) -> float:
        return self.rotation_ms / 2.0

    def seek_ms(self, distance: int) -> float:
        """Seek time for moving ``distance`` cylinders (0 = no seek)."""
        if distance < 0:
            raise ValueError(f"negative seek distance {distance}")
        if distance == 0:
            return 0.0
        span = max(self.cylinders - 1, 1)
        frac = min(distance, span) / span
        return self.min_seek_ms + (self.max_seek_ms - self.min_seek_ms) * frac

    def with_overrides(self, **kwargs) -> "DiskParams":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)


#: IBM 3350-class drive: 555 cylinders x 30 tracks; we model four 4 KB pages
#: per track (19 KB unformatted tracks), 3600 rpm, 10-50 ms seeks.
IBM_3350 = DiskParams()


@dataclass(frozen=True)
class CpuParams:
    """A query processor modeled by a flat MIPS rate."""

    mips: float = 0.65

    def ms(self, instructions: float) -> float:
        """Milliseconds needed to execute ``instructions``."""
        if instructions < 0:
            raise ValueError(f"negative instruction count {instructions}")
        return instructions / (self.mips * 1000.0)


#: VAX 11/750-class query processor (~0.65 MIPS).
VAX_11_750 = CpuParams()


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU costs, in instructions.

    These feed :class:`CpuParams` to get milliseconds.  The values are the
    calibration knobs of the reproduction; the rationale for each default is
    given inline.  All costs are per *page* unless noted.
    """

    #: Predicate scan over one 4 KB data page (~100 tuples x ~300 instr).
    #: At 0.65 MIPS this is ~46 ms, the paper's implied per-page CPU cost
    #: (25 QPs x 1.9 ms/page for the CPU-bound parallel-sequential machine).
    scan_page: int = 30_000
    #: Constructing the updated version of a page.
    update_page: int = 8_000
    #: Building one logical log fragment (record ids + byte diffs).
    build_log_fragment: int = 2_000
    #: Copying a full page image (physical logging before/after images).
    copy_page_image: int = 4_000
    #: Nested-loop set-difference of one result page against ONE D-file page.
    #: ~100 x 100 tuple comparisons at ~3.5 instructions each (the inner
    #: loop usually exits on the first field mismatch).
    set_difference_per_d_page: int = 35_000
    #: Merging A-file tuples into a scan (set-union part of (B u A) - D).
    union_merge: int = 5_000
    #: Choosing the current version from two timestamped copies.
    version_select: int = 1_000
    #: Probing one page-table entry in the page-table buffer.
    pt_lookup: int = 500

    def with_overrides(self, **kwargs) -> "CostModel":
        return replace(self, **kwargs)
