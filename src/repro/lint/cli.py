"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

Examples::

    python -m repro.lint src tests benchmarks
    python -m repro.lint --format json src
    python -m repro.lint --list-rules
    python -m repro.lint --rules DET01,API01 src
    python -m repro.lint --jobs 4 src tests benchmarks
    python -m repro.lint --call-graph callgraph.json src
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint.engine import LintEngine, all_rules
from repro.lint.reporters import render_json, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "reprolint: determinism & recovery-discipline static analysis "
            "for the repro tree (see docs/LINT.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=[], help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint with N worker processes (output identical to serial)",
    )
    parser.add_argument(
        "--call-graph",
        metavar="PATH",
        help="also write the module-level call graph as JSON to PATH",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for code, rule_cls in sorted(all_rules().items()):
            print(f"{code}: {rule_cls.summary}")
        return 0

    if not args.paths:
        print("error: no paths given (try: python -m repro.lint src tests benchmarks)")
        return 2

    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        # A typo'd path must not read as a clean lint run (CI would go green).
        print(f"error: no such path(s): {', '.join(missing)}")
        return 2

    selected = None
    if args.rules:
        selected = [code.strip() for code in args.rules.split(",") if code.strip()]
    try:
        engine = LintEngine(rules=selected)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2

    if args.jobs < 1:
        print("error: --jobs must be >= 1")
        return 2

    project = engine.load(args.paths)
    if args.jobs > 1:
        findings = engine.run_project_parallel(project, args.paths, args.jobs)
    else:
        findings = engine.run_project(project)

    if args.call_graph:
        import json

        from repro.lint.callgraph import project_callgraph

        with open(args.call_graph, "w", encoding="utf-8") as handle:
            json.dump(project_callgraph(project).to_json(), handle, indent=2)
            handle.write("\n")

    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings, checked_files=len(project.modules)))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
