"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.findings import Finding

__all__ = ["JSON_SCHEMA_VERSION", "render_json", "render_text"]

#: Bumped whenever the JSON shape changes; consumers should check it.
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], checked_files: int = 0) -> str:
    lines = [
        f"{finding.location()}: {finding.rule} {finding.message}"
        for finding in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun} in {checked_files} files")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], checked_files: int = 0) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files": checked_files,
        "count": len(findings),
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
