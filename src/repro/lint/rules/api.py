"""Public-API hygiene rules.

API01: every module under ``repro`` declares ``__all__`` and keeps it
consistent — every listed name exists at module top level, and every
public top-level class/function is listed (or renamed with a leading
underscore).  A drifting ``__all__`` makes ``from repro.x import *`` and
the docs lie about the API.

API02: imports respect the package layering.  The simulation kernel sits
at the bottom; hardware above it; the functional storage engine, metrics,
and workload are independent mid-layers; the machine binds them; the
architectures plug into the machine; analysis/experiments drive it; the
CLI sits on top.  An upward or sideways import (``experiments`` reaching
into ``sim`` internals is fine — reaching *up* from ``sim`` into
``machine`` is not) tangles layers and breaks the ability to test each in
isolation.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.engine import ModuleContext, Project, Rule, register

__all__ = ["Api01DunderAll", "Api02Layering"]


def _literal_all(tree: ast.Module) -> Optional[Tuple]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                        isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                        for elt in node.value.elts
                    ):
                        return node, [elt.value for elt in node.value.elts]
                    return node, None
    return None


def _top_level_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (descending into if/try blocks)."""
    names: Set[str] = set()

    def scan(body) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            names.add(leaf.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
            elif isinstance(node, ast.If):
                scan(node.body)
                scan(node.orelse)
            elif isinstance(node, ast.Try):
                scan(node.body)
                scan(node.orelse)
                for handler in node.handlers:
                    scan(handler.body)
                scan(node.finalbody)

    scan(tree.body)
    return names


@register
class Api01DunderAll(Rule):
    code = "API01"
    summary = "__all__ present and consistent with the module's public names"

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if not module.in_package("repro"):
            return
        if module.basename == "__main__.py":
            return  # scripts, not APIs
        found = _literal_all(module.tree)
        if found is None:
            yield module.finding(
                self.code, module.tree, "module has no __all__ declaration"
            )
            return
        node, exported = found
        if exported is None:
            yield module.finding(
                self.code, node, "__all__ must be a literal list/tuple of strings"
            )
            return
        bound = _top_level_bindings(module.tree)
        for name in exported:
            if name not in bound:
                yield module.finding(
                    self.code, node, f"__all__ lists {name!r} which is not defined"
                )
        listed = set(exported)
        for item in module.tree.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and not item.name.startswith("_")
                and item.name not in listed
            ):
                yield module.finding(
                    self.code,
                    item,
                    f"public {item.name!r} missing from __all__ "
                    "(export it or rename with a leading underscore)",
                )


#: Subpackage -> layer.  A module may import repro.<x> only when <x> is its
#: own subpackage or a strictly lower layer.
_LAYERS = {
    "jobs": -1,  # pure-stdlib fan-out utility: below everything
    "sim": 0,
    "lint": 0,
    "checkpoint": 0,
    "integrity": 0,  # checksum primitives: storage and hardware both import
    "hardware": 1,
    "metrics": 1,
    "storage": 1,
    "trace": 1,
    "workload": 1,
    "core": 2,
    "faults": 2,
    "machine": 3,
    "analysis": 4,
    "bench": 4,
    "resilience": 4,
    "experiments": 4,
    "loadgen": 4,
    "cli": 5,
}


def _subpackage(package: str) -> Optional[str]:
    parts = package.split(".")
    if not parts or parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def _type_checking_linenos(tree: ast.Module) -> Set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` blocks (hint-only imports)."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If):
            test = node.test
            is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
                isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
            )
            if is_tc:
                for child in node.body:
                    for sub in ast.walk(child):
                        if hasattr(sub, "lineno"):
                            lines.add(sub.lineno)
    return lines


@register
class Api02Layering(Rule):
    code = "API02"
    summary = "imports must not reach upward (or sideways) across repro layers"

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        own = _subpackage(module.package)
        if own is None or own not in _LAYERS:
            return
        own_level = _LAYERS[own]
        hint_only = _type_checking_linenos(module.tree)
        for node in ast.walk(module.tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                targets = [node.module]
            for target in targets:
                sub = _subpackage(target) if target.startswith("repro") else None
                if sub is None or sub == own or sub not in _LAYERS:
                    continue
                if _LAYERS[sub] >= own_level and node.lineno not in hint_only:
                    yield module.finding(
                        self.code,
                        node,
                        f"layer violation: repro.{own} (layer {own_level}) "
                        f"imports repro.{sub} (layer {_LAYERS[sub]})",
                    )
