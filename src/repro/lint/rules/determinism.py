"""Determinism rules: the paper's paired-run methodology in lint form.

The reproduction compares architecture variants with *common random
numbers* (``sim/rng.py``) over a deterministic event calendar
(``sim/core.py``).  Anything that injects ambient entropy — the global
``random`` module, wall-clock time, ``uuid`` — or iterates a ``set`` into
a scheduling decision silently breaks pairing between runs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.astutil import ImportMap, attribute_chain, functions_in, ordered_walk
from repro.lint.engine import ModuleContext, Project, Rule, register

__all__ = ["Det01AmbientEntropy", "Det02SetIteration", "Det03ProcessYields"]

#: Calling *anything* from these modules is ambient entropy or identity.
_FORBIDDEN_MODULES = {"random", "uuid"}
#: ``time`` also has benign members (``sleep`` is still banned in a
#: simulator, struct helpers are fine); ban the clock readers explicitly.
_TIME_FUNCS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "clock",
    "sleep",
}
#: Wall-clock constructors on ``datetime.datetime`` / ``datetime.date``.
_DATETIME_FUNCS = {"now", "utcnow", "today"}


@register
class Det01AmbientEntropy(Rule):
    code = "DET01"
    summary = (
        "no direct random/time/datetime/uuid use in src/repro — go through "
        "RandomStreams and Environment.now"
    )

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if not module.in_package("repro"):
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.origin(node.func)
            if origin is None:
                continue
            parts = origin.split(".")
            message = None
            if parts[0] in _FORBIDDEN_MODULES:
                message = (
                    f"call into the {parts[0]!r} module; draw from a named "
                    "RandomStreams stream instead"
                )
            elif parts[0] == "time" and len(parts) > 1 and parts[1] in _TIME_FUNCS:
                message = (
                    f"wall-clock call time.{parts[1]}(); simulation time is "
                    "Environment.now"
                )
            elif (
                parts[0] == "datetime"
                and parts[-1] in _DATETIME_FUNCS
                and (len(parts) == 2 or parts[1] in ("datetime", "date"))
            ):
                message = (
                    f"wall-clock call {origin}(); simulation time is "
                    "Environment.now"
                )
            if message is not None:
                yield module.finding(self.code, node, message)


def _is_set_like(expr: ast.AST, set_names: Set[str]) -> bool:
    """Locally-inferable 'this expression is a set' check."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in set_names
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_like(expr.left, set_names) or _is_set_like(expr.right, set_names)
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name) and expr.func.id in ("set", "frozenset"):
            return True
        if isinstance(expr.func, ast.Attribute):
            attr = expr.func.attr
            if attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
                "copy",
            ) and _is_set_like(expr.func.value, set_names):
                return True
            # dict.setdefault(key, set()) / dict.get(key, set()) return the set
            if attr in ("setdefault", "get") and len(expr.args) >= 2:
                return _is_set_like(expr.args[1], set_names)
    return False


@register
class Det02SetIteration(Rule):
    code = "DET02"
    summary = "no iteration over set values — set order is nondeterministic"

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if not (module.in_package("repro") or module.in_package("benchmarks")):
            return
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(functions_in(module.tree))
        for scope in scopes:
            yield from self._check_scope(module, scope)

    def _check_scope(self, module: ModuleContext, scope: ast.AST) -> Iterator:
        set_names: Set[str] = set()
        for node in ordered_walk(scope):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        if _is_set_like(value, set_names):
                            set_names.add(target.id)
                        else:
                            set_names.discard(target.id)
        for node in ordered_walk(scope):
            iters: List[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_like(it, set_names):
                    yield module.finding(
                        self.code,
                        it,
                        "iterating a set: order varies between runs/interpreters; "
                        "wrap in sorted(...)",
                    )


#: yield of one of these is clearly not an Event.
_BAD_BUILTINS = {
    "len",
    "sorted",
    "sum",
    "min",
    "max",
    "list",
    "tuple",
    "dict",
    "set",
    "frozenset",
    "str",
    "int",
    "float",
    "bool",
    "range",
    "enumerate",
    "zip",
    "abs",
    "round",
}


@register
class Det03ProcessYields(Rule):
    code = "DET03"
    summary = (
        "generators handed to Environment.process must yield Event objects only"
    )

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if not module.in_package("repro"):
            return
        targets = self._process_targets(module.tree)
        if not targets:
            return
        for func in functions_in(module.tree):
            if func.name not in targets:
                continue
            yields = [
                node
                for node in ordered_walk(func)
                if isinstance(node, (ast.Yield, ast.YieldFrom))
            ]
            if not yields:
                yield module.finding(
                    self.code,
                    func,
                    f"{func.name}() is passed to Environment.process but is "
                    "not a generator",
                )
                continue
            for node in yields:
                if isinstance(node, ast.YieldFrom):
                    continue
                value = node.value
                if value is None:
                    continue  # bare yield (unreachable-generator idiom)
                if self._clearly_not_event(value):
                    yield module.finding(
                        self.code,
                        node,
                        f"process {func.name}() yields a non-Event value; "
                        "yield timeouts, requests, or other Event objects",
                    )

    @staticmethod
    def _process_targets(tree: ast.Module) -> Dict[str, bool]:
        """Names of local functions whose calls are passed to ``*.process``."""
        targets: Dict[str, bool] = {}
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "process"
                and node.args
            ):
                continue
            arg = node.args[0]
            if not isinstance(arg, ast.Call):
                continue
            name: Optional[str] = None
            if isinstance(arg.func, ast.Name):
                name = arg.func.id
            elif isinstance(arg.func, ast.Attribute):
                name = arg.func.attr
            if name:
                targets[name] = True
        return targets

    @staticmethod
    def _clearly_not_event(value: ast.AST) -> bool:
        if isinstance(value, ast.Constant):
            return value.value is not None
        if isinstance(
            value,
            (
                ast.JoinedStr,
                ast.List,
                ast.Tuple,
                ast.Dict,
                ast.Set,
                ast.ListComp,
                ast.DictComp,
                ast.SetComp,
                ast.GeneratorExp,
                ast.BinOp,
                ast.BoolOp,
                ast.UnaryOp,
                ast.Compare,
                ast.Lambda,
            ),
        ):
            return True
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _BAD_BUILTINS
        ):
            return True
        if isinstance(value, ast.Attribute) and value.attr == "now":
            return True  # env.now is a float, not an Event
        return False
