"""Trace-span hygiene: catalogued names (TRACE01) and balance (TR02).

The tracing subsystem validates names at record time, but a span only
recorded on a rare path (an abort, a crash, a checkpoint) would blow up
in production instead of in review.  TRACE01 statically requires every
``tracer.begin(...)`` / ``tracer.instant(...)`` call — and the machine's
``_tspan`` / ``_tinstant`` guard helpers — to pass a *string literal*
first argument, and, when the linted tree contains the catalogue module
(``repro.trace.names``), one of the names registered there.

TR02 is flow-sensitive: a span begun and bound to a local variable must
be ended on every CFG path to the function's *normal* exit (``finally``
blocks count — the CFG routes early returns and raises through them).
Exceptional exits are exempt: a machine crash legitimately cuts spans
open (``Tracer.open_spans`` documents them).  A span variable used for
anything besides ending it — returned, stored, passed on — escapes the
function's responsibility and is exempt too.  An unbalanced span breaks
the "breakdowns sum exactly" invariant the critical-path analysis rests
on (see docs/TRACE.md).

The catalogue is extracted from the module's AST (top-level string
constants), never imported: the linter sits at layer 0 and must not
execute higher-layer code.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import block_states
from repro.lint.engine import ModuleContext, Project, Rule, register

__all__ = ["Trace01CataloguedSpanNames", "Tr02SpanBalance"]

#: Methods on a tracer that take a span name as the first argument.
_TRACER_METHODS = ("begin", "instant")
#: The machine's guard helpers, called as ``self._tspan("name", ...)``.
_HELPER_METHODS = ("_tspan", "_tinstant")
#: Dotted module holding the catalogue constants.
_CATALOGUE_MODULE = "repro.trace.names"


def _catalogue_from(project: Project) -> Optional[Set[str]]:
    """Span names declared in the project's catalogue module, or None.

    Reads top-level ``NAME = "literal"`` assignments from the module's
    AST — the same constants ``repro.trace.names.CATALOGUE`` collects at
    runtime — without importing anything.
    """
    module = project.module(_CATALOGUE_MODULE)
    if module is None or module.tree is None:
        return None
    names: Set[str] = set()
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
            names.add(node.value.value)
    return names or None


def _is_span_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _HELPER_METHODS:
        return True
    if func.attr not in _TRACER_METHODS:
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id == "tracer"
    if isinstance(receiver, ast.Attribute):
        return receiver.attr == "tracer"
    return False


@register
class Trace01CataloguedSpanNames(Rule):
    code = "TRACE01"
    summary = "span names are string literals from the registered catalogue"

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if module.tree is None:
            return
        catalogue: Optional[Set[str]] = None
        catalogue_loaded = False
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_span_call(node)):
                continue
            if not node.args:
                # Name passed by keyword or missing; either way it dodges
                # both this check and the runtime validation — flag it.
                yield module.finding(
                    self.code,
                    node,
                    "span call without a positional name; pass the catalogue "
                    "name as a string literal first argument",
                )
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                yield module.finding(
                    self.code,
                    first,
                    "span name must be a string literal from "
                    "repro.trace.names (computed names defeat the static "
                    "catalogue check)",
                )
                continue
            if not catalogue_loaded:
                catalogue = _catalogue_from(project)
                catalogue_loaded = True
            if catalogue is not None and first.value not in catalogue:
                yield module.finding(
                    self.code,
                    first,
                    f"span name {first.value!r} is not registered in "
                    f"{_CATALOGUE_MODULE}; add it to the catalogue first",
                )


# ---------------------------------------------------------------------------
# TR02 — span balance on all CFG paths.
# ---------------------------------------------------------------------------

#: Span-opening calls: the machine helper, or ``<tracer>.begin``.
_BEGIN_METHODS = ("_tspan",)
#: Span-closing calls: the machine helper, or ``<tracer>.end``.
_END_METHODS = ("_tend",)


def _is_begin_call(node: ast.AST) -> bool:
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    if node.func.attr in _BEGIN_METHODS:
        return True
    return node.func.attr == "begin" and _is_tracer_receiver(node.func.value)


def _is_end_call(node: ast.AST) -> bool:
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    if node.func.attr in _END_METHODS:
        return True
    return node.func.attr == "end" and _is_tracer_receiver(node.func.value)


def _is_tracer_receiver(receiver: ast.AST) -> bool:
    if isinstance(receiver, ast.Name):
        return receiver.id == "tracer"
    if isinstance(receiver, ast.Attribute):
        return receiver.attr == "tracer"
    return False


def _begin_assignments(func: ast.FunctionDef) -> Dict[str, List[ast.Assign]]:
    """Variable name -> its ``var = <begin call>`` assignment statements."""
    out: Dict[str, List[ast.Assign]] = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _is_begin_call(node.value)
        ):
            out.setdefault(node.targets[0].id, []).append(node)
    return out


def _escapes(func: ast.FunctionDef, var: str) -> bool:
    """True when ``var`` is used beyond begin-assign / end-call-argument —
    returned, stored elsewhere, reassigned, passed along: the span's
    lifetime escapes this function and TR02 cannot judge it."""
    allowed_loads = set()
    allowed_stores = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == var and _is_begin_call(
                node.value
            ):
                allowed_stores.add(id(target))
        if _is_end_call(node) and node.args:
            first = node.args[0]
            if isinstance(first, ast.Name) and first.id == var:
                allowed_loads.add(id(first))
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id == var:
            if isinstance(node.ctx, ast.Load) and id(node) not in allowed_loads:
                return True
            if isinstance(node.ctx, ast.Store) and id(node) not in allowed_stores:
                return True
            if isinstance(node.ctx, ast.Del):
                return True
    return False


def _span_name(assign: ast.Assign) -> str:
    call = assign.value
    if call.args and isinstance(call.args[0], ast.Constant):
        return repr(call.args[0].value)
    return "<computed>"


@register
class Tr02SpanBalance(Rule):
    code = "TR02"
    summary = (
        "a span bound to a local must be ended on every non-exceptional CFG "
        "path (finally-aware); crash-cut exceptional paths are exempt"
    )

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if module.tree is None:
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            begins = _begin_assignments(func)
            if not begins:
                continue
            cfg = None
            for var, assigns in sorted(begins.items()):
                if _escapes(func, var):
                    continue
                if cfg is None:
                    cfg = build_cfg(func)
                yield from self._check_var(module, func, cfg, var, assigns)

    def _check_var(self, module, func, cfg, var, assigns) -> Iterator:
        assign_ids = {id(a) for a in assigns}

        def transfer(state: bool, element: ast.AST) -> bool:
            if id(element) in assign_ids:
                return True
            for node in ast.walk(element):
                if _is_end_call(node) and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Name) and first.id == var:
                        return False
            return state

        entry = block_states(cfg, transfer, False)
        # Re-begin while open (a loop body that begins without ending).
        for block in cfg.reachable():
            if block.bid not in entry:
                continue
            for start in sorted(entry[block.bid]):
                state = start
                for element in block.elements:
                    if id(element) in assign_ids and state:
                        yield module.finding(
                            self.code,
                            element,
                            f"{func.name}() re-begins span {var!r} "
                            f"({_span_name(element)}) while a previous begin "
                            "is still open on this path",
                        )
                    state = transfer(state, element)
        # Open at the normal exit.
        open_at_exit = False
        for pred in cfg.exit.preds:
            if pred.bid not in entry:
                continue
            for state in entry[pred.bid]:
                for element in pred.elements:
                    state = transfer(state, element)
                if state:
                    open_at_exit = True
        if open_at_exit:
            anchor = min(assigns, key=lambda a: a.lineno)
            yield module.finding(
                self.code,
                anchor,
                f"{func.name}() can return with span {var!r} "
                f"({_span_name(anchor)}) still open; end it on every "
                "non-exceptional path (a finally block keeps early returns "
                "balanced)",
            )
