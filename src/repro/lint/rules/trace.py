"""Trace-span hygiene: span names come from the registered catalogue.

The tracing subsystem validates names at record time, but a span only
recorded on a rare path (an abort, a crash, a checkpoint) would blow up
in production instead of in review.  TRACE01 statically requires every
``tracer.begin(...)`` / ``tracer.instant(...)`` call — and the machine's
``_tspan`` / ``_tinstant`` guard helpers — to pass a *string literal*
first argument, and, when the linted tree contains the catalogue module
(``repro.trace.names``), one of the names registered there.

The catalogue is extracted from the module's AST (top-level string
constants), never imported: the linter sits at layer 0 and must not
execute higher-layer code.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.engine import ModuleContext, Project, Rule, register

__all__ = ["Trace01CataloguedSpanNames"]

#: Methods on a tracer that take a span name as the first argument.
_TRACER_METHODS = ("begin", "instant")
#: The machine's guard helpers, called as ``self._tspan("name", ...)``.
_HELPER_METHODS = ("_tspan", "_tinstant")
#: Dotted module holding the catalogue constants.
_CATALOGUE_MODULE = "repro.trace.names"


def _catalogue_from(project: Project) -> Optional[Set[str]]:
    """Span names declared in the project's catalogue module, or None.

    Reads top-level ``NAME = "literal"`` assignments from the module's
    AST — the same constants ``repro.trace.names.CATALOGUE`` collects at
    runtime — without importing anything.
    """
    module = project.module(_CATALOGUE_MODULE)
    if module is None or module.tree is None:
        return None
    names: Set[str] = set()
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
            names.add(node.value.value)
    return names or None


def _is_span_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _HELPER_METHODS:
        return True
    if func.attr not in _TRACER_METHODS:
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id == "tracer"
    if isinstance(receiver, ast.Attribute):
        return receiver.attr == "tracer"
    return False


@register
class Trace01CataloguedSpanNames(Rule):
    code = "TRACE01"
    summary = "span names are string literals from the registered catalogue"

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if module.tree is None:
            return
        catalogue: Optional[Set[str]] = None
        catalogue_loaded = False
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_span_call(node)):
                continue
            if not node.args:
                # Name passed by keyword or missing; either way it dodges
                # both this check and the runtime validation — flag it.
                yield module.finding(
                    self.code,
                    node,
                    "span call without a positional name; pass the catalogue "
                    "name as a string literal first argument",
                )
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                yield module.finding(
                    self.code,
                    first,
                    "span name must be a string literal from "
                    "repro.trace.names (computed names defeat the static "
                    "catalogue check)",
                )
                continue
            if not catalogue_loaded:
                catalogue = _catalogue_from(project)
                catalogue_loaded = True
            if catalogue is not None and first.value not in catalogue:
                yield module.finding(
                    self.code,
                    first,
                    f"span name {first.value!r} is not registered in "
                    f"{_CATALOGUE_MODULE}; add it to the catalogue first",
                )
