"""Flow-sensitive recovery-protocol rules (the paper's ordering disciplines).

These rules walk the CFGs from :mod:`repro.lint.cfg` instead of source
order, so a protection only counts on the paths it actually covers, and
they consult the call graph from :mod:`repro.lint.callgraph`, so a
discipline satisfied inside a helper still counts at the call site.

PROTO01 — write-ahead-log ordering (paper §3.2, §4): inside the
logging/differential architecture layer, every ``tag="writeback"`` stable
write must be *dominated* by securing the log — a ``force()`` call, a
``yield fragment.durable`` barrier wait, or consulting
``fragment.durable.triggered`` (the guard that proves the barrier already
fired).  Checked on every CFG path, interprocedurally: a call to a helper
that establishes protection on all of its paths counts, and a helper
whose every caller enters it protected is not re-flagged.

PROTO02 — shadow ordering (paper §3.3, §5): inside ``repro.core.shadow``,
the shadow/scratch copy (``tag="scratch"`` traffic, ``update_entry``,
``install``) must dominate the home overwrite, same machinery.

FP01 — fault-point coverage (ROADMAP norm, machine-checked): every method
on a ``RecoveryManager`` (``repro.storage``) that is reachable from the
commit / recover / checkpoint / garbage-collection entry points and that
directly mutates stable storage must cross a ``_fault_point(...)`` on
*all* non-exceptional paths — otherwise crashtest can never schedule a
crash inside that mutation window and the recovery discipline there is
untested.  A call to a helper that faults on all of its own paths counts.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.astutil import keyword_value, ordered_walk
from repro.lint.callgraph import CallGraph, FunctionInfo, project_callgraph
from repro.lint.cfg import build_cfg, CFG
from repro.lint.dataflow import block_states
from repro.lint.engine import ModuleContext, Project, Rule, register

__all__ = [
    "Proto01WalOrdering",
    "Proto02ShadowOrdering",
    "Fp01FaultPointCoverage",
]


def _element_nodes(element: ast.AST) -> Iterator[ast.AST]:
    """The element and its sub-expressions in source order (nested
    function/class definitions stay opaque, matching the CFG)."""
    yield element
    yield from ordered_walk(element)


# ---------------------------------------------------------------------------
# PROTO01 / PROTO02 — protection-dominates-home-write, interprocedural.
# ---------------------------------------------------------------------------

_FORCE_CALLS = {"force"}
_SHADOW_CALLS = {"update_entry", "install"}


def _call_tag(node: ast.AST) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    tag = keyword_value(node, "tag")
    if isinstance(tag, ast.Constant) and isinstance(tag.value, str):
        return tag.value
    return None


def _is_home_write(node: ast.AST) -> bool:
    return _call_tag(node) == "writeback"


def _is_wal_protection(node: ast.AST) -> bool:
    """Log forced, durable barrier awaited, or barrier state consulted."""
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and node.func.attr in _FORCE_CALLS:
            return True
    if isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr == "durable":
            return True
    # ``if not fragment.durable.triggered: yield fragment.durable`` — the
    # read itself proves the code consulted the barrier on both branches.
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "triggered"
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "durable"
    ):
        return True
    return False


def _is_shadow_protection(node: ast.AST) -> bool:
    """Scratch/shadow copy touched or page-table entry installed."""
    if _call_tag(node) == "scratch":
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and node.func.attr in _SHADOW_CALLS:
            return True
    return False


class _ProtectionAnalysis:
    """Shared interprocedural engine for the PROTO rules.

    State is one bit — "protection established on this path".  Two
    project-wide fixpoints, both monotone (bits only flip upward):

    * ``protects[f]``: every path through ``f`` to its normal exit
      establishes protection — a call to such a helper counts as
      protection at the call site.
    * ``entered_protected[f]``: every resolved call site of ``f`` is
      itself protected (and at least one exists) — such a helper is
      analyzed with a protected entry state, so its home writes are the
      callers' responsibility, already discharged.

    Functions with no resolved callers (the architecture hooks, driven by
    the machine layer) are entry points: analyzed entered-unprotected.
    """

    def __init__(self, project: Project, in_scope, is_protection):
        self.graph: CallGraph = project_callgraph(project)
        self.is_protection = is_protection
        self.funcs: Dict[str, FunctionInfo] = {
            qualname: info
            for qualname, info in self.graph.functions.items()
            if in_scope(info.module)
        }
        self.cfgs: Dict[str, CFG] = {
            qualname: build_cfg(info.node) for qualname, info in self.funcs.items()
        }
        self.protects: Dict[str, bool] = {qualname: False for qualname in self.funcs}
        self.entered_protected: Dict[str, bool] = {
            qualname: False for qualname in self.funcs
        }
        self._solve()

    # -- transfer ----------------------------------------------------------
    def _step(self, info: FunctionInfo, state: bool, element: ast.AST) -> bool:
        protected = state
        for node in _element_nodes(element):
            if self.is_protection(node):
                protected = True
            elif isinstance(node, ast.Call):
                callee = self.graph.resolve_call(info, node)
                if callee is not None and self.protects.get(callee, False):
                    protected = True
        return protected

    def _entry_states(self, qualname: str) -> Dict[int, FrozenSet[bool]]:
        info = self.funcs[qualname]
        transfer = lambda state, element: self._step(info, state, element)
        return block_states(
            self.cfgs[qualname], transfer, self.entered_protected[qualname]
        )

    # -- fixpoint ----------------------------------------------------------
    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            call_site_protected: Dict[str, List[bool]] = {}
            for qualname, info in self.funcs.items():
                cfg = self.cfgs[qualname]
                entry = self._entry_states(qualname)
                # protects[f]: all states reaching the normal exit are True.
                exit_states: Set[bool] = set()
                for pred in cfg.exit.preds:
                    if pred.bid not in entry:
                        continue
                    for state in entry[pred.bid]:
                        for element in pred.elements:
                            state = self._step(info, state, element)
                        exit_states.add(state)
                if exit_states and all(exit_states) and not self.protects[qualname]:
                    self.protects[qualname] = True
                    changed = True
                # Record the protection state at every resolved call site.
                for block in cfg.reachable():
                    if block.bid not in entry:
                        continue
                    for state in entry[block.bid]:
                        for element in block.elements:
                            self._collect_sites(
                                info, state, element, call_site_protected
                            )
                            state = self._step(info, state, element)
            for qualname in self.funcs:
                sites = call_site_protected.get(qualname)
                if sites and all(sites) and not self.entered_protected[qualname]:
                    self.entered_protected[qualname] = True
                    changed = True

    def _collect_sites(
        self,
        info: FunctionInfo,
        state: bool,
        element: ast.AST,
        out: Dict[str, List[bool]],
    ) -> None:
        protected = state
        for node in _element_nodes(element):
            if self.is_protection(node):
                protected = True
            elif isinstance(node, ast.Call):
                callee = self.graph.resolve_call(info, node)
                if callee is not None:
                    if callee in self.funcs:
                        out.setdefault(callee, []).append(protected)
                    if self.protects.get(callee, False):
                        protected = True

class _ProtoRule(Rule):
    """Base for PROTO01/PROTO02: same engine, different scope/protections."""

    discipline = ""  # human name of the missing protection

    def _in_scope(self, module: ModuleContext) -> bool:  # pragma: no cover
        raise NotImplementedError

    def _is_protection(self, node: ast.AST) -> bool:  # pragma: no cover
        raise NotImplementedError

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if module.tree is None or not self._in_scope(module):
            return
        analysis = self._analysis(project)
        for qualname, info in analysis.funcs.items():
            if info.module is not module:
                continue
            yield from self._check_function(module, analysis, qualname, info)

    def _analysis(self, project: Project) -> _ProtectionAnalysis:
        key = "_reprolint_proto_" + self.code
        cached = getattr(project, key, None)
        if cached is None:
            cached = _ProtectionAnalysis(
                project, self._in_scope, self._is_protection
            )
            setattr(project, key, cached)
        return cached

    def _check_function(
        self,
        module: ModuleContext,
        analysis: _ProtectionAnalysis,
        qualname: str,
        info: FunctionInfo,
    ) -> Iterator:
        entry = analysis._entry_states(qualname)
        flagged: Set[int] = set()
        for block in analysis.cfgs[qualname].reachable():
            if block.bid not in entry:
                continue
            for start in sorted(entry[block.bid]):
                protected = start
                for element in block.elements:
                    for node in _element_nodes(element):
                        if analysis.is_protection(node):
                            protected = True
                        elif isinstance(node, ast.Call):
                            callee = analysis.graph.resolve_call(info, node)
                            if callee is not None and analysis.protects.get(
                                callee, False
                            ):
                                protected = True
                            elif _is_home_write(node) and not protected:
                                if id(node) not in flagged:
                                    flagged.add(id(node))
                                    yield module.finding(
                                        self.code,
                                        node,
                                        f"{info.name}() writes a frame home "
                                        "(tag='writeback') on a path where no "
                                        f"{self.discipline} has been "
                                        "established",
                                    )
                                protected = True


@register
class Proto01WalOrdering(_ProtoRule):
    code = "PROTO01"
    summary = (
        "log force / durable-barrier wait must dominate every tag='writeback' "
        "home write in the logging architecture layer (checked on all CFG "
        "paths, through helpers)"
    )
    discipline = "log force or durable-barrier wait"

    def _in_scope(self, module: ModuleContext) -> bool:
        return (
            module.in_package("repro.core")
            and module.package != "repro.core.base"
            and not module.in_package("repro.core.shadow")
        )

    def _is_protection(self, node: ast.AST) -> bool:
        return _is_wal_protection(node)


@register
class Proto02ShadowOrdering(_ProtoRule):
    code = "PROTO02"
    summary = (
        "shadow/scratch install must dominate every tag='writeback' home "
        "overwrite in repro.core.shadow (checked on all CFG paths, through "
        "helpers)"
    )
    discipline = "shadow install or scratch copy"

    def _in_scope(self, module: ModuleContext) -> bool:
        return module.in_package("repro.core.shadow")

    def _is_protection(self, node: ast.AST) -> bool:
        return _is_shadow_protection(node)


# ---------------------------------------------------------------------------
# FP01 — fault-point coverage of stable-storage mutations.
# ---------------------------------------------------------------------------

_MANAGER_CLASS = "RecoveryManager"
#: Methods the crashtest harness drives — the roots of the reachability walk.
_ENTRY_NAMES = {"_do_commit", "_on_recover", "collect_garbage", "repair_corruption"}
#: Mutating methods on the stable-media object (repro.hardware mirrors this).
_STABLE_MUTATORS = {
    "write_page",
    "append",
    "extend",
    "truncate",
    "delete_page",
    "restore_page",
    "replace_record",
}


def _is_stable_mutation(node: ast.AST) -> bool:
    """A ``self.stable.<mutator>(...)`` call."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in _STABLE_MUTATORS
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "stable"
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id == "self"
    )


def _is_fault_point(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "_fault_point"
    )


def _is_entry_name(name: str) -> bool:
    return name in _ENTRY_NAMES or "checkpoint" in name


class _FaultAnalysis:
    """Project-wide FP01 computation, done once and cached.

    State is the pair ``(mutated, faulted)``.  A method fails when some
    path reaches the *normal* exit with ``mutated and not faulted`` —
    exceptional exits are exempt (a raise aborts the crashtest window
    anyway).  ``always_faults[f]`` (every normal path through ``f``
    crosses a fault point) lets a helper discharge the obligation for its
    caller.
    """

    def __init__(self, project: Project):
        self.graph = project_callgraph(project)
        managers = project.descendants_of(_MANAGER_CLASS) | {_MANAGER_CLASS}
        roots = [
            qualname
            for qualname, info in self.graph.functions.items()
            if info.module.in_package("repro.storage")
            and info.cls in managers
            and _is_entry_name(info.name)
        ]
        self.funcs: Dict[str, FunctionInfo] = {
            qualname: self.graph.functions[qualname]
            for qualname in self.graph.reachable_from(roots)
            if qualname in self.graph.functions
            and self.graph.functions[qualname].module.in_package("repro.storage")
        }
        self.cfgs: Dict[str, CFG] = {
            qualname: build_cfg(info.node) for qualname, info in self.funcs.items()
        }
        self.always_faults: Dict[str, bool] = {q: False for q in self.funcs}
        self._solve()
        #: module package -> findings as (anchor node, method name)
        self.violations: Dict[str, List[Tuple[ast.AST, str]]] = {}
        self._collect_violations()

    def _step(
        self, info: FunctionInfo, state: Tuple[bool, bool], element: ast.AST
    ) -> Tuple[bool, bool]:
        mutated, faulted = state
        for node in _element_nodes(element):
            if _is_fault_point(node):
                faulted = True
            elif _is_stable_mutation(node):
                mutated = True
            elif isinstance(node, ast.Call):
                callee = self.graph.resolve_call(info, node)
                if callee is not None and self.always_faults.get(callee, False):
                    faulted = True
        return (mutated, faulted)

    def _exit_states(self, qualname: str) -> Set[Tuple[bool, bool]]:
        info = self.funcs[qualname]
        cfg = self.cfgs[qualname]
        transfer = lambda state, element: self._step(info, state, element)
        entry = block_states(cfg, transfer, (False, False))
        out: Set[Tuple[bool, bool]] = set()
        for pred in cfg.exit.preds:
            if pred.bid not in entry:
                continue
            for state in entry[pred.bid]:
                for element in pred.elements:
                    state = self._step(info, state, element)
                out.add(state)
        return out

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for qualname in self.funcs:
                if self.always_faults[qualname]:
                    continue
                exits = self._exit_states(qualname)
                if exits and all(faulted for _, faulted in exits):
                    self.always_faults[qualname] = True
                    changed = True

    def _collect_violations(self) -> None:
        for qualname, info in self.funcs.items():
            exits = self._exit_states(qualname)
            if not any(mutated and not faulted for mutated, faulted in exits):
                continue
            anchor = self._anchor(qualname, info)
            self.violations.setdefault(info.module.package, []).append(
                (anchor, f"{info.cls + '.' if info.cls else ''}{info.name}")
            )

    def _anchor(self, qualname: str, info: FunctionInfo) -> ast.AST:
        """The first stable mutation reachable with no fault point yet —
        the most useful line to point at; falls back to the def line."""
        cfg = self.cfgs[qualname]
        transfer = lambda state, element: self._step(info, state, element)
        entry = block_states(cfg, transfer, (False, False))
        best: Optional[ast.AST] = None
        for block in cfg.reachable():
            if block.bid not in entry:
                continue
            for start in sorted(entry[block.bid]):
                state = start
                for element in block.elements:
                    if not state[1]:  # no fault point yet on this path
                        for node in _element_nodes(element):
                            if _is_stable_mutation(node):
                                if best is None or node.lineno < best.lineno:
                                    best = node
                                break
                    state = self._step(info, state, element)
        return best if best is not None else info.node


@register
class Fp01FaultPointCoverage(Rule):
    code = "FP01"
    summary = (
        "RecoveryManager methods reachable from commit/recover/checkpoint "
        "that mutate stable storage must cross a _fault_point on every "
        "non-exceptional path"
    )

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if module.tree is None or not module.in_package("repro.storage"):
            return
        analysis = self._analysis(project)
        for anchor, method in analysis.violations.get(module.package, ()):
            yield module.finding(
                self.code,
                anchor,
                f"{method} mutates stable storage on a path with no "
                "_fault_point(...) before the normal return; crashtest "
                "cannot probe this mutation window (see docs/FAULTS.md)",
            )

    @staticmethod
    def _analysis(project: Project) -> _FaultAnalysis:
        cached = getattr(project, "_reprolint_fp01", None)
        if cached is None:
            cached = _FaultAnalysis(project)
            project._reprolint_fp01 = cached
        return cached
