"""Rule modules; importing this package registers every built-in rule.

To add a rule: subclass :class:`repro.lint.engine.Rule`, decorate it with
:func:`repro.lint.engine.register`, and import its module here.
"""

from repro.lint.rules import (
    api,
    architecture,
    bench,
    determinism,
    protocol,
    rng,
    trace,
)

__all__ = ["api", "architecture", "bench", "determinism", "protocol", "rng", "trace"]
