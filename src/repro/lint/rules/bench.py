"""Benchmark reproducibility: pinned seeds, declarative grid specs.

The paper's tables are paired comparisons; a benchmark whose seed floats
produces numbers that cannot be compared across commits.  BENCH01
requires every ``benchmarks/bench_*.py`` to declare its seed explicitly.

BENCH02 is the stronger contract that supersedes it wherever a grid is
in play: every benchmark module must declare a :class:`repro.bench.Grid`
spec (directly, or through a ``benchmarks._harness`` factory) at module
level, with an explicit ``seed=`` keyword — that is what makes the
benchmark discoverable by ``repro bench``, gives its cells stable run
IDs, and puts it under the ``bench-diff`` trajectory gate.  A benchmark
outside the grid system is invisible to the perf trajectory, which is
exactly the regression BENCH02 exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.astutil import ImportMap
from repro.lint.engine import ModuleContext, Project, Rule, register

__all__ = ["Bench01DeclaredSeed", "Bench02GridSpec"]

#: Dotted origins that construct a grid spec.  ``Grid`` is the canonical
#: constructor; the ``_harness`` factories wrap it for the paper-table
#: benchmarks (they return a ``Grid`` and forward ``seed=``).
_GRID_FACTORIES = (
    "repro.bench.Grid",
    "repro.bench.spec.Grid",
    "benchmarks._harness.table_grid",
)


def _is_benchmark(module: ModuleContext) -> bool:
    name = module.basename
    return name.startswith("bench_") and name.endswith(".py")


def _grid_calls(module: ModuleContext) -> List[Tuple[ast.Assign, ast.Call]]:
    """Module-level ``NAME = Grid(...)`` (or factory) assignments."""
    imports = ImportMap(module.tree)
    found: List[Tuple[ast.Assign, ast.Call]] = []
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        origin = imports.origin(value.func)
        if origin in _GRID_FACTORIES:
            found.append((node, value))
    return found


def _keyword(call: ast.Call, name: str) -> Optional[ast.keyword]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword
    return None


@register
class Bench01DeclaredSeed(Rule):
    code = "BENCH01"
    summary = "every benchmarks/bench_*.py declares a seed"

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if not _is_benchmark(module):
            return
        if _grid_calls(module):
            # A declared grid pins its seed in the spec; BENCH02 owns
            # (and strengthens) the check from here.
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and "seed" in target.id.lower():
                        return
            elif isinstance(node, ast.Call):
                if any(kw.arg == "seed" for kw in node.keywords):
                    return
        yield module.finding(
            self.code,
            module.tree,
            "benchmark declares no seed (add a SEED constant or pass seed=...); "
            "unseeded runs cannot be compared across commits",
        )


@register
class Bench02GridSpec(Rule):
    code = "BENCH02"
    summary = (
        "every benchmarks/bench_*.py declares a repro.bench grid spec "
        "with an explicit seed"
    )

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if not _is_benchmark(module):
            return
        calls = _grid_calls(module)
        if not calls:
            yield module.finding(
                self.code,
                module.tree,
                "benchmark declares no repro.bench grid spec (assign "
                "GRID = Grid(...) or a benchmarks._harness factory at module "
                "level); ungridded benchmarks are invisible to the "
                "BENCH_<name>.json perf trajectory and the bench-diff gate",
            )
            return
        for node, call in calls:
            if _keyword(call, "seed") is None:
                yield module.finding(
                    self.code,
                    node,
                    "grid spec must pin its randomness with an explicit "
                    "seed= keyword",
                )
