"""Benchmark reproducibility: every benchmark must pin its randomness.

The paper's tables are paired comparisons; a benchmark whose seed floats
produces numbers that cannot be compared across commits.  BENCH01 requires
every ``benchmarks/bench_*.py`` to declare its seed explicitly — a
module-level ``SEED`` constant or a ``seed=`` keyword in some call.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleContext, Project, Rule, register

__all__ = ["Bench01DeclaredSeed"]


@register
class Bench01DeclaredSeed(Rule):
    code = "BENCH01"
    summary = "every benchmarks/bench_*.py declares a seed"

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        name = module.basename
        if not (name.startswith("bench_") and name.endswith(".py")):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and "seed" in target.id.lower():
                        return
            elif isinstance(node, ast.Call):
                if any(kw.arg == "seed" for kw in node.keywords):
                    return
        yield module.finding(
            self.code,
            module.tree,
            "benchmark declares no seed (add a SEED constant or pass seed=...); "
            "unseeded runs cannot be compared across commits",
        )
