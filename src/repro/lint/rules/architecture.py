"""Recovery-discipline rules over the architecture layer (``repro.core``).

ARCH01 keeps every architecture an honest implementation of the
``RecoveryArchitecture`` hook surface declared in ``core/base.py``: hook
overrides must keep the base signature (the machine calls them
positionally), near-miss public method names are flagged as probable hook
typos (a misspelled ``on_commit`` silently never runs — the transaction
simply loses its recovery work), ``attach`` overrides must chain to
``super().attach``, and every architecture must name itself.

The write-ahead/shadow ordering discipline that used to live here as
ARCH02 (a source-order walk) is superseded by the flow-sensitive
PROTO01/PROTO02 rules in :mod:`repro.lint.rules.protocol`, which check
the same contract on every CFG path and through helper calls.

ARCH03 keeps the checkpoint contract total over the functional engines
(``repro.storage``): every ``RecoveryManager`` subclass must declare its
checkpoint capability — a ``checkpoint_policy`` class attribute naming
the :mod:`repro.checkpoint` policy its adapter implements, or an explicit
``checkpoint_unsupported`` opt-out.  A silent default would let a new
architecture ship without bounded-restart support and nobody would
notice until a restart scanned an unbounded log.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.astutil import edit_distance
from repro.lint.engine import ModuleContext, Project, Rule, register

__all__ = ["Arch01HookSurface", "Arch03CheckpointCapability"]

_BASE_MODULE = "repro.core.base"
_BASE_CLASS = "RecoveryArchitecture"


def _base_surface(project: Project) -> Optional[Dict[str, List[str]]]:
    """Public method name -> positional parameter names, from core/base.py."""
    base = project.module(_BASE_MODULE)
    if base is None or base.tree is None:
        return None
    for node in base.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == _BASE_CLASS:
            surface = {}
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and not item.name.startswith("_"):
                    surface[item.name] = [arg.arg for arg in item.args.args]
            return surface
    return None


def _architecture_classes(module: ModuleContext, project: Project) -> List[ast.ClassDef]:
    descendants = project.descendants_of(_BASE_CLASS)
    return [
        node
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ClassDef) and node.name in descendants
    ]


def _in_scope(module: ModuleContext) -> bool:
    return module.in_package("repro.core") and module.package != _BASE_MODULE


def _defines_attr(cls: ast.ClassDef, attr: str) -> bool:
    for item in cls.body:
        if isinstance(item, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == attr for t in item.targets):
                return True
        if isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and item.target.id == attr:
                return True
    return False


def _defines_name_attr(cls: ast.ClassDef) -> bool:
    return _defines_attr(cls, "name")


def _project_ancestors(
    project: Project, cls_name: str, base: str = _BASE_CLASS
) -> List[str]:
    """Ancestors of ``cls_name`` in the scanned class graph (minus ``base``)."""
    graph = project.class_bases()
    out, frontier = [], list(graph.get(cls_name, ()))
    while frontier:
        name = frontier.pop()
        if name == base or name in out or name not in graph:
            continue
        out.append(name)
        frontier.extend(graph[name])
    return out


@register
class Arch01HookSurface(Rule):
    code = "ARCH01"
    summary = (
        "architecture classes must implement the RecoveryArchitecture surface "
        "faithfully (signatures, name, super().attach, no hook typos)"
    )

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if not _in_scope(module):
            return
        surface = _base_surface(project)
        if surface is None:
            return
        for cls in _architecture_classes(module, project):
            yield from self._check_class(module, project, cls, surface)

    def _check_class(self, module, project, cls, surface) -> Iterator:
        if not _defines_name_attr(cls) and not any(
            self._class_defines_name(project, ancestor)
            for ancestor in _project_ancestors(project, cls.name)
        ):
            yield module.finding(
                self.code,
                cls,
                f"{cls.name} does not set the 'name' class attribute "
                "(reports would all read 'bare')",
            )
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name in surface:
                expected = surface[item.name]
                actual = [arg.arg for arg in item.args.args]
                if item.args.vararg is None and actual != expected:
                    yield module.finding(
                        self.code,
                        item,
                        f"{cls.name}.{item.name} signature ({', '.join(actual)}) "
                        f"drifts from the base hook ({', '.join(expected)})",
                    )
                if item.name == "attach" and not self._calls_super_attach(item):
                    yield module.finding(
                        self.code,
                        item,
                        f"{cls.name}.attach must call super().attach(machine) "
                        "to bind the machine",
                    )
            elif not item.name.startswith("_"):
                close = [
                    hook
                    for hook in surface
                    if edit_distance(item.name, hook) <= 2
                ]
                if close:
                    yield module.finding(
                        self.code,
                        item,
                        f"{cls.name}.{item.name} looks like a typo of hook "
                        f"{close[0]!r} and would never be called",
                    )

    @staticmethod
    def _class_defines_name(project: Project, cls_name: str) -> bool:
        for mod in project.modules:
            if mod.tree is None:
                continue
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ClassDef) and node.name == cls_name:
                    return _defines_name_attr(node)
        return False

    @staticmethod
    def _calls_super_attach(func: ast.FunctionDef) -> bool:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "attach"
                and isinstance(node.func.value, ast.Call)
                and isinstance(node.func.value.func, ast.Name)
                and node.func.value.func.id == "super"
            ):
                return True
        return False


_MANAGER_CLASS = "RecoveryManager"
_CAPABILITY_ATTRS = ("checkpoint_policy", "checkpoint_unsupported")


@register
class Arch03CheckpointCapability(Rule):
    code = "ARCH03"
    summary = (
        "RecoveryManager subclasses in repro.storage must declare a "
        "checkpoint_policy or an explicit checkpoint_unsupported opt-out"
    )

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if not module.in_package("repro.storage"):
            return
        descendants = project.descendants_of(_MANAGER_CLASS)
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef) or cls.name not in descendants:
                continue
            if self._declares_capability(cls):
                continue
            ancestors = _project_ancestors(project, cls.name, base=_MANAGER_CLASS)
            if any(
                self._ancestor_declares(project, ancestor)
                for ancestor in ancestors
            ):
                continue
            yield module.finding(
                self.code,
                cls,
                f"{cls.name} declares neither checkpoint_policy nor "
                "checkpoint_unsupported; every recovery manager must state "
                "its checkpoint capability (see docs/CHECKPOINT.md)",
            )

    @staticmethod
    def _declares_capability(cls: ast.ClassDef) -> bool:
        return any(_defines_attr(cls, attr) for attr in _CAPABILITY_ATTRS)

    @classmethod
    def _ancestor_declares(cls, project: Project, cls_name: str) -> bool:
        for mod in project.modules:
            if mod.tree is None:
                continue
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ClassDef) and node.name == cls_name:
                    return cls._declares_capability(node)
        return False


