"""RNG01 — named-stream aliasing across components.

The paired-run methodology (common random numbers: the same seed must
produce the same arrival process under every architecture) only works
while each named :class:`~repro.sim.rng.RandomStreams` stream has exactly
one consumer.  Two components drawing from the same *ambient* stream —
the machine-owned ``machine.streams`` / an injected ``self.streams`` —
interleave their draws, so adding a draw in one component silently
perturbs the other and every paired comparison downstream.

The rule collects every ``.stream("literal")`` draw in the ``repro``
package and classifies the receiver:

* **fresh** — the chain is rooted at a ``RandomStreams(...)`` constructor
  call (including ``.fork()`` chains): a private generator, aliasing is
  impossible, exempt.
* **ambient** — anything else.  Ambient draws of the same literal name
  from two or more different modules are all flagged.

Computed stream names (f-strings, concatenation) are ignored — they are
per-instance by construction in this codebase (``f"disk.{index}"``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.engine import ModuleContext, Project, Rule, register

__all__ = ["Rng01StreamAliasing"]

_CTOR = "RandomStreams"


def _rooted_in_ctor(expr: ast.AST) -> bool:
    """True when the receiver chain bottoms out at ``RandomStreams(...)``."""
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            return func.id == _CTOR
        if isinstance(func, ast.Attribute):
            return _rooted_in_ctor(func.value)
    return False


def _ambient_draws(module: ModuleContext) -> List[Tuple[str, ast.Call]]:
    """(stream name, call node) for each ambient literal draw in the module."""
    out: List[Tuple[str, ast.Call]] = []
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "stream"
            and node.args
        ):
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            continue  # computed name: per-instance by construction
        if _rooted_in_ctor(node.func.value):
            continue  # private generator, cannot alias
        out.append((first.value, node))
    return out


@register
class Rng01StreamAliasing(Rule):
    code = "RNG01"
    summary = (
        "each ambient RandomStreams stream name is drawn by exactly one "
        "module (protects common-random-number pairing)"
    )

    def check(self, module: ModuleContext, project: Project) -> Iterator:
        if module.tree is None or not module.in_package("repro"):
            return
        owners = self._owners(project)
        for name, node in _ambient_draws(module):
            modules = owners.get(name, set())
            if len(modules) > 1:
                others = sorted(modules - {module.package})
                yield module.finding(
                    self.code,
                    node,
                    f"ambient stream {name!r} is also drawn by "
                    f"{', '.join(others)}; two consumers on one stream break "
                    "the common-random-number pairing — fork a private "
                    "RandomStreams or rename the stream",
                )

    @staticmethod
    def _owners(project: Project) -> Dict[str, Set[str]]:
        """Stream name -> set of module packages with ambient draws."""
        cached = getattr(project, "_reprolint_rng01", None)
        if cached is None:
            cached = {}
            for mod in project.modules:
                if mod.tree is None or not mod.in_package("repro"):
                    continue
                for name, _node in _ambient_draws(mod):
                    cached.setdefault(name, set()).add(mod.package)
            project._reprolint_rng01 = cached
        return cached
