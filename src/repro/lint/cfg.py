"""Intraprocedural control-flow graphs over Python function ASTs.

The flow-sensitive rules (PROTO01/02, FP01, TR02 — see docs/LINT.md) need
to reason about *paths*: "does a log force dominate this home write on
every route through the function", "does every path that mutates stable
storage also cross a fault point".  This module builds the graph they walk.

Design:

* A :class:`BasicBlock` holds a straight-line run of *elements* — whole
  simple statements, plus the test/iter expressions of compound
  statements (an ``if`` contributes its test to the block that evaluates
  it, the body statements go to successor blocks).  Every reachable
  statement of the function lands in exactly one block (the property test
  in ``tests/test_lint_cfg.py`` proves it); nested function and class
  definitions are opaque single elements — their bodies get their own CFGs.
* Two virtual exits: :attr:`CFG.exit` collects normal completion (every
  ``return`` and the fall-off-the-end route) and :attr:`CFG.raise_exit`
  collects uncaught exceptions.  Rules that check "all non-exceptional
  paths" look only at routes into ``exit``.
* ``try``/``except``/``finally`` is modeled with a *shared* ``finally``
  subgraph: every route that must run the finalizer (normal completion,
  a caught-or-uncaught exception, ``return``/``break``/``continue``
  unwinding) flows through the one compiled copy, and the finalizer's
  exit fans out to each registered continuation.  This merges routes a
  duplicating compiler would keep apart — a deliberate, conservative
  imprecision that keeps the statement-to-block mapping a partition.
* Exceptions are modeled at the points that matter for the rules:
  explicit ``raise`` statements always unwind; additionally, every block
  inside a ``try`` body gets a may-raise edge to the handlers (any call
  can throw), so code in ``except:`` blocks is reachable.  A typed
  handler is conservatively assumed to catch (no exception-type lattice).

Limits (documented, shared with docs/LINT.md): no short-circuit
expression flow, ``with`` is transparent (its body runs inline; ``__exit__``
cleanup semantics are not modeled), and ``while`` loops guarded by a
literal ``True`` get no false exit edge.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "BasicBlock",
    "CFG",
    "build_cfg",
    "dominators",
    "reachable_blocks",
    "statements_of",
]


class BasicBlock:
    """A straight-line run of elements with edges to successor blocks."""

    __slots__ = ("bid", "elements", "succs", "preds", "kind")

    def __init__(self, bid: int, kind: str = "code"):
        self.bid = bid
        #: AST nodes evaluated in this block, in execution order.
        self.elements: List[ast.AST] = []
        self.succs: List["BasicBlock"] = []
        self.preds: List["BasicBlock"] = []
        #: "code", "exit" (normal completion) or "raise" (uncaught exception).
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<B{self.bid} {self.kind} {len(self.elements)} elems>"


class CFG:
    """The control-flow graph of one function definition."""

    def __init__(self, func: ast.AST):
        self.func = func
        self.blocks: List[BasicBlock] = []
        self.entry = self._new_block()
        self.exit = self._new_block(kind="exit")
        self.raise_exit = self._new_block(kind="raise")

    def _new_block(self, kind: str = "code") -> BasicBlock:
        block = BasicBlock(len(self.blocks), kind)
        self.blocks.append(block)
        return block

    @staticmethod
    def add_edge(src: BasicBlock, dst: BasicBlock) -> None:
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)

    def reachable(self) -> List[BasicBlock]:
        """Blocks reachable from the entry, in a stable (bid) order."""
        return reachable_blocks(self)


def reachable_blocks(cfg: CFG) -> List[BasicBlock]:
    seen: Set[int] = set()
    stack = [cfg.entry]
    while stack:
        block = stack.pop()
        if block.bid in seen:
            continue
        seen.add(block.bid)
        stack.extend(block.succs)
    return [b for b in cfg.blocks if b.bid in seen]


class _Frame:
    """One entry of the builder's control stack (a loop or a try)."""

    __slots__ = (
        "kind",
        "break_to",
        "continue_to",
        "handler_entries",
        "has_finally",
        "finally_entry",
        "finally_exits",
        "pending",
        "catches",
    )

    def __init__(self, kind: str):
        self.kind = kind  # "loop" | "try"
        self.break_to: Optional[BasicBlock] = None
        self.continue_to: Optional[BasicBlock] = None
        #: Entry blocks of each except-handler (while they are active).
        self.handler_entries: List[BasicBlock] = []
        self.has_finally = False
        self.finally_entry: Optional[BasicBlock] = None
        #: Blocks that end the shared finally subgraph (normally one).
        self.finally_exits: List[BasicBlock] = []
        #: Abrupt continuations routed through the finally, to be resolved
        #: when the try statement finishes compiling: "return" | "raise" |
        #: ("break"|"continue", loop-depth).
        self.pending: List = []
        #: Whether the handlers are still armed (they are not while the
        #: handler bodies themselves compile).
        self.catches = False


class _Builder:
    """Compiles one function body into a :class:`CFG`."""

    def __init__(self, func: ast.AST):
        self.cfg = CFG(func)
        self.current: Optional[BasicBlock] = self.cfg.entry
        self.stack: List[_Frame] = []

    # -- plumbing ---------------------------------------------------------
    def _block(self) -> BasicBlock:
        """The block receiving the next element (a fresh one after a jump)."""
        if self.current is None:
            # Statements after return/raise/break/continue: unreachable,
            # parked in a predecessor-less block so they still map somewhere.
            self.current = self.cfg._new_block()
        return self.current

    def _emit(self, node: ast.AST) -> None:
        self._block().elements.append(node)

    def _goto(self, target: Optional[BasicBlock]) -> None:
        """End the current block, falling through to ``target`` (or nowhere)."""
        if self.current is not None and target is not None:
            CFG.add_edge(self.current, target)
        self.current = target

    # -- abrupt-exit routing ----------------------------------------------
    def _unwind(self, kind: str, depth_limit: Optional[int] = None) -> None:
        """Route an abrupt exit (return / raise / break / continue) from the
        current block outward through the control stack.

        Walks enclosing frames innermost-first.  A ``raise`` stops at the
        first try whose handlers are armed; ``break``/``continue`` stop at
        the loop frame at ``depth_limit``; ``return`` unwinds everything.
        Each intervening finally gets (a) an in-edge from the departing
        block and (b) a pending continuation resolved when its try finishes.
        """
        src = self.current
        if src is None:
            return
        for index in range(len(self.stack) - 1, -1, -1):
            frame = self.stack[index]
            if kind == "raise" and frame.kind == "try" and frame.catches:
                for handler in frame.handler_entries:
                    CFG.add_edge(src, handler)
                self.current = None
                return
            if kind in ("break", "continue") and frame.kind == "loop":
                if depth_limit is not None and index != depth_limit:
                    continue
                target = frame.break_to if kind == "break" else frame.continue_to
                CFG.add_edge(src, target)
                self.current = None
                return
            if frame.kind == "try" and frame.has_finally:
                CFG.add_edge(src, frame.finally_entry)
                token = (kind, depth_limit)
                if token not in frame.pending:
                    frame.pending.append(token)
                self.current = None
                return
        # Unwound past every frame.
        target = self.cfg.exit if kind == "return" else self.cfg.raise_exit
        CFG.add_edge(src, target)
        self.current = None

    def _loop_depth_for(self, _node: ast.AST) -> Optional[int]:
        """Stack index of the innermost loop (break/continue target)."""
        for index in range(len(self.stack) - 1, -1, -1):
            if self.stack[index].kind == "loop":
                return index
        return None  # malformed code (break outside loop); route to exit

    # -- statement dispatch ------------------------------------------------
    def build(self) -> CFG:
        body = getattr(self.cfg.func, "body", [])
        self._stmts(body)
        self._goto(self.cfg.exit)  # fall off the end
        return self.cfg

    def _stmts(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, ast.Return):
            self._emit(stmt)
            self._unwind("return")
        elif isinstance(stmt, ast.Raise):
            self._emit(stmt)
            self._unwind("raise")
        elif isinstance(stmt, ast.Break):
            self._emit(stmt)
            self._unwind("break", self._loop_depth_for(stmt))
        elif isinstance(stmt, ast.Continue):
            self._emit(stmt)
            self._unwind("continue", self._loop_depth_for(stmt))
        else:
            # Simple statements — including nested FunctionDef / ClassDef,
            # which are opaque one-element definitions at this level.
            self._emit(stmt)

    # -- compound statements ----------------------------------------------
    def _if(self, stmt: ast.If) -> None:
        self._emit(stmt.test)
        cond = self.current
        after = self.cfg._new_block()
        # Then-branch.
        then_entry = self.cfg._new_block()
        CFG.add_edge(cond, then_entry)
        self.current = then_entry
        self._stmts(stmt.body)
        self._goto(after)
        # Else-branch (possibly empty: the condition falls through).
        if stmt.orelse:
            else_entry = self.cfg._new_block()
            CFG.add_edge(cond, else_entry)
            self.current = else_entry
            self._stmts(stmt.orelse)
            self._goto(after)
        else:
            CFG.add_edge(cond, after)
        self.current = after if after.preds else None

    @staticmethod
    def _is_literal_true(test: ast.AST) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value) is True

    def _while(self, stmt: ast.While) -> None:
        head = self.cfg._new_block()
        self._goto(head)
        self.current = head
        self._emit(stmt.test)
        after = self.cfg._new_block()
        frame = _Frame("loop")
        frame.break_to = after
        frame.continue_to = head
        body_entry = self.cfg._new_block()
        CFG.add_edge(head, body_entry)
        exits_normally = not self._is_literal_true(stmt.test)
        self.stack.append(frame)
        self.current = body_entry
        self._stmts(stmt.body)
        self._goto(head)  # back edge
        self.stack.pop()
        if exits_normally:
            if stmt.orelse:
                else_entry = self.cfg._new_block()
                CFG.add_edge(head, else_entry)
                self.current = else_entry
                self._stmts(stmt.orelse)
                self._goto(after)
            else:
                CFG.add_edge(head, after)
        self.current = after if after.preds else None

    def _for(self, stmt) -> None:
        # The head evaluates the iterable / draws the next item.
        head = self.cfg._new_block()
        self._goto(head)
        self.current = head
        self._emit(stmt.iter)
        after = self.cfg._new_block()
        frame = _Frame("loop")
        frame.break_to = after
        frame.continue_to = head
        body_entry = self.cfg._new_block()
        CFG.add_edge(head, body_entry)
        self.stack.append(frame)
        self.current = body_entry
        self._stmts(stmt.body)
        self._goto(head)
        self.stack.pop()
        if stmt.orelse:
            else_entry = self.cfg._new_block()
            CFG.add_edge(head, else_entry)  # iterator exhausted
            self.current = else_entry
            self._stmts(stmt.orelse)
            self._goto(after)
        else:
            CFG.add_edge(head, after)
        self.current = after if after.preds else None

    def _with(self, stmt) -> None:
        for item in stmt.items:
            self._emit(item.context_expr)
        self._stmts(stmt.body)

    def _try(self, stmt: ast.Try) -> None:
        frame = _Frame("try")
        frame.has_finally = bool(stmt.finalbody)
        if frame.has_finally:
            frame.finally_entry = self.cfg._new_block()
        after = self.cfg._new_block()

        # --- try body, with handlers armed -------------------------------
        handler_entries = [self.cfg._new_block() for _ in stmt.handlers]
        frame.handler_entries = handler_entries
        frame.catches = bool(stmt.handlers)
        body_entry = self.cfg._new_block()
        self._goto(body_entry)
        self.stack.append(frame)
        first_body_block = len(self.cfg.blocks)
        self.current = body_entry
        self._stmts(stmt.body)
        body_end = self.current
        # Any element of the try body may raise: add may-raise edges from
        # every block the body produced (plus its entry) to each handler.
        body_blocks = [body_entry] + [
            b
            for b in self.cfg.blocks[first_body_block:]
            if b.kind == "code" and b.elements
        ]
        for block in body_blocks:
            for handler in handler_entries:
                CFG.add_edge(block, handler)
            if not stmt.handlers and frame.has_finally:
                # No handlers: a raise anywhere in the body still runs the
                # finalizer before propagating.
                CFG.add_edge(block, frame.finally_entry)
                if ("raise", None) not in frame.pending:
                    frame.pending.append(("raise", None))

        # --- else clause (runs when the body completed without raising) --
        frame.catches = False  # a raise in else/handlers unwinds outward
        self.current = body_end
        if stmt.orelse:
            self._stmts(stmt.orelse)
        normal_end = self.current

        # --- handler bodies ----------------------------------------------
        handler_ends: List[Optional[BasicBlock]] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            self.current = entry
            if handler.type is not None:
                self._emit(handler.type)
            self._stmts(handler.body)
            handler_ends.append(self.current)
        self.stack.pop()

        # --- route normal completions ------------------------------------
        completions = [normal_end] + handler_ends
        if frame.has_finally:
            for end in completions:
                if end is not None:
                    CFG.add_edge(end, frame.finally_entry)
            # Compile the shared finalizer (outside the frame: its own
            # raises/returns unwind past this try).
            self.current = frame.finally_entry
            self._stmts(stmt.finalbody)
            finally_end = self.current
            if finally_end is not None:
                CFG.add_edge(finally_end, after)
                # Resolve abrupt continuations that were parked on the frame.
                for kind, depth in frame.pending:
                    self._unwind_from(finally_end, kind, depth)
        else:
            for end in completions:
                if end is not None:
                    CFG.add_edge(end, after)
        self.current = after if after.preds else None

    def _unwind_from(self, block: BasicBlock, kind: str, depth: Optional[int]) -> None:
        saved = self.current
        self.current = block
        self._unwind(kind, depth)
        self.current = saved


def build_cfg(func: ast.AST) -> CFG:
    """The CFG of ``func`` (a FunctionDef / AsyncFunctionDef / Lambda-like
    node with a ``body`` list)."""
    return _Builder(func).build()


def dominators(cfg: CFG) -> Dict[int, Set[int]]:
    """Block id -> ids of its dominators, over the reachable subgraph.

    Classic iterative dataflow: dom(entry) = {entry}; dom(b) = {b} ∪
    ⋂ dom(preds).  Unreachable blocks are absent from the result.
    """
    blocks = cfg.reachable()
    ids = {b.bid for b in blocks}
    dom: Dict[int, Set[int]] = {b.bid: set(ids) for b in blocks}
    dom[cfg.entry.bid] = {cfg.entry.bid}
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is cfg.entry:
                continue
            preds = [p for p in block.preds if p.bid in ids]
            if preds:
                new = set.intersection(*(dom[p.bid] for p in preds))
            else:  # pragma: no cover - reachable implies a reachable pred
                new = set()
            new.add(block.bid)
            if new != dom[block.bid]:
                dom[block.bid] = new
                changed = True
    return dom


def statements_of(func: ast.AST) -> Iterator[ast.stmt]:
    """Every statement of ``func``'s body, not descending into nested
    function/class definitions (those have their own CFGs)."""

    def walk(body: List[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in body:
            yield stmt
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for field in ("body", "orelse", "finalbody"):
                yield from walk(getattr(stmt, field, []) or [])
            for handler in getattr(stmt, "handlers", []) or []:
                yield from walk(handler.body)

    yield from walk(getattr(func, "body", []))
