"""A module-level call graph over the linted project.

The interprocedural rules (PROTO01/02 checking protection through
helpers, FP01 computing which methods are reachable from the
commit/recover/checkpoint entry points) need to know "which function does
this call land in?"  This resolver is deliberately modest — it answers
only the cases that appear in this codebase and that the rules rely on:

* ``self.helper(...)`` / ``cls.helper(...)`` — the method on the caller's
  class or, failing that, any ancestor class (by name, project-wide, via
  :meth:`Project.class_bases` — this is how mixin methods resolve).
* ``helper(...)`` — a module-level function of the caller's own module,
  or a function imported ``from repro.x import helper`` when the target
  module is part of the project.
* ``SomeClass.helper(...)`` — the method on a project class named
  ``SomeClass``.

Anything else (calls on arbitrary objects, dynamic dispatch through
variables) is unresolved and simply yields no edge — the rules treat
unresolved calls as opaque.  Qualified names are
``<package>:<Class>.<method>`` or ``<package>:<function>``.

:meth:`CallGraph.to_json` serializes nodes and edges; the CLI's
``--call-graph PATH`` writes it and CI uploads it as an artifact.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.astutil import ImportMap, attribute_chain

__all__ = ["CallGraph", "FunctionInfo", "project_callgraph"]


def project_callgraph(project) -> "CallGraph":
    """The project's call graph, built once and cached on the project
    (several rules walk it; building it is the expensive part)."""
    cached = getattr(project, "_reprolint_callgraph", None)
    if cached is None:
        cached = CallGraph(project)
        project._reprolint_callgraph = cached
    return cached


class FunctionInfo:
    """One function or method definition in the project."""

    __slots__ = ("qualname", "package", "cls", "name", "node", "module")

    def __init__(self, package: str, cls: Optional[str], node: ast.FunctionDef, module):
        self.package = package
        self.cls = cls
        self.name = node.name
        self.node = node
        self.module = module
        local = f"{cls}.{node.name}" if cls else node.name
        self.qualname = f"{package}:{local}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


def _walk_calls(func: ast.FunctionDef) -> Iterator[ast.Call]:
    """Every call expression in ``func``, not descending into nested
    function/class definitions (they get their own FunctionInfo)."""

    def walk(node: ast.AST) -> Iterator[ast.Call]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(child, ast.Call):
                yield child
            yield from walk(child)

    yield from walk(func)


class CallGraph:
    """Functions, methods, and resolved call edges across a project."""

    def __init__(self, project):
        self.project = project
        #: qualname -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: class name -> {method name -> qualname}
        self._class_methods: Dict[str, Dict[str, str]] = {}
        #: package -> {function name -> qualname} (module-level only)
        self._module_functions: Dict[str, Dict[str, str]] = {}
        #: caller qualname -> set of callee qualnames
        self.edges: Dict[str, Set[str]] = {}
        self._import_maps: Dict[str, ImportMap] = {}
        self._index()
        self._link()

    # -- construction ------------------------------------------------------
    def _index(self) -> None:
        for module in self.project.modules:
            if module.tree is None or not module.package:
                continue
            self._import_maps[module.package] = ImportMap(module.tree)
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(module.package, None, stmt, module)
                    self.functions[info.qualname] = info
                    self._module_functions.setdefault(module.package, {})[
                        stmt.name
                    ] = info.qualname
                elif isinstance(stmt, ast.ClassDef):
                    for item in stmt.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            info = FunctionInfo(module.package, stmt.name, item, module)
                            self.functions[info.qualname] = info
                            self._class_methods.setdefault(stmt.name, {})[
                                item.name
                            ] = info.qualname

    def _link(self) -> None:
        for info in self.functions.values():
            targets = self.edges.setdefault(info.qualname, set())
            for call in _walk_calls(info.node):
                callee = self.resolve_call(info, call)
                if callee is not None:
                    targets.add(callee)

    # -- resolution --------------------------------------------------------
    def _method_on_class_or_ancestors(
        self, class_name: str, method: str
    ) -> Optional[str]:
        bases_map = self.project.class_bases()
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            cls = queue.pop(0)
            if cls in seen:
                continue
            seen.add(cls)
            hit = self._class_methods.get(cls, {}).get(method)
            if hit is not None:
                return hit
            queue.extend(sorted(bases_map.get(cls, ())))
        return None

    def resolve_call(self, caller: FunctionInfo, call: ast.Call) -> Optional[str]:
        """Qualname of the function ``call`` lands in, or None if unknown."""
        func = call.func
        if isinstance(func, ast.Name):
            # Local module function, else a from-import of a project function.
            local = self._module_functions.get(caller.package, {}).get(func.id)
            if local is not None:
                return local
            origin = self._import_maps[caller.package].origins.get(func.id)
            if origin and "." in origin:
                pkg, name = origin.rsplit(".", 1)
                return self._module_functions.get(pkg, {}).get(name)
            return None
        chain = attribute_chain(func)
        if not chain or len(chain) != 2:
            return None
        base, method = chain
        if base in ("self", "cls") and caller.cls is not None:
            return self._method_on_class_or_ancestors(caller.cls, method)
        if base in self._class_methods:
            return self._method_on_class_or_ancestors(base, method)
        return None

    # -- queries -----------------------------------------------------------
    def callees(self, qualname: str) -> Set[str]:
        return set(self.edges.get(qualname, ()))

    def callers(self, qualname: str) -> Set[str]:
        return {
            src for src, dsts in self.edges.items() if qualname in dsts
        }

    def reachable_from(self, roots) -> Set[str]:
        """Transitive closure of callees from the given qualnames."""
        seen: Set[str] = set()
        queue = list(roots)
        while queue:
            qualname = queue.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            queue.extend(self.edges.get(qualname, ()))
        return seen

    def to_json(self) -> Dict:
        """A stable, artifact-friendly serialization."""
        return {
            "version": 1,
            "functions": sorted(self.functions),
            "edges": sorted(
                [src, dst]
                for src, dsts in self.edges.items()
                for dst in dsts
            ),
        }
