"""Forward dataflow over the lint CFGs.

The flow-sensitive rules all reduce to the same question: "which abstract
states can execution be in when it reaches this element?"  The state
spaces are tiny and finite (a frozenset of established protections, a
mutated/faulted bit pair, an open-span marker), so instead of a lattice
with widening we track the *exact set* of reachable states per block —
the union-merge fixpoint converges because states are drawn from a finite
domain and the set only grows.

Two entry points:

* :func:`block_states` — the fixpoint: entry-state set per block.
* :func:`iter_element_states` — post-fixpoint replay: for each reachable
  block, step the transfer function through its elements and yield
  ``(block, element, states_before_element)``.  Rules anchor findings
  here ("this home write can be reached with no force established").

The transfer function signature is ``transfer(state, element) -> state``;
it must be pure and return a hashable state.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterator, Tuple

import ast

from repro.lint.cfg import CFG, BasicBlock

__all__ = ["block_states", "iter_element_states", "states_at_exit"]

State = Hashable
Transfer = Callable[[State, ast.AST], State]


def _apply_block(
    states: FrozenSet[State], block: BasicBlock, transfer: Transfer
) -> FrozenSet[State]:
    out = set(states)
    for element in block.elements:
        # sorted-by-repr keeps the iteration order deterministic (DET02);
        # states are heterogeneous hashables, so repr is the common key.
        out = {transfer(s, element) for s in sorted(out, key=repr)}
    return frozenset(out)


def block_states(
    cfg: CFG, transfer: Transfer, init: State
) -> Dict[int, FrozenSet[State]]:
    """Entry-state sets per reachable block id (worklist fixpoint)."""
    blocks = {b.bid: b for b in cfg.reachable()}
    entry: Dict[int, FrozenSet[State]] = {bid: frozenset() for bid in blocks}
    entry[cfg.entry.bid] = frozenset([init])
    work = [cfg.entry]
    while work:
        block = work.pop()
        out = _apply_block(entry[block.bid], block, transfer)
        for succ in block.succs:
            if succ.bid not in entry:
                continue
            merged = entry[succ.bid] | out
            if merged != entry[succ.bid]:
                entry[succ.bid] = merged
                work.append(succ)
    return entry


def iter_element_states(
    cfg: CFG, transfer: Transfer, init: State
) -> Iterator[Tuple[BasicBlock, ast.AST, FrozenSet[State]]]:
    """Replay the converged fixpoint: yield each reachable element with the
    set of states execution may hold just before evaluating it."""
    entry = block_states(cfg, transfer, init)
    for block in cfg.reachable():
        states = set(entry[block.bid])
        for element in block.elements:
            yield block, element, frozenset(states)
            states = {transfer(s, element) for s in sorted(states, key=repr)}


def states_at_exit(
    cfg: CFG, transfer: Transfer, init: State, exceptional: bool = False
) -> FrozenSet[State]:
    """States reaching the normal exit (or the raise exit).

    ``exceptional=False`` answers "what can hold when the function completes
    without raising" — the FP01 question.
    """
    entry = block_states(cfg, transfer, init)
    target = cfg.raise_exit if exceptional else cfg.exit
    out: set = set()
    for pred in target.preds:
        if pred.bid in entry:
            out |= _apply_block(entry[pred.bid], pred, transfer)
    return frozenset(out)
