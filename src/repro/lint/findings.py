"""The unit of lint output: one rule violation at one source position."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One violation; sorts by position so reports are stable."""

    path: str
    line: int
    col: int
    rule: str = field(compare=False)
    message: str = field(compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
