"""Small AST helpers shared by the rules: import resolution, name chains,
source-ordered walks, and an edit distance for typo detection."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

__all__ = [
    "ImportMap",
    "attribute_chain",
    "edit_distance",
    "functions_in",
    "keyword_value",
    "ordered_walk",
]


class ImportMap:
    """Resolve local names back to the dotted origin they were imported as.

    ``import random``             -> {"random": "random"}
    ``import numpy as np``        -> {"np": "numpy"}
    ``from time import monotonic``-> {"monotonic": "time.monotonic"}
    ``from datetime import datetime as dt`` -> {"dt": "datetime.datetime"}
    """

    def __init__(self, tree: ast.Module):
        self.origins: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.origins[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.origins[local] = f"{node.module}.{alias.name}"

    def origin(self, expr: ast.AST) -> Optional[str]:
        """Dotted origin of an expression, e.g. ``rnd.Random`` -> ``random.Random``."""
        chain = attribute_chain(expr)
        if not chain:
            return None
        head, rest = chain[0], chain[1:]
        base = self.origins.get(head)
        if base is None:
            return None
        return ".".join([base] + rest)


def attribute_chain(expr: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None when the base is not a plain name."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def keyword_value(call: ast.Call, name: str) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def functions_in(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every (sync) function/method definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node


def ordered_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Depth-first walk in source order, not descending into nested
    function/class definitions."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield child
        yield from ordered_walk(child)


def edit_distance(a: str, b: str) -> int:
    """Plain Levenshtein distance (small strings only)."""
    if a == b:
        return 0
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (ca != cb),
                )
            )
        previous = current
    return previous[-1]
