"""The lint engine: file discovery, parsing, suppressions, rule registry.

A rule is a class with a ``code``, a ``summary``, and a
``check(module, project)`` generator of :class:`Finding` objects.  Rules
register themselves with :func:`register`; importing
:mod:`repro.lint.rules` populates the registry.  The engine parses every
``.py`` file under the given paths into a :class:`ModuleContext`, bundles
them into a :class:`Project` (rules that need cross-module facts — the
``RecoveryArchitecture`` surface, the class-inheritance graph — read it
from there), runs each rule over each module, and filters the findings
through ``# reprolint: disable=RULE`` suppressions.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.lint.findings import Finding

__all__ = [
    "LintEngine",
    "ModuleContext",
    "Project",
    "Rule",
    "all_rules",
    "register",
]

#: File-wide suppression: ``# reprolint: disable=DET01,API01`` anywhere in
#: the file (conventionally in the module header, with a reason).
_FILE_DIRECTIVE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9_,\s]+)")
#: Single-line suppression: ``# reprolint: disable-line=DET01``.
_LINE_DIRECTIVE = re.compile(r"#\s*reprolint:\s*disable-line=([A-Z0-9_,\s]+)")


def _parse_codes(blob: str) -> List[str]:
    return [code.strip() for code in blob.split(",") if code.strip()]


class ModuleContext:
    """One parsed source file plus the metadata rules need."""

    def __init__(self, path: str, display_path: str, source: str):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.syntax_error = exc
        self.package = self._derive_package(display_path)
        self.file_suppressions, self.line_suppressions = self._scan_directives()

    @staticmethod
    def _derive_package(display_path: str) -> str:
        """Dotted module name: ``src/repro/sim/core.py`` -> ``repro.sim.core``."""
        parts = display_path.replace(os.sep, "/").split("/")
        if parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if "src" in parts:
            parts = parts[parts.index("src") + 1 :]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(part for part in parts if part)

    def _scan_directives(self) -> Tuple[set, Dict[int, set]]:
        file_level: set = set()
        per_line: Dict[int, set] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _LINE_DIRECTIVE.search(line)
            if match:
                per_line.setdefault(lineno, set()).update(_parse_codes(match.group(1)))
                continue
            match = _FILE_DIRECTIVE.search(line)
            if match:
                file_level.update(_parse_codes(match.group(1)))
        return file_level, per_line

    # -- helpers rules use -------------------------------------------------
    @property
    def basename(self) -> str:
        return os.path.basename(self.display_path)

    def in_package(self, prefix: str) -> bool:
        return self.package == prefix or self.package.startswith(prefix + ".")

    def is_suppressed(self, rule: str, line: int) -> bool:
        return rule in self.file_suppressions or rule in self.line_suppressions.get(
            line, ()
        )

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


class Project:
    """All modules of one lint run, with lazily computed cross-module facts."""

    def __init__(self, modules: Sequence[ModuleContext]):
        self.modules = list(modules)
        self._by_package = {m.package: m for m in self.modules if m.package}
        self._class_bases: Optional[Dict[str, set]] = None

    def module(self, package: str) -> Optional[ModuleContext]:
        return self._by_package.get(package)

    def class_bases(self) -> Dict[str, set]:
        """Class name -> set of base-class names, across every module."""
        if self._class_bases is None:
            graph: Dict[str, set] = {}
            for module in self.modules:
                if module.tree is None:
                    continue
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.ClassDef):
                        bases = set()
                        for base in node.bases:
                            if isinstance(base, ast.Name):
                                bases.add(base.id)
                            elif isinstance(base, ast.Attribute):
                                bases.add(base.attr)
                        graph.setdefault(node.name, set()).update(bases)
            self._class_bases = graph
        return self._class_bases

    def descendants_of(self, root: str) -> set:
        """Every class name transitively inheriting from ``root``."""
        graph = self.class_bases()
        found: set = set()
        changed = True
        while changed:
            changed = False
            for name, bases in graph.items():
                if name in found:
                    continue
                if root in bases or bases & found:
                    found.add(name)
                    changed = True
        return found


class Rule:
    """Base rule; subclasses override :meth:`check`."""

    code = "RULE"
    summary = ""

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not rule_cls.code or rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate or empty rule code {rule_cls.code!r}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registry, populating it on first use."""
    import repro.lint.rules  # noqa: F401 - registration side effect

    return dict(_REGISTRY)


def _iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


class LintEngine:
    """Run a set of rules over a set of paths."""

    def __init__(self, rules: Optional[Iterable[str]] = None, root: Optional[str] = None):
        registry = all_rules()
        if rules is None:
            selected = sorted(registry)
        else:
            unknown = sorted(set(rules) - set(registry))
            if unknown:
                raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
            selected = sorted(set(rules))
        self.rules = [registry[code]() for code in selected]
        self.root = root

    def _display_path(self, path: str) -> str:
        if self.root:
            try:
                return os.path.relpath(path, self.root)
            except ValueError:  # pragma: no cover - windows drive mismatch
                return path
        return path

    def load(self, paths: Sequence[str]) -> Project:
        modules = []
        for path in _iter_python_files(paths):
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            modules.append(ModuleContext(path, self._display_path(path), source))
        return Project(modules)

    def run(self, paths: Sequence[str]) -> List[Finding]:
        return self.run_project(self.load(paths))

    def run_project(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            findings.extend(self.check_module(module, project))
        return sorted(findings)

    def check_module(self, module: ModuleContext, project: Project) -> List[Finding]:
        """Every (unsuppressed) finding for one module — the unit of work
        the ``--jobs`` fan-out distributes."""
        if module.syntax_error is not None:
            err = module.syntax_error
            return [
                Finding(
                    path=module.display_path,
                    line=err.lineno or 1,
                    col=(err.offset or 0) + 1,
                    rule="PARSE",
                    message=f"syntax error: {err.msg}",
                )
            ]
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.check(module, project):
                if not module.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
        return findings

    def run_project_parallel(
        self, project: Project, paths: Sequence[str], jobs: int
    ) -> List[Finding]:
        """``run_project`` fanned out over worker processes.

        Output is byte-identical to the serial path: each module is
        checked exactly once (project-wide rules attribute their findings
        to one defining module), and the merged findings get the same
        final sort.  On fork platforms workers inherit the parent's
        parsed project through a module global; on spawn platforms each
        worker rebuilds it from ``paths`` (same sorted file walk, so the
        module list and indexes match).
        """
        if jobs <= 1 or len(project.modules) <= 1:
            return self.run_project(project)
        from repro.jobs import map_jobs

        global _WORKER_PROJECT
        codes = tuple(rule.code for rule in self.rules)
        indexes = list(range(len(project.modules)))
        chunks = [indexes[i::jobs] for i in range(jobs) if indexes[i::jobs]]
        tasks = [
            (self.root, tuple(paths), codes, tuple(chunk)) for chunk in chunks
        ]
        _WORKER_PROJECT = project
        try:
            results = map_jobs(_lint_chunk, tasks, jobs=len(tasks))
        finally:
            _WORKER_PROJECT = None
        return sorted(finding for chunk in results for finding in chunk)


#: The parent's parsed project, inherited by forked lint workers so they
#: skip re-parsing; ``None`` inside spawn-platform workers (they rebuild).
_WORKER_PROJECT: Optional[Project] = None


def _lint_chunk(task: Tuple) -> List[Finding]:
    """Worker entry: lint one slice of the project's module list."""
    global _WORKER_PROJECT
    root, paths, rule_codes, indexes = task
    engine = LintEngine(rules=list(rule_codes), root=root)
    project = _WORKER_PROJECT
    if project is None:
        project = engine.load(list(paths))
        _WORKER_PROJECT = project
    findings: List[Finding] = []
    for index in indexes:
        findings.extend(engine.check_module(project.modules[index], project))
    return findings
