"""reprolint — determinism & recovery-discipline static analysis.

The paper's evaluation rests on *paired, low-variance* simulation runs:
common random numbers across architecture variants (``sim/rng.py``) and a
fully deterministic event calendar (``sim/core.py``).  Recovery
correctness likewise rests on disciplines — write-ahead logging, shadow
installation before overwrite — that are easy to break silently in a
refactor.  This package makes both machine-checkable: an AST pass with a
pluggable rule registry, run as ``python -m repro.lint src tests
benchmarks`` (or the ``repro-lint`` console script).

See ``docs/LINT.md`` for the rule catalogue and the paper rationale of
each rule.
"""

from repro.lint.engine import LintEngine, ModuleContext, Project, all_rules
from repro.lint.findings import Finding
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Finding",
    "LintEngine",
    "ModuleContext",
    "Project",
    "all_rules",
    "render_json",
    "render_text",
]
