"""repro — a reproduction of Agrawal & DeWitt's *Recovery Architectures for
Multiprocessor Database Machines* (SIGMOD 1985).

The package contains:

* :mod:`repro.sim` — a generator-based discrete-event simulation kernel;
* :mod:`repro.hardware` — 1985-era disk / CPU / interconnect models;
* :mod:`repro.machine` — the multiprocessor-cache database machine;
* :mod:`repro.workload` — the paper's transaction model;
* :mod:`repro.core` — the recovery architectures (the paper's contribution);
* :mod:`repro.storage` — a functional crash-recovery engine implementing
  the actual algorithms (WAL without log merging, shadow page tables,
  overwriting rings, version selection, differential files);
* :mod:`repro.experiments` — one runnable configuration per paper table.

Quickstart::

    from repro import DatabaseMachine, MachineConfig
    from repro.core import ParallelLoggingArchitecture
    from repro.workload import WorkloadConfig, generate_transactions
    from repro.sim import RandomStreams

    config = MachineConfig()
    machine = DatabaseMachine(config, ParallelLoggingArchitecture())
    txns = generate_transactions(
        WorkloadConfig(n_transactions=20),
        config.db_pages,
        RandomStreams(7).stream("workload"),
    )
    result = machine.run(txns)
    print(result.summary())
"""

from repro.machine.config import MachineConfig
from repro.machine.machine import DatabaseMachine
from repro.metrics.collectors import RunResult
from repro.workload.generator import WorkloadConfig, generate_transactions

__version__ = "1.0.0"

__all__ = [
    "DatabaseMachine",
    "MachineConfig",
    "RunResult",
    "WorkloadConfig",
    "generate_transactions",
    "__version__",
]
