"""``python -m repro`` — entry point for the experiment CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
