"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro tables                 # list the experiments
    python -m repro table 3                # regenerate the paper's Table 3
    python -m repro table 12 -n 15         # grand comparison, smaller load
    python -m repro ablation interconnect  # Section 4.1.3 ablation
    python -m repro predict --parallel --sequential
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis import checkpoint_interval_sweep, predict_bottleneck
from repro.bench import (
    diff_dirs,
    gate,
    load_grids,
    render_entries,
    render_grid,
    run_grid,
    write_grid_artifacts,
)
from repro.bench.spec import BenchSpecError
from repro.faults import FaultPlan, run_crashtest, run_scenario
from repro.metrics import format_table
from repro.experiments import (
    ExperimentSettings,
    ablation_checkpointing,
    ablation_disk_scheduling,
    ablation_hotspot,
    ablation_interconnect,
    ablation_overwriting_variants,
    ablation_version_selection,
    table1_logging_impact,
    table2_log_utilization,
    table3_parallel_logging,
    table4_shadow_impact,
    table5_shadow_utilization,
    table6_pt_buffer,
    table7_sequential_shadow,
    table8_random_overwriting,
    table9_differential_impact,
    table10_output_fraction,
    table11_differential_size,
    table12_comparison,
)
from repro.experiments.fidelity import fidelity_summary
from repro.experiments.report import generate_report
from repro.experiments.runner import CONFIGURATIONS
from repro.experiments.tables import render
from repro.experiments.tracing import (
    SIM_ARCHITECTURES,
    render_diff,
    run_traced,
    trace_diff,
)
from repro.loadgen.arrivals import PROCESSES, ArrivalConfig
from repro.loadgen.loadtest import DEFAULT_MULTIPLIERS, run_loadtest
from repro.loadgen.runner import DEGRADED_STATES
from repro.machine import MachineConfig
from repro.registry import add_arch_argument, entry_for, resolve_archs
from repro.resilience import run_scrubtest, run_survivetest
from repro.trace import (
    render_flame,
    render_timeline,
    to_chrome_trace,
    validate_chrome_trace,
    write_json,
)

__all__ = ["main"]

TABLES: Dict[int, Callable] = {
    1: table1_logging_impact,
    2: table2_log_utilization,
    3: table3_parallel_logging,
    4: table4_shadow_impact,
    5: table5_shadow_utilization,
    6: table6_pt_buffer,
    7: table7_sequential_shadow,
    8: table8_random_overwriting,
    9: table9_differential_impact,
    10: table10_output_fraction,
    11: table11_differential_size,
    12: table12_comparison,
}

ABLATIONS: Dict[str, Callable] = {
    "checkpointing": ablation_checkpointing,
    "disk-scheduling": ablation_disk_scheduling,
    "hotspot": ablation_hotspot,
    "interconnect": ablation_interconnect,
    "version-selection": ablation_version_selection,
    "overwriting-variants": ablation_overwriting_variants,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Recovery Architectures for Multiprocessor "
            "Database Machines' (Agrawal & DeWitt, 1985)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="list the reproducible experiments")

    table = sub.add_parser("table", help="regenerate one paper table")
    table.add_argument("number", type=int, choices=sorted(TABLES))
    table.add_argument(
        "-n",
        "--transactions",
        type=int,
        default=30,
        help="transactions per simulated run (default 30)",
    )
    table.add_argument("--seed", type=int, default=1985, help="machine seed")

    ablation = sub.add_parser("ablation", help="run one ablation study")
    ablation.add_argument("name", choices=sorted(ABLATIONS))
    ablation.add_argument("-n", "--transactions", type=int, default=30)
    ablation.add_argument("--seed", type=int, default=1985)

    report = sub.add_parser(
        "report", help="regenerate the full measured-vs-paper report"
    )
    report.add_argument("-n", "--transactions", type=int, default=30)
    report.add_argument("--seed", type=int, default=1985)
    report.add_argument(
        "-t",
        "--table",
        type=int,
        action="append",
        dest="only_tables",
        help="limit to specific tables (repeatable)",
    )
    report.add_argument(
        "--ablations", action="store_true", help="include the ablation studies"
    )
    report.add_argument("-o", "--output", help="write to a file instead of stdout")
    report.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the independent experiments "
        "(output is identical to -j 1; default 1)",
    )

    fidelity = sub.add_parser(
        "fidelity", help="score the reproduction against the paper, cell by cell"
    )
    fidelity.add_argument("-n", "--transactions", type=int, default=30)
    fidelity.add_argument("--seed", type=int, default=1985)

    crashtest = sub.add_parser(
        "crashtest",
        help="crash-recovery correctness sweep (see docs/FAULTS.md)",
    )
    crashtest.add_argument("--seed", type=int, default=1985, help="workload seed")
    add_arch_argument(
        crashtest, help_text="recovery architecture to crash (default: all)"
    )
    crashtest.add_argument(
        "-n",
        "--transactions",
        type=int,
        default=10,
        help="transactions in the seeded workload (default 10)",
    )
    crashtest.add_argument(
        "--budget",
        type=int,
        default=None,
        help="crash points per architecture (seeded sample; default: all)",
    )
    crashtest.add_argument(
        "--json",
        dest="json_path",
        help="write the full report(s) to this JSON file",
    )
    crashtest.add_argument(
        "--plan",
        dest="plan_path",
        help="replay one failing fault-plan JSON instead of sweeping",
    )

    survive = sub.add_parser(
        "survivetest",
        help="degraded-mode survival sweep over permanent component "
        "failures (see docs/RESILIENCE.md)",
    )
    survive.add_argument("--seed", type=int, default=1985, help="workload seed")
    add_arch_argument(
        survive, help_text="recovery architecture to degrade (default: all)"
    )
    survive.add_argument(
        "-n",
        "--transactions",
        type=int,
        default=12,
        help="transactions in the seeded workload (default 12)",
    )
    survive.add_argument(
        "--json",
        dest="json_path",
        help="write the availability report(s) to this JSON file",
    )

    scrub = sub.add_parser(
        "scrubtest",
        help="silent-corruption sweep: inject rot per target site, check "
        "detection before committed reads, repair, and re-verify "
        "(see docs/INTEGRITY.md)",
    )
    scrub.add_argument("--seed", type=int, default=1985, help="workload seed")
    add_arch_argument(
        scrub, help_text="recovery architecture to corrupt (default: all)"
    )
    scrub.add_argument(
        "--json",
        dest="json_path",
        help="write the detection/repair report(s) to this JSON file",
    )

    loadtest = sub.add_parser(
        "loadtest",
        help="open-system offered-load sweep: goodput vs load, collapse "
        "knee, degraded-state comparison (see docs/LOADGEN.md)",
    )
    loadtest.add_argument("--seed", type=int, default=1985, help="machine seed")
    add_arch_argument(
        loadtest, help_text="recovery architecture to sweep (default: all)"
    )
    loadtest.add_argument(
        "-n",
        "--transactions",
        type=int,
        default=24,
        help="transactions offered per sweep cell (default 24)",
    )
    loadtest.add_argument(
        "--loads",
        default=",".join(f"{m:g}" for m in DEFAULT_MULTIPLIERS),
        help="comma list of offered-load multiples of calibrated capacity",
    )
    loadtest.add_argument(
        "--arrival",
        default="poisson",
        choices=sorted(PROCESSES),
        help="arrival process per cell (default: poisson)",
    )
    loadtest.add_argument(
        "--policy",
        default="drop",
        choices=("drop", "block", "token-bucket"),
        help="admission policy of the bounded queue (default: drop)",
    )
    loadtest.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        help="goodput SLO in ms (default: 2.5x closed-batch mean completion)",
    )
    loadtest.add_argument(
        "--states",
        default="healthy,dead-lp,mirrored-degraded",
        help="comma list of machine states to sweep "
        f"(subset of {','.join(DEGRADED_STATES)}; dead-lp needs "
        "log-processor quorum and is skipped elsewhere)",
    )
    loadtest.add_argument(
        "--json",
        dest="json_path",
        help="write every sweep report to this JSON file",
    )

    sweep = sub.add_parser(
        "checkpoint-sweep",
        help="restart time and overhead vs checkpoint interval "
        "(see docs/CHECKPOINT.md)",
    )
    sweep.add_argument("--seed", type=int, default=1985, help="workload seed")
    add_arch_argument(
        sweep, help_text="recovery architecture to sweep (default: all)"
    )
    sweep.add_argument(
        "--intervals",
        default="none,16,8,4",
        help="comma list of checkpoint intervals in ops; "
        "'none' is the never-checkpoint baseline (default: none,16,8,4)",
    )
    sweep.add_argument(
        "-n",
        "--transactions",
        type=int,
        default=40,
        help="transactions in the seeded workload (default 40)",
    )
    sweep.add_argument(
        "-o", "--output", help="also write the table to this file"
    )
    sweep.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the independent (arch, interval) cells "
        "(output is identical to -j 1; default 1)",
    )

    trace = sub.add_parser(
        "trace",
        help="traced run: phase breakdown, timeline, Chrome trace "
        "(see docs/TRACE.md)",
    )
    add_arch_argument(
        trace,
        SIM_ARCHITECTURES,
        default="logging",
        help_text="architecture to trace (default: logging)",
    )
    trace.add_argument(
        "--config",
        default="parallel-random",
        choices=sorted(CONFIGURATIONS),
        help="machine/workload configuration (default: parallel-random)",
    )
    trace.add_argument("-n", "--transactions", type=int, default=10)
    trace.add_argument("--seed", type=int, default=1985)
    trace.add_argument(
        "-o",
        "--output",
        help="write Chrome/Perfetto trace JSON here (with --arch all, "
        "one file per architecture: <output>.<arch>.json)",
    )
    trace.add_argument(
        "--timeline", action="store_true", help="print the ASCII timeline too"
    )

    diff = sub.add_parser(
        "trace-diff",
        help="attribute the completion-time gap between two architectures "
        "to phases",
    )
    diff.add_argument("arch_a", choices=sorted(SIM_ARCHITECTURES))
    diff.add_argument("arch_b", choices=sorted(SIM_ARCHITECTURES))
    diff.add_argument(
        "--config",
        default="parallel-random",
        choices=sorted(CONFIGURATIONS),
        help="machine/workload configuration (default: parallel-random)",
    )
    diff.add_argument("-n", "--transactions", type=int, default=10)
    diff.add_argument("--seed", type=int, default=1985)

    bench = sub.add_parser(
        "bench",
        help="run the declarative benchmark grids and write schema-validated "
        "BENCH_<name>.json artifacts (see docs/BENCH.md)",
    )
    bench.add_argument(
        "names", nargs="*", help="grid names to run (default: every grid)"
    )
    bench.add_argument(
        "--dir",
        dest="bench_dir",
        default="benchmarks",
        help="benchmark tree holding bench_*.py grid specs (default: benchmarks)",
    )
    bench.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes per grid; artifacts are byte-identical to -j 1",
    )
    bench.add_argument(
        "--write-baselines",
        action="store_true",
        help="also refresh the committed BENCH_*.json baselines at the repo "
        "root (the parent of --dir)",
    )
    bench.add_argument(
        "--list",
        dest="list_grids",
        action="store_true",
        help="list the discovered grids and their cell counts, run nothing",
    )

    benchdiff = sub.add_parser(
        "bench-diff",
        help="diff fresh grid artifacts against the committed BENCH_*.json "
        "baselines; non-zero exit on regression (see docs/BENCH.md)",
    )
    benchdiff.add_argument(
        "names", nargs="*", help="grid names to compare (default: all)"
    )
    benchdiff.add_argument(
        "--dir",
        dest="bench_dir",
        default="benchmarks",
        help="benchmark tree (default: benchmarks)",
    )
    benchdiff.add_argument(
        "--baseline",
        help="baseline artifact dir (default: the repo root, parent of --dir)",
    )
    benchdiff.add_argument(
        "--current",
        help="fresh artifact dir (default: <dir>/output)",
    )
    benchdiff.add_argument(
        "--tolerance",
        type=float,
        help="override every grid's declared relative tolerance",
    )
    benchdiff.add_argument(
        "--run",
        action="store_true",
        help="execute the grids into --current before diffing",
    )
    benchdiff.add_argument(
        "-j", "--jobs", type=int, default=1, help="worker processes with --run"
    )
    benchdiff.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print the cells that stayed within tolerance",
    )

    predict = sub.add_parser(
        "predict", help="analytic bottleneck prediction for a configuration"
    )
    predict.add_argument("--parallel", action="store_true", help="parallel-access disks")
    predict.add_argument("--sequential", action="store_true", help="sequential transactions")
    predict.add_argument("--qps", type=int, default=25, help="query processors")
    predict.add_argument("--disks", type=int, default=2, help="data disks")
    predict.add_argument("--frames", type=int, default=100, help="cache frames")
    return parser


def _settings(args) -> ExperimentSettings:
    return ExperimentSettings(n_transactions=args.transactions, seed=args.seed)


def _run_crashtest(args) -> int:
    if args.plan_path:
        if args.arch == "all":
            print("replay needs a single --arch", file=sys.stderr)
            return 2
        with open(args.plan_path) as handle:
            plan = FaultPlan.from_json(handle.read())
        result = run_scenario(
            args.arch, args.seed, plan, n_transactions=args.transactions
        )
        print(f"{args.arch}: crashed_at={result.crashed_at} outcome={result.outcome}")
        for violation in result.violations:
            print(f"  {violation['kind']}: {violation['detail']}")
        return 1 if result.violations else 0

    archs = resolve_archs(args.arch)
    reports = {}
    failed = False
    for arch in archs:
        report = run_crashtest(
            arch,
            args.seed,
            n_transactions=args.transactions,
            budget=args.budget,
        )
        reports[arch] = json.loads(report.to_json())
        outcomes = ", ".join(
            f"{k}={v}" for k, v in sorted(report.outcomes.items())
        )
        status = "ok" if report.ok else f"{len(report.violations)} VIOLATIONS"
        print(
            f"{arch:>12}: {len(report.points_tested)}/{report.total_crossings} "
            f"crash points [{outcomes}] "
            f"ckpt-hooks={len(report.checkpoint_hooks)} "
            f"hash={report.state_hash[:12]} {status}"
        )
        if report.recovery_timeline:
            print(f"              restart: {_squash(report.recovery_timeline)}")
        for violation in report.violations[:5]:
            print(
                f"    {violation['kind']} at {violation['hook']} "
                f"(crossing {violation['crossing']}): {violation['detail']}"
            )
        failed = failed or not report.ok
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(reports, handle, sort_keys=True, indent=2)
        print(f"wrote {args.json_path}")
    return 1 if failed else 0


def _run_survivetest(args) -> int:
    archs = resolve_archs(args.arch)
    reports = {}
    failed = False
    for arch in archs:
        report = run_survivetest(
            arch, args.seed, n_transactions=args.transactions
        )
        reports[arch] = json.loads(report.to_json())
        availability = ", ".join(
            f"{k}={v:.3f}" for k, v in sorted(report.availability.items())
        )
        status = "ok" if report.ok else "VIOLATIONS"
        print(
            f"{arch:>12}: {len(report.scenarios)} scenarios "
            f"[{availability}] {status}"
        )
        for scenario in report.scenarios:
            if not scenario.ok:
                for violation in scenario.violations[:5]:
                    print(f"    {scenario.scenario}: {violation}")
        failed = failed or not report.ok
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(reports, handle, sort_keys=True, indent=2)
        print(f"wrote {args.json_path}")
    return 1 if failed else 0


def _run_scrubtest(args) -> int:
    archs = resolve_archs(args.arch)
    reports = {}
    failed = False
    for arch in archs:
        report = run_scrubtest(arch, args.seed)
        reports[arch] = json.loads(report.to_json())
        status = "ok" if report.ok else "VIOLATIONS"
        detections = sum(
            o.details.get("detections", o.details.get("scrub_detections", 0))
            for o in report.outcomes
        )
        repairs = sum(
            o.details.get("scrub_repairs", 0)
            + o.details.get("pages_repaired", 0)
            + o.details.get("records_repaired", 0)
            + o.details.get("archives_rebuilt", 0)
            for o in report.outcomes
        )
        print(
            f"{arch:>12}: {len(report.outcomes)} scenarios "
            f"detections={detections} repairs={repairs} {status}"
        )
        for outcome in report.outcomes:
            if not outcome.ok:
                for violation in outcome.violations[:5]:
                    print(f"    {outcome.target}: {violation}")
        failed = failed or not report.ok
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(reports, handle, sort_keys=True, indent=2)
        print(f"wrote {args.json_path}")
    return 1 if failed else 0


def _run_loadtest(args) -> int:
    try:
        multipliers = [float(tok) for tok in args.loads.split(",") if tok.strip()]
        if not multipliers or any(m <= 0 for m in multipliers):
            raise ValueError
    except ValueError:
        print(f"bad --loads {args.loads!r}: need positive numbers", file=sys.stderr)
        return 2
    states = [tok.strip() for tok in args.states.split(",") if tok.strip()]
    unknown = [s for s in states if s not in DEGRADED_STATES]
    if unknown or not states:
        print(
            f"bad --states {args.states!r}: pick from "
            f"{','.join(DEGRADED_STATES)}",
            file=sys.stderr,
        )
        return 2
    archs = resolve_archs(args.arch)
    reports = []
    failed = False
    for arch in archs:
        for state in states:
            if state == "dead-lp" and not entry_for(arch).lp_failover:
                continue
            report = run_loadtest(
                arch,
                seed=args.seed,
                n_per_cell=args.transactions,
                multipliers=multipliers,
                arrival=ArrivalConfig(process=args.arrival),
                policy=args.policy,
                slo_ms=args.slo_ms,
                state=state,
            )
            reports.append(report)
            print(report.summary())
            print()
            # The sweep contract: oracles hold in every cell AND the
            # swept range actually exhibits the overload collapse.
            failed = failed or not report.ok or report.knee() is None
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(
                [report.to_dict() for report in reports],
                handle,
                sort_keys=True,
                indent=2,
            )
        print(f"wrote {args.json_path}")
    return 1 if failed else 0


def _squash(timeline: List[str]) -> str:
    """Render an ordered hook timeline, folding consecutive repeats."""
    parts: List[str] = []
    i = 0
    while i < len(timeline):
        j = i
        while j < len(timeline) and timeline[j] == timeline[i]:
            j += 1
        parts.append(timeline[i] if j - i == 1 else f"{timeline[i]} x{j - i}")
        i = j
    return " -> ".join(parts)


def _parse_intervals(text: str) -> List[Optional[int]]:
    intervals: List[Optional[int]] = []
    for token in text.split(","):
        token = token.strip().lower()
        if not token:
            continue
        if token in ("none", "off"):
            intervals.append(None)
        else:
            value = int(token)
            if value < 1:
                raise ValueError(f"checkpoint interval must be >= 1, got {value}")
            intervals.append(value)
    if not intervals:
        raise ValueError("need at least one checkpoint interval")
    return intervals


def _run_checkpoint_sweep(args) -> int:
    try:
        intervals = _parse_intervals(args.intervals)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    archs = resolve_archs(args.arch)
    results = checkpoint_interval_sweep(
        args.seed,
        intervals,
        archs=archs,
        n_transactions=args.transactions,
        jobs=args.jobs,
    )
    rows = []
    for arch in archs:
        for row in results[arch]:
            rows.append(
                [
                    arch,
                    "never" if row.checkpoint_every is None
                    else row.checkpoint_every,
                    row.checkpoints_taken,
                    row.overhead_records,
                    row.overhead_page_writes,
                    row.restart_records,
                    row.restart_pages_touched,
                    round(row.measured.total_ms, 1),
                    round(row.analytic.total_ms, 1),
                ]
            )
    table = format_table(
        [
            "architecture",
            "ckpt every",
            "taken",
            "run records",
            "run pg-writes",
            "restart records",
            "restart pages",
            "restart ms",
            "bound ms",
        ],
        rows,
        title=f"Restart cost vs checkpoint interval (seed {args.seed}, "
        f"{args.transactions} txns)",
    )
    print(table)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(table + "\n")
        print(f"wrote {args.output}")
    return 0


def _bench_dirs(args):
    """(output dir, repo-root baseline dir) for a benchmark tree."""
    output_dir = os.path.join(args.bench_dir, "output")
    root_dir = os.path.dirname(os.path.abspath(args.bench_dir))
    return output_dir, root_dir


def _run_bench(args) -> int:
    try:
        grids = load_grids(args.bench_dir, args.names or None)
    except (BenchSpecError, ImportError) as error:
        print(error, file=sys.stderr)
        return 2
    if args.list_grids:
        for name, grid in grids.items():
            toggles = ",".join(t.name for t in grid.toggles) or "-"
            print(
                f"{name:>28}: {len(grid.cells())} cells, "
                f"gate {grid.primary_metric} "
                f"(tol {grid.tolerance:.0%}), toggles: {toggles}"
            )
        return 0
    output_dir, root_dir = _bench_dirs(args)
    baseline_dir = root_dir if args.write_baselines else None
    for i, (name, grid) in enumerate(grids.items()):
        result = run_grid(grid, jobs=args.jobs)
        if i:
            print()
        print(render_grid(result))
        paths = write_grid_artifacts(result, output_dir, baseline_dir)
        print("wrote " + ", ".join(paths))
    return 0


def _run_bench_diff(args) -> int:
    output_dir, root_dir = _bench_dirs(args)
    baseline_dir = args.baseline or root_dir
    current_dir = args.current or output_dir
    if args.run:
        try:
            grids = load_grids(args.bench_dir, args.names or None)
        except (BenchSpecError, ImportError) as error:
            print(error, file=sys.stderr)
            return 2
        for name, grid in grids.items():
            result = run_grid(grid, jobs=args.jobs)
            write_grid_artifacts(result, current_dir)
            print(f"ran {name} ({len(result.cells)} cells)")
        print()
    entries = diff_dirs(
        baseline_dir, current_dir, names=args.names or None,
        tolerance=args.tolerance,
    )
    print(render_entries(entries, verbose=args.verbose))
    if not gate(entries):
        print("bench-diff: trajectory gate FAILED", file=sys.stderr)
        return 1
    return 0


def _run_trace(args) -> int:
    archs = resolve_archs(args.arch, SIM_ARCHITECTURES)
    for i, arch in enumerate(archs):
        run = run_traced(arch, args.config, _settings(args))
        if i:
            print()
        print(
            render_flame(
                run.breakdown,
                title=f"{arch} on {run.configuration} "
                f"(mean completion {run.result.mean_completion_ms:.1f} ms, "
                f"critical resource: {run.critical})",
            )
        )
        percentiles = "  ".join(
            f"{name}={run.percentiles[name]:.1f} ms" for name in sorted(run.percentiles)
        )
        print(f"completion percentiles: {percentiles}")
        if args.timeline:
            print(render_timeline(run.tracer))
        if args.output:
            events = to_chrome_trace(run.tracer, process_name=f"repro.{arch}")
            count = validate_chrome_trace(events)
            if args.arch == "all":
                stem = args.output[:-5] if args.output.endswith(".json") else args.output
                path = f"{stem}.{arch}.json"
            else:
                path = args.output
            write_json(events, path)
            print(f"wrote {path} ({count} events)")
    return 0


def _run_trace_diff(args) -> int:
    run_a, run_b, rows = trace_diff(
        args.arch_a, args.arch_b, args.config, _settings(args)
    )
    print(
        f"{run_a.architecture} vs {run_b.architecture} on {run_a.configuration} "
        f"({args.transactions} txns, seed {args.seed})"
    )
    print(render_diff(run_a, run_b, rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "tables":
        for number in sorted(TABLES):
            doc = (TABLES[number].__doc__ or "").strip().splitlines()[0]
            print(f"table {number:>2}: {doc}")
        for name in sorted(ABLATIONS):
            doc = (ABLATIONS[name].__doc__ or "").strip().splitlines()[0]
            print(f"ablation {name}: {doc}")
        return 0

    if args.command == "table":
        result = TABLES[args.number](_settings(args))
        print(render(result))
        return 0

    if args.command == "ablation":
        result = ABLATIONS[args.name](_settings(args))
        print(render(result))
        return 0

    if args.command == "report":
        text = generate_report(
            _settings(args),
            tables=args.only_tables,
            include_ablations=args.ablations,
            jobs=args.jobs,
        )
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0

    if args.command == "fidelity":
        print(fidelity_summary(_settings(args)).render())
        return 0

    if args.command == "crashtest":
        return _run_crashtest(args)

    if args.command == "survivetest":
        return _run_survivetest(args)

    if args.command == "scrubtest":
        return _run_scrubtest(args)

    if args.command == "loadtest":
        return _run_loadtest(args)

    if args.command == "checkpoint-sweep":
        return _run_checkpoint_sweep(args)

    if args.command == "bench":
        return _run_bench(args)

    if args.command == "bench-diff":
        return _run_bench_diff(args)

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "trace-diff":
        return _run_trace_diff(args)

    if args.command == "predict":
        config = MachineConfig(
            n_query_processors=args.qps,
            n_data_disks=args.disks,
            cache_frames=args.frames,
            parallel_data_disks=args.parallel,
        )
        report = predict_bottleneck(config, sequential=args.sequential)
        kind = "parallel-access" if args.parallel else "conventional"
        load = "sequential" if args.sequential else "random"
        print(f"configuration : {args.qps} QPs, {args.disks} {kind} disks, {load} load")
        print(f"bottleneck    : {report.bottleneck}")
        print(f"predicted     : {report.ms_per_page:.2f} ms/page")
        print(f"  disk-bound  : {report.disk_bound:.2f} ms/page")
        print(f"  cpu-bound   : {report.cpu_bound:.2f} ms/page")
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
